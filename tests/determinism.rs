//! Pins the sorted-output guarantee the index builder relies on: every
//! mining entry point — `Lash::mine`, `Lash::mine_sharded`, and
//! `CorpusReader::mine` — returns `patterns()` in the identical,
//! deterministic order across repeated runs, across parallelism settings,
//! and across the in-memory vs. spilled shuffle paths.

use lash::mapreduce::EngineConfig;
use lash::pattern::sort_patterns_lexicographic;
use lash::{GsmParams, Lash, LashConfig, Pattern, SequenceDatabase, Vocabulary};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash_store::{CorpusReader, StoreOptions};

fn dataset() -> (Vocabulary, SequenceDatabase) {
    TextCorpus::generate(&TextConfig {
        sentences: 600,
        lemmas: 250,
        ..TextConfig::default()
    })
    .dataset(TextHierarchy::LP)
}

fn params() -> GsmParams {
    GsmParams::new(4, 1, 3).unwrap()
}

/// Two full pattern vectors must agree **including order** — that is the
/// guarantee, not just set equality.
fn assert_same_order(a: &[Pattern], b: &[Pattern], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: pattern counts differ");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x, y, "{what}: patterns diverge at position {i}");
    }
}

#[test]
fn all_entry_points_and_shuffle_paths_agree_on_order() {
    let (vocab, db) = dataset();
    let params = params();

    // Reference: the default in-memory pipeline.
    let reference = Lash::default().mine(&db, &vocab, &params).unwrap();
    assert!(
        reference.patterns().len() > 20,
        "the corpus must actually produce patterns ({})",
        reference.patterns().len()
    );

    // Repeated runs are identical.
    let again = Lash::default().mine(&db, &vocab, &params).unwrap();
    assert_same_order(reference.patterns(), again.patterns(), "mine twice");

    // The spilled shuffle (every record spills) is byte-identical in
    // output order to the in-memory path.
    let spilled_cfg = LashConfig::new(
        EngineConfig::default()
            .with_split_size(64)
            .with_spill_threshold(Some(0)),
    );
    let spilled = Lash::new(spilled_cfg).mine(&db, &vocab, &params).unwrap();
    assert_same_order(reference.patterns(), spilled.patterns(), "spilled shuffle");

    // The in-memory path forced explicitly (CI may export
    // LASH_SPILL_THRESHOLD=0, which the default picks up).
    let in_memory_cfg = LashConfig::new(EngineConfig::default().with_spill_threshold(None));
    let in_memory = Lash::new(in_memory_cfg).mine(&db, &vocab, &params).unwrap();
    assert_same_order(
        reference.patterns(),
        in_memory.patterns(),
        "in-memory shuffle",
    );

    // Parallelism does not perturb the order.
    for par in [1, 7] {
        let cfg = LashConfig::new(EngineConfig::default().with_parallelism(par));
        let run = Lash::new(cfg).mine(&db, &vocab, &params).unwrap();
        assert_same_order(reference.patterns(), run.patterns(), "parallelism");
    }

    // The sharded pipeline over the in-memory database.
    let sharded = Lash::default()
        .mine_sharded(&db, &vocab, &params, None)
        .unwrap();
    assert_same_order(reference.patterns(), sharded.patterns(), "mine_sharded");

    // The sharded pipeline from a cold-opened on-disk corpus, in-memory
    // and spilled.
    let dir = std::env::temp_dir().join(format!("lash-determinism-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    lash_store::convert::write_database(&dir, &vocab, &db, StoreOptions::default()).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let from_store = reader.mine(&Lash::default(), &params).unwrap();
    assert_same_order(
        reference.patterns(),
        from_store.patterns(),
        "CorpusReader::mine",
    );
    let from_store_spilled = reader
        .mine(
            &Lash::new(LashConfig::new(
                EngineConfig::default().with_spill_threshold(Some(0)),
            )),
            &params,
        )
        .unwrap();
    assert_same_order(
        reference.patterns(),
        from_store_spilled.patterns(),
        "CorpusReader::mine spilled",
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // The order itself is the documented one: frequency descending, ties
    // by ascending items — and re-sorting lexicographically is exactly
    // what the index builder consumes.
    let freqs: Vec<u64> = reference.patterns().iter().map(|p| p.frequency).collect();
    assert!(freqs.windows(2).all(|w| w[0] >= w[1]), "frequency-sorted");
    let mut lex = reference.patterns().to_vec();
    sort_patterns_lexicographic(&mut lex);
    assert!(
        lex.windows(2).all(|w| w[0].items < w[1].items),
        "lexicographic order is strict (patterns are unique)"
    );
}
