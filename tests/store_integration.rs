//! Acceptance tests for the on-disk corpus: a corpus written by
//! `CorpusWriter` reopens cold and is mined — by the PSM local miner over
//! store-built partitions and by the LASH distributed job — with results
//! identical to the in-memory path, with the distributed map phase driven
//! by the parallel multi-shard scan.

use lash::context::MiningContext;
use lash::datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash::flist::FList;
use lash::miner::{LocalMiner, PsmMiner};
use lash::rewrite::Rewriter;
use lash::sequence::Partition;
use lash::store::{CorpusReader, Partitioning, StoreOptions};
use lash::{GsmParams, Lash, LashConfig, PatternSet, SequenceDatabase, Vocabulary};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lash-int-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_text() -> (Vocabulary, SequenceDatabase) {
    TextCorpus::generate(&TextConfig {
        sentences: 400,
        lemmas: 150,
        pos_tags: 10,
        avg_sentence_len: 9.0,
        zipf_exponent: 1.0,
        seed: 42,
    })
    .dataset(TextHierarchy::LP)
}

/// Names + frequencies, the partitioning-independent view of a result.
fn named(
    patterns: &PatternSet,
    ctx: &MiningContext,
    vocab: &Vocabulary,
) -> Vec<(Vec<String>, u64)> {
    let mut v: Vec<_> = patterns
        .iter()
        .map(|(ranks, f)| (ctx.decode_names(ranks, vocab), f))
        .collect();
    v.sort();
    v
}

#[test]
fn cold_reopened_corpus_mines_identically_to_memory() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(8, 1, 3).unwrap();

    // The in-memory reference result.
    let in_memory = Lash::default().mine(&db, &vocab, &params).unwrap();

    // Persist, drop every in-memory handle, reopen cold.
    let dir = temp_dir("mine");
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(4));
    lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    drop(db);
    drop(vocab);
    let reader = CorpusReader::open(&dir).unwrap();

    // The LASH distributed job, fed by the parallel multi-shard scan.
    let store_result = reader.mine(&Lash::default(), &params).unwrap();
    assert_eq!(
        named(
            store_result.pattern_set(),
            store_result.context(),
            reader.vocabulary()
        ),
        named(
            in_memory.pattern_set(),
            in_memory.context(),
            reader.vocabulary()
        ),
    );
    assert!(!store_result.pattern_set().is_empty());

    // The map phase ran at shard granularity: one input record per shard —
    // four parallel shard scans fed the map tasks, not a per-sequence loop.
    assert_eq!(
        store_result.mine_metrics.counters.map_input_records,
        reader.num_shards() as u64
    );
    // The f-list came from block headers: no preprocessing job ran.
    assert_eq!(
        store_result.preprocess_metrics.counters.map_input_records,
        0
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn psm_local_miner_from_store_matches_memory() {
    let (vocab, db) = small_text();
    let sigma = 10;
    let params = GsmParams::new(sigma, 0, 3).unwrap();
    let in_memory = Lash::default().mine(&db, &vocab, &params).unwrap();

    let dir = temp_dir("psm");
    let opts = StoreOptions::default().with_partitioning(Partitioning::range(3, 150));
    lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();

    // Preprocess from headers, then run PSM per pivot over partitions built
    // by streaming the corpus — the local-miner path, no MapReduce involved.
    let flist = reader.flist().unwrap().expect("sketches on by default");
    assert_eq!(&FList::compute(&db, &vocab), &flist);
    let ctx = MiningContext::from_flist_only(reader.vocabulary(), flist, sigma);
    let rewriter = Rewriter::new(ctx.space(), &params);
    let miner = PsmMiner::indexed();
    let mut mined = PatternSet::new();
    let mut ranked = Vec::new();
    for pivot in 0..ctx.space().num_frequent() {
        let mut raw = Vec::new();
        for record in reader.scan() {
            let (_, items) = record.unwrap();
            ranked.clear();
            ranked.extend(items.iter().map(|&it| ctx.order().rank(it)));
            if let Some(rewritten) = rewriter.rewrite(&ranked, pivot) {
                raw.push((rewritten, 1));
            }
        }
        let partition = Partition::aggregate(raw);
        let (patterns, _) = miner.mine(&partition, pivot, ctx.space(), &params);
        mined.merge(patterns);
    }

    assert_eq!(
        named(&mined, &ctx, reader.vocabulary()),
        named(in_memory.pattern_set(), in_memory.context(), &vocab),
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn all_partitionings_and_miners_agree_from_store() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(12, 1, 3).unwrap();
    let want = {
        let r = Lash::default().mine(&db, &vocab, &params).unwrap();
        named(r.pattern_set(), r.context(), &vocab)
    };
    for (tag, partitioning) in [
        ("hash1", Partitioning::hash(1)),
        ("hash8", Partitioning::hash(8)),
        ("range", Partitioning::range(5, 90)),
    ] {
        let dir = temp_dir(tag);
        let opts = StoreOptions::default()
            .with_partitioning(partitioning)
            // Tiny blocks: many headers, exercises block machinery.
            .with_block_budget(256);
        lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
        let reader = CorpusReader::open(&dir).unwrap();
        for miner in [lash::MinerKind::Dfs, lash::MinerKind::PsmIndexed] {
            let result = reader
                .mine(&Lash::new(LashConfig::default().with_miner(miner)), &params)
                .unwrap();
            assert_eq!(
                named(result.pattern_set(), result.context(), reader.vocabulary()),
                want,
                "partitioning {tag}, miner {}",
                miner.name()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn sketchless_corpus_falls_back_to_scan_preprocessing() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(10, 1, 3).unwrap();
    let in_memory = Lash::default().mine(&db, &vocab, &params).unwrap();

    let dir = temp_dir("nosketch");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(3))
        .with_sketches(false);
    lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    assert!(reader.flist().unwrap().is_none());
    let result = reader.mine(&Lash::default(), &params).unwrap();
    assert_eq!(
        named(result.pattern_set(), result.context(), reader.vocabulary()),
        named(in_memory.pattern_set(), in_memory.context(), &vocab),
    );
    // Without sketches the sharded f-list job did run — one record per shard.
    assert_eq!(
        result.preprocess_metrics.counters.map_input_records,
        reader.num_shards() as u64
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incrementally_grown_corpus_mines_like_a_rewritten_one() {
    // The facade-level lifecycle: grow a corpus in three sealed
    // generations, mine it with the distributed job, compact, mine again —
    // and always match the result of a corpus written in one shot.
    let (vocab, db) = small_text();
    let params = GsmParams::new(8, 1, 3).unwrap();

    let oneshot_dir = temp_dir("gen-oneshot");
    let opts = || StoreOptions::default().with_partitioning(Partitioning::hash(4));
    lash::store::convert::write_database(&oneshot_dir, &vocab, &db, opts()).unwrap();
    let oneshot = CorpusReader::open(&oneshot_dir).unwrap();
    let want = {
        let r = oneshot.mine(&Lash::default(), &params).unwrap();
        named(r.pattern_set(), r.context(), oneshot.vocabulary())
    };

    let grown_dir = temp_dir("gen-grown");
    let third = db.len() / 3;
    let mut writer = lash::store::CorpusWriter::create(&grown_dir, &vocab, opts()).unwrap();
    for i in 0..third {
        writer.append(db.get(i)).unwrap();
    }
    writer.finish().unwrap();
    for range in [third..2 * third, 2 * third..db.len()] {
        let mut incr = lash::store::IncrementalWriter::open(&grown_dir).unwrap();
        for i in range {
            incr.append(db.get(i)).unwrap();
        }
        incr.finish().unwrap();
    }

    let grown = CorpusReader::open(&grown_dir).unwrap();
    assert_eq!(grown.len(), db.len() as u64);
    let got = {
        let r = grown.mine(&Lash::default(), &params).unwrap();
        named(r.pattern_set(), r.context(), grown.vocabulary())
    };
    assert_eq!(got, want, "generation-grown corpus mined differently");

    lash::store::compact::compact(
        &grown_dir,
        &lash::store::CompactionConfig::default().with_max_generations(1),
    )
    .unwrap();
    let compacted = CorpusReader::open(&grown_dir).unwrap();
    assert_eq!(compacted.num_generations(), 1);
    let got = {
        let r = compacted.mine(&Lash::default(), &params).unwrap();
        named(r.pattern_set(), r.context(), compacted.vocabulary())
    };
    assert_eq!(got, want, "compacted corpus mined differently");

    std::fs::remove_dir_all(&oneshot_dir).unwrap();
    std::fs::remove_dir_all(&grown_dir).unwrap();
}
