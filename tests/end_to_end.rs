//! Integration tests spanning the whole workspace: synthetic corpora from
//! `lash-datagen`, the full LASH pipeline on the MapReduce engine, baseline
//! agreement, determinism, and fault tolerance.

use lash::context::MiningContext;
use lash::datagen::{
    paper_example, ProductConfig, ProductCorpus, ProductHierarchy, TextConfig, TextCorpus,
    TextHierarchy,
};
use lash::distributed::mgfsm::{lash_flat, MgFsm};
use lash::distributed::naive_job::run_naive;
use lash::distributed::semi_naive_job::run_semi_naive;
use lash::mapreduce::{EngineConfig, FailurePlan, Phase};
use lash::matching::matches;
use lash::{GsmParams, Lash, LashConfig, MinerKind};

fn small_text() -> (lash::Vocabulary, lash::SequenceDatabase) {
    TextCorpus::generate(&TextConfig {
        sentences: 300,
        lemmas: 120,
        pos_tags: 8,
        avg_sentence_len: 10.0,
        zipf_exponent: 1.0,
        seed: 17,
    })
    .dataset(TextHierarchy::CLP)
}

fn small_products() -> (lash::Vocabulary, lash::SequenceDatabase) {
    ProductCorpus::generate(&ProductConfig {
        users: 400,
        products: 150,
        root_categories: 6,
        branching: 3,
        max_depth: 7,
        avg_session_len: 4.0,
        zipf_exponent: 1.0,
        seed: 23,
    })
    .dataset(ProductHierarchy::H8)
}

#[test]
fn lash_agrees_with_naive_on_text_corpus() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(10, 1, 3).unwrap();
    let lash = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    let ctx = MiningContext::build(&db, &vocab, params.sigma);
    let (naive, _) = run_naive(&ctx, &params, &EngineConfig::default()).unwrap();
    assert_eq!(lash.pattern_set(), &naive);
    assert!(!naive.is_empty(), "test corpus should produce patterns");
}

#[test]
fn all_miners_agree_on_product_corpus() {
    let (vocab, db) = small_products();
    let params = GsmParams::new(8, 1, 4).unwrap();
    let reference = Lash::new(LashConfig::default().with_miner(MinerKind::Naive))
        .mine(&db, &vocab, &params)
        .unwrap();
    for miner in [
        MinerKind::Bfs,
        MinerKind::Dfs,
        MinerKind::Psm,
        MinerKind::PsmIndexed,
    ] {
        let result = Lash::new(LashConfig::default().with_miner(miner))
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(
            reference.pattern_set(),
            result.pattern_set(),
            "miner {} diverged: {:?}",
            miner.name(),
            reference.pattern_set().diff(result.pattern_set())
        );
    }
    assert!(!reference.pattern_set().is_empty());
}

#[test]
fn semi_naive_agrees_on_text_corpus() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(12, 0, 3).unwrap();
    let ctx = MiningContext::build(&db, &vocab, params.sigma);
    let cluster = EngineConfig::default();
    let (naive, naive_metrics) = run_naive(&ctx, &params, &cluster).unwrap();
    let (semi, semi_metrics) = run_semi_naive(&ctx, &params, &cluster).unwrap();
    assert_eq!(naive, semi);
    // Pruning must not *increase* the shuffle.
    assert!(semi_metrics.counters.map_output_bytes <= naive_metrics.counters.map_output_bytes);
}

#[test]
fn reported_frequencies_match_direct_support_counting() {
    let (vocab, db) = small_products();
    let params = GsmParams::new(8, 1, 3).unwrap();
    let result = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    let ctx = result.context();
    for (pattern, frequency) in result.pattern_set().iter() {
        let direct = (0..ctx.ranked_db().len())
            .filter(|&i| matches(pattern, ctx.ranked_seq(i), ctx.space(), params.gamma))
            .count() as u64;
        assert_eq!(direct, frequency, "pattern {pattern:?}");
    }
}

#[test]
fn results_are_deterministic_across_parallelism_and_splits() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(10, 0, 3).unwrap();
    let reference = Lash::new(LashConfig::new(EngineConfig::sequential()))
        .mine(&db, &vocab, &params)
        .unwrap();
    for (par, split) in [(2, 7), (4, 64), (8, 1000)] {
        let cfg = EngineConfig::default()
            .with_parallelism(par)
            .with_split_size(split)
            .with_reduce_tasks(5);
        let result = Lash::new(LashConfig::new(cfg))
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(
            reference.pattern_set(),
            result.pattern_set(),
            "par={par} split={split}"
        );
    }
}

#[test]
fn pipeline_survives_injected_failures_everywhere() {
    let (vocab, db) = small_products();
    let params = GsmParams::new(8, 1, 3).unwrap();
    let clean = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    let plan = FailurePlan::none()
        .fail_once(Phase::Map, 0)
        .fail_n_times(Phase::Map, 1, 3)
        .fail_once(Phase::Reduce, 0)
        .fail_n_times(Phase::Reduce, 2, 2);
    let cfg = EngineConfig::default()
        .with_split_size(50)
        .with_reduce_tasks(4)
        .with_failures(plan);
    let result = Lash::new(LashConfig::new(cfg))
        .mine(&db, &vocab, &params)
        .unwrap();
    assert_eq!(clean.pattern_set(), result.pattern_set());
    let failed = result.preprocess_metrics.counters.failed_map_tasks
        + result.preprocess_metrics.counters.failed_reduce_tasks
        + result.mine_metrics.counters.failed_map_tasks
        + result.mine_metrics.counters.failed_reduce_tasks;
    assert!(failed >= 7, "both jobs see the same failure plan");
}

#[test]
fn flat_mining_agrees_between_mgfsm_and_lash() {
    let (vocab, db) = small_text();
    let params = GsmParams::new(10, 1, 4).unwrap();
    let a = MgFsm::new(EngineConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    let b = lash_flat(EngineConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    assert_eq!(a.pattern_set(), b.pattern_set());
    // Flat mining never produces more patterns than GSM on the same data.
    let gsm = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    assert!(a.pattern_set().len() <= gsm.pattern_set().len());
}

#[test]
fn paper_example_via_facade() {
    let (vocab, db) = paper_example();
    let params = GsmParams::new(2, 1, 3).unwrap();
    let result = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    let mut names: Vec<(String, u64)> = result
        .patterns()
        .iter()
        .map(|p| (p.display(&vocab), p.frequency))
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            ("B D".to_owned(), 2),
            ("B a".to_owned(), 2),
            ("B c".to_owned(), 2),
            ("a B".to_owned(), 3),
            ("a B c".to_owned(), 2),
            ("a a".to_owned(), 2),
            ("a b1".to_owned(), 2),
            ("a c".to_owned(), 2),
            ("b1 D".to_owned(), 2),
            ("b1 a".to_owned(), 2),
        ]
    );
}

#[test]
fn scaling_output_grows_superlinearly_with_data() {
    // The weak-scaling caveat of Fig. 6(c): doubling the data more than
    // doubles the output at fixed σ... at least it should grow.
    let corpus = TextCorpus::generate(&TextConfig {
        sentences: 1_000,
        lemmas: 200,
        pos_tags: 8,
        avg_sentence_len: 10.0,
        zipf_exponent: 1.0,
        seed: 31,
    });
    let (vocab, db) = corpus.dataset(TextHierarchy::LP);
    let params = GsmParams::new(20, 0, 3).unwrap();
    let half = Lash::new(LashConfig::default())
        .mine(&db.truncated(db.len() / 2), &vocab, &params)
        .unwrap();
    let full = Lash::new(LashConfig::default())
        .mine(&db, &vocab, &params)
        .unwrap();
    assert!(full.pattern_set().len() > half.pattern_set().len());
}
