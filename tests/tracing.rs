//! Acceptance test for end-to-end tracing: a full `mine_sharded` run over
//! an on-disk corpus must emit a single-rooted span tree per job that
//! passes the stream validator, spans every layer (driver, MapReduce
//! phases and tasks, store shard scans, local mining), and accounts for
//! the run's wall time — per-span self times must sum to the root span's
//! duration within 5%.

use std::sync::{Arc, Mutex};

use lash::datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash::obs::{tree, validate, EventSink};
use lash::store::{CorpusReader, Partitioning, StoreOptions};
use lash::{GsmParams, Lash, LashConfig};

/// Collects every emitted JSONL line in memory.
struct CaptureSink(Mutex<Vec<String>>);

impl EventSink for CaptureSink {
    fn emit(&self, line: &str) {
        self.0.lock().expect("capture lock").push(line.to_string());
    }
}

#[test]
fn mine_sharded_emits_one_validated_trace_tree() {
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 400,
        lemmas: 150,
        pos_tags: 10,
        avg_sentence_len: 9.0,
        zipf_exponent: 1.0,
        seed: 42,
    })
    .dataset(TextHierarchy::LP);
    let dir = std::env::temp_dir().join(format!("lash-tracing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(4));
    lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();

    // Sequential execution: with one worker, spans nest without overlap,
    // so self times must tile the root span's duration.
    let config = LashConfig::new(lash::mapreduce::EngineConfig::default().with_parallelism(1));
    let params = GsmParams::new(8, 1, 3).unwrap();

    let sink = Arc::new(CaptureSink(Mutex::new(Vec::new())));
    let previous = lash::obs::global().set_sink(Some(sink.clone()));
    let mined = reader.mine(&Lash::new(config), &params);
    lash::obs::global().set_sink(previous);
    mined.unwrap();

    let stream = sink.0.lock().expect("capture lock").join("\n");
    let (events, stats) = validate::validate_str(&stream)
        .unwrap_or_else(|e| panic!("stream failed validation: {e}\n{stream}"));
    assert!(stats.spans > 0, "no spans captured");

    // Exactly one trace rooted at the driver's `mine.job` span, holding
    // spans from every layer it drove.
    let forest = tree::build_forest(&events);
    let jobs: Vec<&tree::Trace> = forest
        .iter()
        .filter(|t| t.roots.iter().any(|&r| t.nodes[r].name == "mine.job"))
        .collect();
    assert_eq!(jobs.len(), 1, "expected exactly one mine.job trace");
    let job = jobs[0];
    assert_eq!(job.roots.len(), 1, "mine.job trace must be single-rooted");
    // (No `mine.flist` span: `CorpusReader::mine` assembles the f-list
    // from block headers, so the f-list job never runs on this path.)
    for expected in [
        "mapreduce.job",
        "mapreduce.map",
        "mapreduce.map_task",
        "mapreduce.reduce",
        "store.scan.shard",
        "mine.partition",
    ] {
        assert!(
            job.nodes.iter().any(|n| n.name == expected),
            "trace is missing a {expected} span:\n{}",
            tree::render_trace(job)
        );
    }

    // Wall-time accounting: self times tile the root duration. Allow 5%
    // plus a 1ms absolute floor for per-span clock rounding on fast runs.
    let root = job.roots[0];
    let root_dur = job.nodes[root].dur_us;
    let self_sum: u64 = (0..job.nodes.len()).map(|n| job.self_us(n)).sum();
    let tolerance = root_dur / 20 + 1_000;
    assert!(
        self_sum <= root_dur + tolerance && self_sum + tolerance >= root_dur,
        "self times ({self_sum}µs) do not tile the root span ({root_dur}µs):\n{}",
        tree::render_trace(job)
    );

    // The rendered tree flags a hottest path through the run.
    let rendered = tree::render_trace(job);
    assert!(rendered.contains('◆'), "no hot path flagged:\n{rendered}");

    let _ = std::fs::remove_dir_all(&dir);
}
