//! Property-based integration tests: on random hierarchies, databases, and
//! parameters, every execution strategy of LASH must agree with exhaustive
//! enumeration, and the partition rewrites must preserve pivot sequences.

use lash::context::MiningContext;
use lash::distributed::naive_job::run_naive;
use lash::enumeration::enumerate_pivot;
use lash::mapreduce::EngineConfig;
use lash::rewrite::{RewriteLevel, Rewriter};
use lash::{
    GsmParams, Lash, LashConfig, MinerKind, SequenceDatabase, Vocabulary, VocabularyBuilder,
};
use proptest::prelude::*;

/// A random forest hierarchy over `n` items: item `i`'s parent is either
/// none or some earlier item (guaranteeing acyclicity).
fn arb_vocabulary(max_items: usize) -> impl Strategy<Value = Vocabulary> {
    prop::collection::vec(prop::option::weighted(0.6, 0..100usize), 2..max_items).prop_map(
        |parents| {
            let mut vb = VocabularyBuilder::new();
            let items: Vec<_> = (0..parents.len())
                .map(|i| vb.intern(&format!("i{i}")))
                .collect();
            for (i, parent) in parents.iter().enumerate() {
                if i > 0 {
                    if let Some(p) = parent {
                        vb.set_parent(items[i], items[p % i])
                            .expect("parent precedes child");
                    }
                }
            }
            vb.finish().expect("forest by construction")
        },
    )
}

fn arb_database(vocab_len: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0..vocab_len as u32, 0..8), 1..10)
}

fn build_db(vocab: &Vocabulary, raw: &[Vec<u32>]) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for seq in raw {
        let items: Vec<_> = seq
            .iter()
            .map(|&i| lash::ItemId::from_u32(i % vocab.len() as u32))
            .collect();
        db.push(&items);
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: LASH (all miners, all rewrite levels) equals
    /// exhaustive enumeration on arbitrary inputs.
    #[test]
    fn lash_equals_naive_enumeration(
        vocab in arb_vocabulary(12),
        raw in arb_database(12),
        sigma in 1u64..4,
        gamma in 0usize..3,
        lambda in 2usize..5,
    ) {
        let db = build_db(&vocab, &raw);
        let params = GsmParams::new(sigma, gamma, lambda).unwrap();
        let cluster = EngineConfig::default().with_split_size(3).with_reduce_tasks(3);
        let ctx = MiningContext::build(&db, &vocab, sigma);
        let (expected, _) = run_naive(&ctx, &params, &cluster).unwrap();
        for miner in [MinerKind::Bfs, MinerKind::Dfs, MinerKind::PsmIndexed] {
            let result = Lash::new(LashConfig::new(cluster.clone()).with_miner(miner))
                .mine(&db, &vocab, &params)
                .unwrap();
            prop_assert_eq!(
                &expected,
                result.pattern_set(),
                "miner {} diff {:?}",
                miner.name(),
                expected.diff(result.pattern_set())
            );
        }
        let no_rewrites = Lash::new(
            LashConfig::new(cluster).with_rewrite_level(RewriteLevel::None),
        )
        .mine(&db, &vocab, &params)
        .unwrap();
        prop_assert_eq!(&expected, no_rewrites.pattern_set());
    }

    /// The rewrite pipeline is w-equivalent: it preserves the pivot-sequence
    /// set of every sequence for every frequent pivot (Lemmas 2–3).
    #[test]
    fn rewrites_preserve_pivot_sequences(
        vocab in arb_vocabulary(10),
        raw in arb_database(10),
        sigma in 1u64..3,
        gamma in 0usize..3,
        lambda in 2usize..5,
    ) {
        let db = build_db(&vocab, &raw);
        let params = GsmParams::new(sigma, gamma, lambda).unwrap();
        let ctx = MiningContext::build(&db, &vocab, sigma);
        let space = ctx.space();
        let rewriter = Rewriter::new(space, &params);
        for i in 0..ctx.ranked_db().len() {
            let seq = ctx.ranked_seq(i);
            for pivot in 0..space.num_frequent() {
                let original = enumerate_pivot(seq, space, gamma, lambda, pivot);
                let rewritten = match rewriter.rewrite(seq, pivot) {
                    Some(r) => enumerate_pivot(&r, space, gamma, lambda, pivot),
                    None => Default::default(),
                };
                prop_assert_eq!(&original, &rewritten, "seq {} pivot {}", i, pivot);
            }
        }
    }

    /// Support monotonicity (Lemma 1) holds on mined output: every prefix of
    /// a mined pattern has at least its frequency.
    #[test]
    fn output_respects_support_monotonicity(
        vocab in arb_vocabulary(10),
        raw in arb_database(10),
        gamma in 0usize..2,
    ) {
        let db = build_db(&vocab, &raw);
        let params = GsmParams::new(1, gamma, 4).unwrap();
        let result = Lash::new(LashConfig::default()).mine(&db, &vocab, &params).unwrap();
        for (pattern, freq) in result.pattern_set().iter() {
            if pattern.len() > 2 {
                let prefix = &pattern[..pattern.len() - 1];
                if let Some(pf) = result.pattern_set().get(prefix) {
                    prop_assert!(pf >= freq, "prefix {:?} of {:?}", prefix, pattern);
                }
            }
        }
    }

    /// Mining is invariant under sequence order permutations of the database
    /// (support is a multiset count).
    #[test]
    fn order_of_sequences_is_irrelevant(
        vocab in arb_vocabulary(8),
        raw in arb_database(8),
        gamma in 0usize..2,
    ) {
        let params = GsmParams::new(2, gamma, 3).unwrap();
        let db = build_db(&vocab, &raw);
        let mut reversed_raw = raw.clone();
        reversed_raw.reverse();
        let db_rev = build_db(&vocab, &reversed_raw);
        let a = Lash::new(LashConfig::default()).mine(&db, &vocab, &params).unwrap();
        let b = Lash::new(LashConfig::default()).mine(&db_rev, &vocab, &params).unwrap();
        // Rank spaces may differ in tie-breaks; compare in name space.
        let to_names = |r: &lash::LashResult| -> Vec<(Vec<String>, u64)> {
            let mut v: Vec<_> = r
                .patterns()
                .iter()
                .map(|p| (p.to_names(&vocab), p.frequency))
                .collect();
            v.sort();
            v
        };
        prop_assert_eq!(to_names(&a), to_names(&b));
    }
}
