//! The mapped (zero-copy, decode-ahead) and buffered scan engines must
//! deliver identical records — including the final block, which the mapped
//! engine's consumer once dropped when the prefetch thread finished first
//! (its buffered last block was abandoned on a failed batch recycle).

use lash::datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash::sequence::ShardedCorpus;
use lash::store::{CorpusReader, Partitioning, StoreOptions};

#[test]
fn mapped_and_buffered_pruned_scans_agree() {
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 400,
        lemmas: 150,
        pos_tags: 10,
        avg_sentence_len: 9.0,
        zipf_exponent: 1.0,
        seed: 42,
    })
    .dataset(TextHierarchy::LP);

    let dir = std::env::temp_dir().join(format!("lash-mapdbg-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(1))
        .with_block_budget(256);
    lash::store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();

    // A predicate that prunes some blocks: only even item ids relevant.
    let relevant = |it: lash::ItemId| it.as_u32().is_multiple_of(2);

    for shard in 0..reader.num_shards() {
        let mut mapped: Vec<(u64, Vec<u32>)> = Vec::new();
        std::env::set_var("LASH_SCAN_MODE", "mmap");
        ShardedCorpus::scan_shard_pruned(&reader, shard, &relevant, &mut |id, items| {
            mapped.push((id, items.iter().map(|i| i.as_u32()).collect()));
        })
        .unwrap();
        let mut buffered: Vec<(u64, Vec<u32>)> = Vec::new();
        std::env::set_var("LASH_SCAN_MODE", "buffered");
        ShardedCorpus::scan_shard_pruned(&reader, shard, &relevant, &mut |id, items| {
            buffered.push((id, items.iter().map(|i| i.as_u32()).collect()));
        })
        .unwrap();
        std::env::remove_var("LASH_SCAN_MODE");
        assert_eq!(mapped.len(), buffered.len(), "shard {shard} record count");
        for (m, b) in mapped.iter().zip(buffered.iter()) {
            assert_eq!(m, b, "shard {shard}");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
