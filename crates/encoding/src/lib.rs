//! Compact binary codecs used throughout LASH.
//!
//! The LASH paper (Sec. 4.2, Sec. 6.1) represents items as integer ids assigned
//! in frequency order — frequent items get small ids — and compresses the data
//! shipped between the map and reduce phases with variable-length integer
//! encoding and run-length encoding of blank symbols. This crate provides those
//! codecs:
//!
//! * [`varint`] — LEB128-style variable-length encoding of `u32`/`u64`,
//! * [`group_varint`] — the wide, SIMD-friendly block codec: four `u32`s per
//!   control byte with a table-driven branchless decode kernel, plus an
//!   RLE-compatible blank-run escape; the payload codec of `lash-store`'s
//!   format-v3 blocks,
//! * [`zigzag`] — signed-to-unsigned mapping so small magnitudes stay short,
//! * [`rle`] — run-length compression of blank runs inside rewritten sequences,
//! * [`codec`] — the sequence codec combining the above, used as the wire format
//!   of the MapReduce shuffle so that `MAP_OUTPUT_BYTES` is measured on the same
//!   representation the paper uses,
//! * [`frame`] — length-prefixed, checksummed frames, the unit of corruption
//!   detection in `lash-store`'s on-disk block format.
//!
//! All codecs are allocation-conscious: encoders append to caller-provided
//! buffers and decoders read from slices without copying.

// `deny` rather than `forbid`: the one sanctioned exception is the tiny
// mmap FFI module inside `frame` (see `frame::mapped`), which opts in with
// a scoped `#[allow(unsafe_code)]`. Everything else stays safe Rust.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod frame;
pub mod group_varint;
pub mod rle;
pub mod varint;
pub mod zigzag;

pub use codec::{decode_sequence, encode_sequence, SequenceCodec, BLANK};
pub use frame::{
    decode_frame, decode_frame_with, encode_frame, read_frame, read_frame_into,
    split_frame_unverified, write_frame, write_frame_with, FrameChecksum, FrameRead, MappedFrames,
};
pub use varint::{
    decode_u32, decode_u64, encode_u32, encode_u64, encoded_len_u32, encoded_len_u64,
};
pub use zigzag::{decode_i64, encode_i64};

/// Errors returned by decoders in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended in the middle of a value.
    UnexpectedEof,
    /// A varint used more bytes than the maximum for its type.
    Overflow,
    /// A run-length or structural invariant was violated.
    Corrupt(&'static str),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::Overflow => write!(f, "varint overflow"),
            DecodeError::Corrupt(msg) => write!(f, "corrupt encoding: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}
