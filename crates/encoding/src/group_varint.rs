//! Group varint: a SIMD-friendly block codec for `u32` streams.
//!
//! Plain LEB128 varints (the [`crate::varint`] module) decode one *byte* at
//! a time: every byte's continuation bit feeds a branch, so a scan-side
//! decoder retires a handful of bytes per mispredict. Group varint — the
//! layout popularized by Jeff Dean's "Challenges in Building Large-Scale
//! Information Retrieval Systems" talk and used by search engines ever
//! since — moves all length information into a *control byte* shared by
//! four values, so the decode loop is branch-free: one 256-entry table
//! lookup yields the four byte-lengths, four masked little-endian loads
//! yield the values.
//!
//! ## Layout
//!
//! A stream of `n` values is split into ⌈n/4⌉ **groups**. Each group is:
//!
//! ```text
//! ┌─────────┬──────────────┬──────────────┬──────────────┬──────────────┐
//! │ control │ value 0      │ value 1      │ value 2      │ value 3      │
//! │ 1 byte  │ 1–4 bytes LE │ 1–4 bytes LE │ 1–4 bytes LE │ 1–4 bytes LE │
//! └─────────┴──────────────┴──────────────┴──────────────┴──────────────┘
//! ```
//!
//! Bits `2i..2i+2` of the control byte hold `len(value i) - 1`, so a group
//! occupies `1 + len₀ + len₁ + len₂ + len₃` ∈ 5..=17 bytes. When `n` is not
//! a multiple of four, the final group is **zero-padded**: the missing
//! values are encoded as `0` (length 1, one `0x00` byte). The decoder knows
//! `n` and verifies the padding is exactly that, so the encoding of any
//! value slice is unique (encode∘decode and decode∘encode are identities).
//!
//! ## Blank-run escape ([`encode_runs`]/[`decode_runs`])
//!
//! Rewritten LASH sequences are full of blank runs (see [`crate::rle`]),
//! which would otherwise cost one group slot per blank. The run layer keeps
//! the wide kernel intact by segmenting the stream into tagged runs:
//!
//! ```text
//! stream := run*
//! run    := varint((len << 1) | 1)                      // len ≥ 1 blanks
//!         | varint((len << 1) | 0)  group-varint(len)   // len ≥ 1 literals
//! ```
//!
//! A literal run is a maximal stretch of non-blank values, so decoding a
//! blank-free stream is one tag read followed by one uninterrupted wide
//! decode. Blank values inside a literal run are structurally impossible
//! (the encoder escapes them; the decoder rejects them), which makes
//! corruption of the run structure detectable.

use crate::varint;
use crate::DecodeError;

/// Values per control byte.
pub const GROUP_SIZE: usize = 4;

/// Maximum encoded size of one group (control byte + four 4-byte values).
pub const MAX_GROUP_LEN: usize = 1 + 4 * GROUP_SIZE;

/// Value masks by byte length (index 1..=4).
const MASKS: [u32; 5] = [0, 0xff, 0xffff, 0x00ff_ffff, 0xffff_ffff];

/// Per-control-byte decode tables: the four value lengths and their sum.
/// Built at compile time; the decode hot loop is one lookup + four masked
/// loads per group, no data-dependent branches.
const LEN_TABLE: [[u8; GROUP_SIZE]; 256] = build_len_table();
const TOTAL_TABLE: [u8; 256] = build_total_table();

const fn build_len_table() -> [[u8; GROUP_SIZE]; 256] {
    let mut table = [[0u8; GROUP_SIZE]; 256];
    let mut ctrl = 0usize;
    while ctrl < 256 {
        let mut i = 0;
        while i < GROUP_SIZE {
            table[ctrl][i] = ((ctrl >> (2 * i)) & 0b11) as u8 + 1;
            i += 1;
        }
        ctrl += 1;
    }
    table
}

const fn build_total_table() -> [u8; 256] {
    let lens = build_len_table();
    let mut table = [0u8; 256];
    let mut ctrl = 0usize;
    while ctrl < 256 {
        table[ctrl] = lens[ctrl][0] + lens[ctrl][1] + lens[ctrl][2] + lens[ctrl][3];
        ctrl += 1;
    }
    table
}

/// Number of data bytes (1..=4) the group encoding of `value` occupies.
#[inline]
pub fn bytes_for(value: u32) -> usize {
    (32 - (value | 1).leading_zeros()).div_ceil(8) as usize
}

/// Exact encoded size of [`encode`]`(values)`, including tail padding.
pub fn encoded_len(values: &[u32]) -> usize {
    if values.is_empty() {
        return 0;
    }
    let groups = values.len().div_ceil(GROUP_SIZE);
    let padding = groups * GROUP_SIZE - values.len();
    groups + values.iter().map(|&v| bytes_for(v)).sum::<usize>() + padding
}

/// Encodes one full group of four values.
#[inline]
fn encode_group(group: &[u32; GROUP_SIZE], buf: &mut Vec<u8>) {
    let mut ctrl = 0u8;
    for (i, &v) in group.iter().enumerate() {
        ctrl |= ((bytes_for(v) - 1) as u8) << (2 * i);
    }
    buf.push(ctrl);
    for &v in group {
        buf.extend_from_slice(&v.to_le_bytes()[..bytes_for(v)]);
    }
}

/// Appends the group-varint encoding of `values` to `buf` (see the module
/// docs for the layout). An empty slice encodes to nothing.
pub fn encode(values: &[u32], buf: &mut Vec<u8>) {
    let mut chunks = values.chunks_exact(GROUP_SIZE);
    for chunk in &mut chunks {
        let group: &[u32; GROUP_SIZE] = chunk.try_into().expect("exact chunk");
        encode_group(group, buf);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut group = [0u32; GROUP_SIZE];
        group[..rem.len()].copy_from_slice(rem);
        encode_group(&group, buf);
    }
}

/// Decodes exactly `out.len()` values from the front of `input`, returning
/// the number of bytes consumed.
///
/// The hot path is the wide kernel: while at least 16 data bytes remain it
/// performs four masked `u32` little-endian loads per control byte, no
/// per-value branches. Near the end of the input it falls back to a scalar
/// byte-assembly loop so no read ever leaves the slice. Errors are typed:
/// truncation surfaces as [`DecodeError::UnexpectedEof`], nonzero tail
/// padding as [`DecodeError::Corrupt`].
pub fn decode(input: &[u8], out: &mut [u32]) -> Result<usize, DecodeError> {
    let n = out.len();
    let mut pos = 0usize;
    let mut i = 0usize;
    while i + GROUP_SIZE <= n {
        let Some(&ctrl) = input.get(pos) else {
            return Err(DecodeError::UnexpectedEof);
        };
        let lens = &LEN_TABLE[ctrl as usize];
        let total = TOTAL_TABLE[ctrl as usize] as usize;
        if let Some(data) = input.get(pos + 1..pos + 1 + 4 * GROUP_SIZE) {
            // Wide kernel: each value is a full 4-byte load masked down to
            // its length; the load may graze bytes of the *next* value (or
            // group), which the 16-byte window guarantees are in bounds.
            let window: &[u8; 4 * GROUP_SIZE] = data.try_into().expect("16-byte window");
            let dst = &mut out[i..i + GROUP_SIZE];
            let mut off = 0usize;
            for (k, slot) in dst.iter_mut().enumerate() {
                let len = lens[k] as usize;
                let word = u32::from_le_bytes([
                    window[off],
                    window[off + 1],
                    window[off + 2],
                    window[off + 3],
                ]);
                *slot = word & MASKS[len];
                off += len;
            }
        } else {
            decode_group_scalar(input, pos, lens, total, &mut out[i..i + GROUP_SIZE])?;
        }
        pos += 1 + total;
        i += GROUP_SIZE;
    }
    let rem = n - i;
    if rem > 0 {
        let Some(&ctrl) = input.get(pos) else {
            return Err(DecodeError::UnexpectedEof);
        };
        let lens = &LEN_TABLE[ctrl as usize];
        let total = TOTAL_TABLE[ctrl as usize] as usize;
        let mut group = [0u32; GROUP_SIZE];
        decode_group_scalar(input, pos, lens, total, &mut group)?;
        // The encoder pads the tail group with zero-length-1 values; accept
        // exactly that, so every value slice has one unique encoding.
        for (k, &v) in group.iter().enumerate().skip(rem) {
            if lens[k] != 1 || v != 0 {
                return Err(DecodeError::Corrupt("nonzero group-varint tail padding"));
            }
        }
        out[i..].copy_from_slice(&group[..rem]);
        pos += 1 + total;
    }
    Ok(pos)
}

/// Decodes one group reading exactly `total` data bytes — the bounds-exact
/// fallback used near the end of the input and for the padded tail group.
#[inline]
fn decode_group_scalar(
    input: &[u8],
    pos: usize,
    lens: &[u8; GROUP_SIZE],
    total: usize,
    out: &mut [u32],
) -> Result<(), DecodeError> {
    let Some(data) = input.get(pos + 1..pos + 1 + total) else {
        return Err(DecodeError::UnexpectedEof);
    };
    let mut off = 0usize;
    for (k, slot) in out.iter_mut().enumerate() {
        let len = lens[k] as usize;
        let mut v = 0u32;
        for (b, &byte) in data[off..off + len].iter().enumerate() {
            v |= (byte as u32) << (8 * b);
        }
        *slot = v;
        off += len;
    }
    Ok(())
}

/// Maximum values in one run of the [`encode_runs`] stream. The encoder
/// splits longer runs; the decoder rejects longer claims as corruption.
/// The *cumulative* allocation bound is the caller's `max_len` argument to
/// [`decode_runs`] — a per-run cap alone would still let a stream of many
/// blank-run tags amplify a few input bytes into gigabytes of output.
pub const MAX_RUN_LEN: usize = 1 << 24;

/// Encodes `values`, which may contain the `blank` sentinel, as a tagged
/// run stream (see the module docs): maximal blank runs become a single
/// varint tag, maximal literal stretches become one group-varint block.
/// Runs longer than [`MAX_RUN_LEN`] are split.
pub fn encode_runs(values: &[u32], blank: u32, buf: &mut Vec<u8>) {
    let mut rest = values;
    while !rest.is_empty() {
        if rest[0] == blank {
            let run = rest
                .iter()
                .take_while(|&&v| v == blank)
                .count()
                .min(MAX_RUN_LEN);
            varint::encode_u64(((run as u64) << 1) | 1, buf);
            rest = &rest[run..];
        } else {
            let run = rest
                .iter()
                .take_while(|&&v| v != blank)
                .count()
                .min(MAX_RUN_LEN);
            varint::encode_u64((run as u64) << 1, buf);
            encode(&rest[..run], buf);
            rest = &rest[run..];
        }
    }
}

/// Decodes a stream written by [`encode_runs`], consuming the entire input
/// and appending to `out`.
///
/// `max_len` is the caller's upper bound on the number of decoded values
/// (containers carry the count out of band, exactly like [`decode`]'s
/// `out.len()`); a stream claiming more is rejected as corruption before
/// anything is allocated. Blank-run tags amplify — four input bytes can
/// claim [`MAX_RUN_LEN`] values — so without this cumulative bound a tiny
/// hostile input could still grow `out` by gigabytes one capped run at a
/// time.
pub fn decode_runs(
    input: &[u8],
    blank: u32,
    out: &mut Vec<u32>,
    max_len: usize,
) -> Result<(), DecodeError> {
    let mut pos = 0usize;
    let mut remaining = max_len;
    while pos < input.len() {
        let (tag, n) = varint::decode_u64(&input[pos..])?;
        pos += n;
        if tag >> 1 > MAX_RUN_LEN as u64 {
            return Err(DecodeError::Corrupt("run length exceeds maximum"));
        }
        let run = (tag >> 1) as usize;
        if run == 0 {
            return Err(DecodeError::Corrupt("zero-length run"));
        }
        if run > remaining {
            return Err(DecodeError::Corrupt(
                "run stream exceeds declared value count",
            ));
        }
        remaining -= run;
        if tag & 1 == 1 {
            out.extend(std::iter::repeat_n(blank, run));
        } else {
            // A literal run of `run` values occupies at least one data byte
            // per value plus one control byte per group; refuse the claim
            // before allocating if the input cannot possibly hold it.
            let min_bytes = run + run.div_ceil(GROUP_SIZE);
            if input.len() - pos < min_bytes {
                return Err(DecodeError::UnexpectedEof);
            }
            let start = out.len();
            out.resize(start + run, 0);
            pos += decode(&input[pos..], &mut out[start..start + run])?;
            if out[start..].contains(&blank) {
                return Err(DecodeError::Corrupt("unescaped blank in literal run"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(values: &[u32]) -> Vec<u8> {
        let mut buf = Vec::new();
        encode(values, &mut buf);
        assert_eq!(buf.len(), encoded_len(values), "encoded_len for {values:?}");
        let mut out = vec![0u32; values.len()];
        let consumed = decode(&buf, &mut out).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(out, values);
        buf
    }

    #[test]
    fn round_trips_representative_streams() {
        round_trip(&[]);
        round_trip(&[0]);
        round_trip(&[1, 2, 3]);
        round_trip(&[0, 255, 256, 65_535]);
        round_trip(&[65_536, 1 << 24, u32::MAX, 7, 1, 0, 300, 70_000, 9]);
        round_trip(
            &(0..97u32)
                .map(|i| i.wrapping_mul(2_654_435_761))
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn layout_matches_documentation() {
        // Four values of widths 1, 2, 3, 4: control byte 0b11_10_01_00,
        // then the little-endian bytes back to back.
        let values = [0x05, 0x1234, 0x0abcde, 0xdead_beef];
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        assert_eq!(
            buf,
            [
                0b11_10_01_00,
                0x05,
                0x34,
                0x12,
                0xde,
                0xbc,
                0x0a,
                0xef,
                0xbe,
                0xad,
                0xde,
            ]
        );
    }

    #[test]
    fn tail_group_is_zero_padded() {
        // One value → control byte for (len 1, pad, pad, pad) + 1 data byte
        // + 3 padding zero bytes.
        let mut buf = Vec::new();
        encode(&[7], &mut buf);
        assert_eq!(buf, [0b00_00_00_00, 7, 0, 0, 0]);
    }

    #[test]
    fn rejects_nonzero_tail_padding() {
        let mut buf = Vec::new();
        encode(&[7, 8], &mut buf);
        // Corrupt a padding byte.
        let last = buf.len() - 1;
        buf[last] = 1;
        let mut out = [0u32; 2];
        assert_eq!(
            decode(&buf, &mut out),
            Err(DecodeError::Corrupt("nonzero group-varint tail padding"))
        );
        // Widen a padding slot's length bits.
        let mut buf2 = Vec::new();
        encode(&[7, 8], &mut buf2);
        buf2[0] |= 0b01 << 4;
        buf2.push(0);
        assert_eq!(
            decode(&buf2, &mut out),
            Err(DecodeError::Corrupt("nonzero group-varint tail padding"))
        );
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let values: Vec<u32> = (0..23).map(|i| i * 1_000_003).collect();
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        let mut out = vec![0u32; values.len()];
        for cut in 0..buf.len() {
            assert_eq!(
                decode(&buf[..cut], &mut out),
                Err(DecodeError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let values = [9u32, 300, 70_000, 5, 6];
        let mut buf = Vec::new();
        encode(&values, &mut buf);
        let encoded = buf.len();
        buf.extend_from_slice(&[0xde, 0xad]);
        let mut out = vec![0u32; values.len()];
        assert_eq!(decode(&buf, &mut out).unwrap(), encoded);
        assert_eq!(out, values);
    }

    #[test]
    fn runs_round_trip_blanks_and_literals() {
        const B: u32 = u32::MAX;
        for values in [
            vec![],
            vec![B, B, B],
            vec![1, 2, 3, 4, 5],
            vec![B, 1, B, B, 2, 3, B],
            vec![0, B, 0, B, 0],
        ] {
            let mut buf = Vec::new();
            encode_runs(&values, B, &mut buf);
            let mut out = Vec::new();
            decode_runs(&buf, B, &mut out, values.len()).unwrap();
            assert_eq!(out, values, "values {values:?}");
        }
    }

    #[test]
    fn blank_runs_cost_one_tag() {
        const B: u32 = u32::MAX;
        let mut buf = Vec::new();
        encode_runs(&[B; 1000], B, &mut buf);
        assert_eq!(buf.len(), 2); // varint(1000 << 1 | 1)
    }

    #[test]
    fn runs_reject_structural_corruption() {
        const B: u32 = u32::MAX;
        let mut out = Vec::new();
        // Zero-length run tag.
        assert_eq!(
            decode_runs(&[0x00], B, &mut out, 64),
            Err(DecodeError::Corrupt("zero-length run"))
        );
        // A literal run containing the blank sentinel: encode 4 values then
        // flip one to BLANK by hand (width 4, value u32::MAX).
        let mut buf = Vec::new();
        varint::encode_u64(1 << 1, &mut buf);
        encode(&[u32::MAX], &mut buf);
        out.clear();
        assert_eq!(
            decode_runs(&buf, B, &mut out, 64),
            Err(DecodeError::Corrupt("unescaped blank in literal run"))
        );
        // Truncated literal payload.
        let mut buf = Vec::new();
        encode_runs(&[1, 2, 3, 4, 5], B, &mut buf);
        out.clear();
        assert_eq!(
            decode_runs(&buf[..buf.len() - 2], B, &mut out, 64),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn runs_bound_decoder_allocations() {
        const B: u32 = u32::MAX;
        let mut out = Vec::new();
        // A tiny input claiming an enormous blank run is corruption, not an
        // allocation.
        let mut buf = Vec::new();
        varint::encode_u64(((MAX_RUN_LEN as u64 + 1) << 1) | 1, &mut buf);
        assert_eq!(
            decode_runs(&buf, B, &mut out, usize::MAX),
            Err(DecodeError::Corrupt("run length exceeds maximum"))
        );
        // A tiny input claiming a large *literal* run cannot possibly hold
        // it: rejected before the output is resized.
        let mut buf = Vec::new();
        varint::encode_u64(1_000_000u64 << 1, &mut buf);
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            decode_runs(&buf, B, &mut out, usize::MAX),
            Err(DecodeError::UnexpectedEof)
        );
        // The cumulative bound: many per-run-legal blank tags cannot amplify
        // past the caller's declared value count.
        let mut buf = Vec::new();
        for _ in 0..4 {
            varint::encode_u64((3u64 << 1) | 1, &mut buf);
        }
        out.clear();
        assert_eq!(
            decode_runs(&buf, B, &mut out, 10),
            Err(DecodeError::Corrupt(
                "run stream exceeds declared value count"
            ))
        );
        assert!(out.len() <= 10, "decoder grew output past the declared cap");
        out.clear();
        decode_runs(&buf, B, &mut out, 12).unwrap();
        assert_eq!(out, vec![B; 12]);
    }

    #[test]
    fn bytes_for_matches_widths() {
        assert_eq!(bytes_for(0), 1);
        assert_eq!(bytes_for(255), 1);
        assert_eq!(bytes_for(256), 2);
        assert_eq!(bytes_for(65_535), 2);
        assert_eq!(bytes_for(65_536), 3);
        assert_eq!(bytes_for((1 << 24) - 1), 3);
        assert_eq!(bytes_for(1 << 24), 4);
        assert_eq!(bytes_for(u32::MAX), 4);
    }
}
