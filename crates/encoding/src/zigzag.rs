//! ZigZag mapping between signed and unsigned integers.
//!
//! Maps signed values with small magnitude to unsigned values with small
//! magnitude (`0 → 0`, `-1 → 1`, `1 → 2`, `-2 → 3`, …) so they varint-encode
//! compactly. Used for delta-encoded position lists.

/// Maps an `i64` to a `u64` preserving closeness to zero.
#[inline]
pub fn encode_i64(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`encode_i64`].
#[inline]
pub fn decode_i64(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_small_magnitudes_to_small_codes() {
        assert_eq!(encode_i64(0), 0);
        assert_eq!(encode_i64(-1), 1);
        assert_eq!(encode_i64(1), 2);
        assert_eq!(encode_i64(-2), 3);
        assert_eq!(encode_i64(2), 4);
    }

    #[test]
    fn round_trips_extremes() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(decode_i64(encode_i64(v)), v);
        }
    }

    #[test]
    fn round_trips_dense_range() {
        for v in -1000..1000i64 {
            assert_eq!(decode_i64(encode_i64(v)), v);
        }
    }
}
