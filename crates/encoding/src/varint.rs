//! LEB128-style variable-length integer encoding.
//!
//! Values are written 7 bits at a time, least-significant group first; the high
//! bit of each byte marks continuation. Small values — in LASH, the ids of
//! frequent items — occupy a single byte, which is what makes the paper's
//! "frequent items get small integer ids" re-encoding pay off on the wire.

use crate::DecodeError;

/// Maximum encoded length of a `u32` (5 bytes: ⌈32/7⌉).
pub const MAX_LEN_U32: usize = 5;
/// Maximum encoded length of a `u64` (10 bytes: ⌈64/7⌉).
pub const MAX_LEN_U64: usize = 10;

/// Appends the varint encoding of `value` to `buf`.
#[inline]
pub fn encode_u32(mut value: u32, buf: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends the varint encoding of `value` to `buf`.
#[inline]
pub fn encode_u64(mut value: u64, buf: &mut Vec<u8>) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes [`encode_u32`] would write for `value`.
#[inline]
pub fn encoded_len_u32(value: u32) -> usize {
    // 1 + floor(bits/7) for the number of significant bits (at least one byte).
    ((32 - (value | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Number of bytes [`encode_u64`] would write for `value`.
#[inline]
pub fn encoded_len_u64(value: u64) -> usize {
    ((64 - (value | 1).leading_zeros()) as usize).div_ceil(7)
}

/// Decodes a varint `u32` from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn decode_u32(input: &[u8]) -> Result<(u32, usize), DecodeError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_LEN_U32 {
            return Err(DecodeError::Overflow);
        }
        let bits = (byte & 0x7f) as u32;
        // The 5th byte of a u32 varint may only carry 4 significant bits.
        if shift == 28 && bits > 0x0f {
            return Err(DecodeError::Overflow);
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(DecodeError::UnexpectedEof)
}

/// Decodes a varint `u64` from the front of `input`.
///
/// Returns the value and the number of bytes consumed.
#[inline]
pub fn decode_u64(input: &[u8]) -> Result<(u64, usize), DecodeError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in input.iter().enumerate() {
        if i >= MAX_LEN_U64 {
            return Err(DecodeError::Overflow);
        }
        let bits = (byte & 0x7f) as u64;
        // The 10th byte of a u64 varint may only carry 1 significant bit.
        if shift == 63 && bits > 1 {
            return Err(DecodeError::Overflow);
        }
        value |= bits << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(DecodeError::UnexpectedEof)
}

/// A cursor-style reader for consuming consecutive varints from a slice.
#[derive(Debug)]
pub struct VarintReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> VarintReader<'a> {
    /// Creates a reader over `input` starting at offset 0.
    pub fn new(input: &'a [u8]) -> Self {
        VarintReader { input, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Reads the next `u32`.
    pub fn read_u32(&mut self) -> Result<u32, DecodeError> {
        let (v, n) = decode_u32(&self.input[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads the next `u64`.
    pub fn read_u64(&mut self) -> Result<u64, DecodeError> {
        let (v, n) = decode_u64(&self.input[self.pos..])?;
        self.pos += n;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_small_values_in_one_byte() {
        for v in 0..128u32 {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), 1, "value {v}");
            assert_eq!(decode_u32(&buf).unwrap(), (v, 1));
        }
    }

    #[test]
    fn round_trips_boundary_values_u32() {
        for v in [0, 1, 127, 128, 16_383, 16_384, u32::MAX - 1, u32::MAX] {
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u32(v), "len mismatch for {v}");
            let (decoded, n) = decode_u32(&buf).unwrap();
            assert_eq!((decoded, n), (v, buf.len()));
        }
    }

    #[test]
    fn round_trips_boundary_values_u64() {
        for v in [0u64, 127, 128, 1 << 35, u64::MAX - 1, u64::MAX] {
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u64(v), "len mismatch for {v}");
            let (decoded, n) = decode_u64(&buf).unwrap();
            assert_eq!((decoded, n), (v, buf.len()));
        }
    }

    #[test]
    fn max_u32_takes_five_bytes() {
        let mut buf = Vec::new();
        encode_u32(u32::MAX, &mut buf);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn rejects_truncated_input() {
        let mut buf = Vec::new();
        encode_u32(300, &mut buf);
        assert_eq!(decode_u32(&buf[..1]), Err(DecodeError::UnexpectedEof));
        assert_eq!(decode_u32(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn rejects_overlong_u32() {
        // Six continuation bytes can never be a valid u32.
        let bad = [0x80, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(decode_u32(&bad), Err(DecodeError::Overflow));
        // A 5-byte varint whose top byte has too many significant bits.
        let bad = [0xff, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(decode_u32(&bad), Err(DecodeError::Overflow));
    }

    #[test]
    fn rejects_overlong_u64() {
        let bad = [0x80; 11];
        assert_eq!(decode_u64(&bad), Err(DecodeError::Overflow));
        let mut bad = vec![0xff; 9];
        bad.push(0x7f); // 10th byte with >1 significant bit
        assert_eq!(decode_u64(&bad), Err(DecodeError::Overflow));
    }

    #[test]
    fn reader_consumes_consecutive_values() {
        let mut buf = Vec::new();
        for v in [0u32, 5, 1000, 123_456_789] {
            encode_u32(v, &mut buf);
        }
        encode_u64(u64::MAX, &mut buf);
        let mut r = VarintReader::new(&buf);
        assert_eq!(r.read_u32().unwrap(), 0);
        assert_eq!(r.read_u32().unwrap(), 5);
        assert_eq!(r.read_u32().unwrap(), 1000);
        assert_eq!(r.read_u32().unwrap(), 123_456_789);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert!(r.is_empty());
    }

    #[test]
    fn encoded_len_matches_actual_for_powers_of_two() {
        for shift in 0..32 {
            let v = 1u32 << shift;
            let mut buf = Vec::new();
            encode_u32(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u32(v), "shift {shift}");
        }
        for shift in 0..64 {
            let v = 1u64 << shift;
            let mut buf = Vec::new();
            encode_u64(v, &mut buf);
            assert_eq!(buf.len(), encoded_len_u64(v), "shift {shift}");
        }
    }
}
