//! Length-prefixed, checksummed frames.
//!
//! A frame wraps an opaque payload for storage or transport:
//!
//! ```text
//! +----------------+-----------+-------------------+
//! | varint payload | payload   | FNV-1a-32 of the  |
//! | length (u32)   | bytes     | payload (4 bytes, |
//! |                |           | little-endian)    |
//! +----------------+-----------+-------------------+
//! ```
//!
//! Frames are the unit of corruption detection in the on-disk corpus format
//! (`lash-store` writes every block header and block payload as one frame):
//! a truncated file ends with an incomplete frame and is reported as
//! [`DecodeError::UnexpectedEof`]; a flipped bit fails the checksum and is
//! reported as [`DecodeError::Corrupt`]. Decoders never panic on garbage.
//!
//! Two checksum flavors share the frame layout ([`FrameChecksum`]): the
//! original byte-at-a-time FNV-1a-32, and a word-at-a-time variant
//! ([`checksum_wide`]) that folds eight bytes per multiply — roughly an
//! order of magnitude faster to verify, which matters once block *decoding*
//! is no longer the scan bottleneck. A stream's flavor is fixed by its
//! container format (`lash-store` format-v3 segments use the wide flavor
//! for block frames), not self-described, so the layout stays identical.

use std::io::{self, Read, Write};
use std::path::Path;

use crate::varint;
use crate::DecodeError;

/// Maximum accepted payload length (1 GiB) — guards against reading an
/// absurd length prefix from corrupt input and attempting the allocation.
pub const MAX_FRAME_LEN: usize = 1 << 30;

/// Default target payload size of one frame-wrapped block (64 KiB).
///
/// The shared buffer-cap every framed block stream in the workspace cuts
/// at: `lash-store` segment blocks, `lash-index` trie blocks, and the
/// MapReduce spill chunks all buffer records until the payload reaches
/// this budget and then seal the frame. One named constant instead of a
/// `64 * 1024` literal per crate, so the trade-off (frame overhead and
/// checksum granularity vs. corruption blast radius and decode-batch
/// size) is tuned in one place.
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

/// FNV-1a 32-bit checksum of `bytes`.
#[inline]
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Word-wise FNV-1a-64 folded to 32 bits: the payload is consumed as
/// little-endian `u64` words (the tail zero-padded), the byte length is
/// mixed in last so zero-padding cannot alias, and the halves of the final
/// state are XOR-folded. One multiply per eight bytes instead of one per
/// byte — the verification-side twin of the wide decode kernel.
#[inline]
pub fn checksum_wide(bytes: &[u8]) -> u32 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = (h ^ word).wrapping_mul(PRIME);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = (h ^ u64::from_le_bytes(tail)).wrapping_mul(PRIME);
    }
    h = (h ^ bytes.len() as u64).wrapping_mul(PRIME);
    ((h >> 32) ^ h) as u32
}

/// Which checksum a frame stream uses (the layout is identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameChecksum {
    /// Byte-at-a-time FNV-1a-32 — the original flavor; all pre-v3 streams.
    #[default]
    Fnv1a,
    /// Word-at-a-time [`checksum_wide`] — `lash-store` v3 block frames.
    Fnv1aWide,
}

impl FrameChecksum {
    #[inline]
    fn compute(self, payload: &[u8]) -> u32 {
        match self {
            FrameChecksum::Fnv1a => checksum(payload),
            FrameChecksum::Fnv1aWide => checksum_wide(payload),
        }
    }
}

/// Appends a frame wrapping `payload` to `buf`.
pub fn encode_frame(payload: &[u8], buf: &mut Vec<u8>) {
    debug_assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    varint::encode_u32(payload.len() as u32, buf);
    buf.extend_from_slice(payload);
    buf.extend_from_slice(&checksum(payload).to_le_bytes());
}

/// Number of bytes [`encode_frame`] writes for a payload of `len` bytes.
pub fn encoded_frame_len(len: usize) -> usize {
    varint::encoded_len_u32(len as u32) + len + 4
}

/// Decodes one frame from the front of `input`.
///
/// Returns the payload slice (borrowed from `input`) and the total number of
/// bytes consumed. Truncated input yields [`DecodeError::UnexpectedEof`];
/// a checksum mismatch or over-long length yields [`DecodeError::Corrupt`].
pub fn decode_frame(input: &[u8]) -> Result<(&[u8], usize), DecodeError> {
    decode_frame_with(input, FrameChecksum::Fnv1a)
}

/// [`decode_frame`] with an explicit checksum flavor.
pub fn decode_frame_with(input: &[u8], kind: FrameChecksum) -> Result<(&[u8], usize), DecodeError> {
    let (payload, total) = split_frame_unverified(input)?;
    let stored = u32::from_le_bytes(
        input[total - 4..total]
            .try_into()
            .expect("4 checksum bytes sliced above"),
    );
    if stored != kind.compute(payload) {
        return Err(DecodeError::Corrupt("frame checksum mismatch"));
    }
    Ok((payload, total))
}

/// Splits one frame off the front of `input` **without** verifying its
/// checksum: returns the payload slice and the total bytes consumed.
///
/// This is the zero-copy window primitive behind [`MappedFrames`] scans:
/// a stream whose checksums were all verified once (at open) is walked
/// again with only the structural bounds checks, no per-frame hashing.
/// Never use it on bytes that have not been verified through
/// [`decode_frame_with`] first — a flipped bit would go undetected.
pub fn split_frame_unverified(input: &[u8]) -> Result<(&[u8], usize), DecodeError> {
    let (len, header) = varint::decode_u32(input)?;
    let len = len as usize;
    if len > MAX_FRAME_LEN {
        return Err(DecodeError::Corrupt("frame length exceeds maximum"));
    }
    let total = header + len + 4;
    if input.len() < total {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok((&input[header..header + len], total))
}

/// Writes a frame wrapping `payload` to an [`io::Write`].
pub fn write_frame(payload: &[u8], writer: &mut impl Write) -> io::Result<()> {
    write_frame_with(payload, writer, FrameChecksum::Fnv1a)
}

/// Writes a frame wrapping `payload` with the given checksum flavor.
pub fn write_frame_with(
    payload: &[u8],
    writer: &mut impl Write,
    kind: FrameChecksum,
) -> io::Result<()> {
    let mut prefix = Vec::with_capacity(varint::MAX_LEN_U32);
    varint::encode_u32(payload.len() as u32, &mut prefix);
    writer.write_all(&prefix)?;
    writer.write_all(payload)?;
    writer.write_all(&kind.compute(payload).to_le_bytes())
}

/// Reads only a frame's varint length prefix, for callers that want to seek
/// past the frame instead of reading it.
///
/// Returns `Ok(Some(n))` where `n` is the number of bytes remaining in the
/// frame after the prefix (payload plus checksum trailer) — the caller skips
/// the frame by advancing exactly `n` bytes. A stream already at
/// end-of-stream returns `Ok(None)`; a stream ending inside the prefix or an
/// over-long length is an error.
pub fn read_frame_len(reader: &mut impl Read) -> io::Result<Option<u64>> {
    let mut prefix = [0u8; varint::MAX_LEN_U32];
    let mut filled = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            Ok(_) => {
                prefix[filled] = byte[0];
                filled += 1;
                if byte[0] & 0x80 == 0 {
                    break;
                }
                if filled == varint::MAX_LEN_U32 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "frame length prefix overlong",
                    ));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let (len, _) = varint::decode_u32(&prefix[..filled])
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("frame length: {e}")))?;
    if len as usize > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds maximum",
        ));
    }
    Ok(Some(len as u64 + 4))
}

/// Outcome of [`read_frame`]: a payload or a clean end-of-stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete, checksum-verified payload.
    Payload(Vec<u8>),
    /// The reader was already at end-of-stream (no partial frame).
    Eof,
}

/// Reads one frame from an [`io::Read`] into an owned buffer.
///
/// A stream that ends exactly on a frame boundary returns
/// [`FrameRead::Eof`]; a stream that ends *inside* a frame returns
/// [`DecodeError::UnexpectedEof`] mapped into `io::ErrorKind::UnexpectedEof`.
/// Corruption is reported as `io::ErrorKind::InvalidData`.
pub fn read_frame(reader: &mut impl Read) -> io::Result<FrameRead> {
    let mut payload = Vec::new();
    match read_frame_into(reader, &mut payload, FrameChecksum::Fnv1a)? {
        Some(len) => {
            payload.truncate(len);
            Ok(FrameRead::Payload(payload))
        }
        None => Ok(FrameRead::Eof),
    }
}

/// Reads one frame into a caller-owned buffer, verifying with the given
/// checksum flavor; the hot-loop twin of [`read_frame`] — the buffer only
/// grows, so a scan reading thousands of block frames allocates a handful
/// of times total.
///
/// Returns `Ok(Some(len))` with the payload in `buf[..len]` (bytes past
/// `len` are stale garbage from earlier frames), or `Ok(None)` at a clean
/// end-of-stream.
pub fn read_frame_into(
    reader: &mut impl Read,
    buf: &mut Vec<u8>,
    kind: FrameChecksum,
) -> io::Result<Option<usize>> {
    // Read the varint length byte-by-byte so we never consume past the frame.
    let Some(remaining) = read_frame_len(reader)? else {
        return Ok(None);
    };
    let len = (remaining - 4) as usize;
    if buf.len() < len {
        buf.resize(len, 0);
    }
    reader.read_exact(&mut buf[..len]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(io::ErrorKind::UnexpectedEof, "stream ended inside a frame")
        } else {
            e
        }
    })?;
    let mut stored = [0u8; 4];
    reader.read_exact(&mut stored).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream ended inside a frame checksum",
            )
        } else {
            e
        }
    })?;
    if u32::from_le_bytes(stored) != kind.compute(&buf[..len]) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some(len))
}

/// The raw `mmap(2)` FFI — the workspace's only unsafe code, kept to the
/// smallest possible surface: map a read-only private view of a file,
/// expose it as a byte slice, unmap on drop. The symbols come from libc,
/// which std already links on every unix target.
///
/// Soundness relies on the mapped file being **immutable while mapped**:
/// truncating a mapped file turns reads into `SIGBUS`. The store only maps
/// sealed segment files, which are append-once and replaced by rename —
/// deletion unlinks the name but keeps the inode alive until the map is
/// dropped — so the invariant holds by construction there. Callers mapping
/// other files must uphold it themselves.
#[cfg(all(unix, target_pointer_width = "64"))]
#[allow(unsafe_code)]
mod mapped {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    const PROT_READ: i32 = 1;
    const MAP_PRIVATE: i32 = 2;

    /// An owned read-only mapping of one file.
    pub struct Map {
        ptr: *mut u8,
        len: usize,
    }

    // The mapping is read-only and owned: no aliasing mutation can occur
    // through it, so sharing the view across threads is sound.
    unsafe impl Send for Map {}
    unsafe impl Sync for Map {}

    impl Map {
        /// Maps `len` bytes of `file` read-only. `len` must be non-zero
        /// (mapping zero bytes is an `EINVAL`; callers special-case empty
        /// files) and no larger than the file.
        pub fn new(file: &File, len: usize) -> io::Result<Map> {
            debug_assert!(len > 0, "zero-length maps are the caller's case");
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Map { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Map {
        fn drop(&mut self) {
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }
}

/// How a [`MappedFrames`] holds its bytes.
enum FrameBacking {
    /// A zero-copy `mmap(2)` view (64-bit unix only).
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mapped::Map),
    /// A plain heap read — the portable fallback, and the representation of
    /// empty files (zero-length maps are invalid).
    Heap(Vec<u8>),
}

/// A whole frame file held as one contiguous byte view — memory-mapped
/// where the platform supports it, heap-loaded otherwise — so frame
/// payloads can be consumed as zero-copy windows instead of per-frame
/// buffer reads.
///
/// `MappedFrames` itself performs no checksum verification; the intended
/// protocol (used by `lash-store` mapped segment scans) is to verify every
/// frame **once at open** with [`decode_frame_with`] and thereafter walk
/// the same bytes with [`split_frame_unverified`].
pub struct MappedFrames {
    backing: FrameBacking,
}

impl MappedFrames {
    /// Opens `path`, mapping it read-only when possible and falling back
    /// to reading it onto the heap (non-unix platforms, exotic
    /// filesystems where `mmap` fails).
    ///
    /// The mapped file must not be truncated or rewritten in place while
    /// this view is alive (see the soundness note on the FFI module);
    /// append-once, rename-replaced files — like sealed store segments —
    /// satisfy this by construction.
    pub fn open(path: &Path) -> io::Result<MappedFrames> {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let file = std::fs::File::open(path)?;
            let len = file.metadata()?.len();
            if len > 0 && usize::try_from(len).is_ok() {
                if let Ok(map) = mapped::Map::new(&file, len as usize) {
                    return Ok(MappedFrames {
                        backing: FrameBacking::Mapped(map),
                    });
                }
            }
        }
        Ok(MappedFrames {
            backing: FrameBacking::Heap(std::fs::read(path)?),
        })
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(unix, target_pointer_width = "64"))]
            FrameBacking::Mapped(map) => map.bytes(),
            FrameBacking::Heap(bytes) => bytes,
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// True for an empty file.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the view is a real `mmap`, false on the heap fallback.
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            matches!(self.backing, FrameBacking::Mapped(_))
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_round_trip() {
        let mut buf = Vec::new();
        encode_frame(b"hello", &mut buf);
        encode_frame(b"", &mut buf);
        encode_frame(&[0xffu8; 300], &mut buf);
        assert_eq!(
            buf.len(),
            encoded_frame_len(5) + encoded_frame_len(0) + encoded_frame_len(300)
        );
        let (p1, n1) = decode_frame(&buf).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = decode_frame(&buf[n1..]).unwrap();
        assert_eq!(p2, b"");
        let (p3, n3) = decode_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!(p3, &[0xffu8; 300]);
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        encode_frame(b"some payload", &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(
                decode_frame(&buf[..cut]),
                Err(DecodeError::UnexpectedEof),
                "cut at {cut}"
            );
        }
        assert_eq!(decode_frame(&[]), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn bit_flips_fail_the_checksum() {
        let mut buf = Vec::new();
        encode_frame(b"sensitive bytes", &mut buf);
        for i in 1..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[i] ^= 0x01;
            assert!(
                decode_frame(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        varint::encode_u32(u32::MAX, &mut buf);
        assert_eq!(
            decode_frame(&buf),
            Err(DecodeError::Corrupt("frame length exceeds maximum"))
        );
    }

    #[test]
    fn io_round_trip() {
        let mut buf = Vec::new();
        write_frame(b"first", &mut buf).unwrap();
        write_frame(b"second", &mut buf).unwrap();
        let mut cursor = &buf[..];
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Payload(b"first".to_vec())
        );
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            FrameRead::Payload(b"second".to_vec())
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), FrameRead::Eof);
    }

    #[test]
    fn io_truncation_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(b"payload", &mut buf).unwrap();
        for cut in 1..buf.len() {
            let mut cursor = &buf[..cut];
            let err = read_frame(&mut cursor).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn io_corruption_is_invalid_data() {
        let mut buf = Vec::new();
        write_frame(b"payload", &mut buf).unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let mut cursor = &buf[..];
        let err = read_frame(&mut cursor).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn checksum_is_stable() {
        // Pinned so the on-disk format cannot silently change.
        assert_eq!(checksum(b""), 0x811c_9dc5);
        assert_eq!(checksum(b"lash"), checksum(b"lash"));
        assert_ne!(checksum(b"lash"), checksum(b"lasi"));
    }

    #[test]
    fn wide_checksum_detects_flips_padding_and_length() {
        // Deterministic.
        assert_eq!(checksum_wide(b"lash"), checksum_wide(b"lash"));
        // Single-bit flips anywhere change the sum (bijective multiply).
        let payload: Vec<u8> = (0..37u8).collect();
        let base = checksum_wide(&payload);
        for i in 0..payload.len() {
            let mut flipped = payload.clone();
            flipped[i] ^= 0x40;
            assert_ne!(checksum_wide(&flipped), base, "flip at {i}");
        }
        // Trailing zeros are not absorbed by the tail padding.
        assert_ne!(checksum_wide(b"abc"), checksum_wide(b"abc\0"));
        assert_ne!(checksum_wide(b""), checksum_wide(b"\0\0\0\0\0\0\0\0"));
    }

    #[test]
    fn wide_frames_round_trip_and_reject_corruption() {
        let mut buf = Vec::new();
        write_frame_with(b"wide payload", &mut buf, FrameChecksum::Fnv1aWide).unwrap();
        write_frame_with(b"", &mut buf, FrameChecksum::Fnv1aWide).unwrap();
        let mut cursor = &buf[..];
        let mut scratch = Vec::new();
        let n = read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1aWide)
            .unwrap()
            .unwrap();
        assert_eq!(&scratch[..n], b"wide payload");
        let n = read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1aWide)
            .unwrap()
            .unwrap();
        assert_eq!(n, 0);
        assert_eq!(
            read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1aWide).unwrap(),
            None
        );
        // A wide frame read with the classic flavor (or flipped) fails.
        let mut cursor = &buf[..];
        assert!(read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1a).is_err());
        let mut corrupt = buf.clone();
        corrupt[3] ^= 0x10;
        let mut cursor = &corrupt[..];
        assert!(read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1aWide).is_err());
    }

    #[test]
    fn split_frame_unverified_skips_the_checksum() {
        let mut buf = Vec::new();
        encode_frame(b"payload bytes", &mut buf);
        // Corrupt the checksum trailer: the unverified split still returns
        // the payload (that is its contract), the verified one rejects it.
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        let (payload, consumed) = split_frame_unverified(&buf).unwrap();
        assert_eq!(payload, b"payload bytes");
        assert_eq!(consumed, buf.len());
        assert!(decode_frame(&buf).is_err());
        // Structural errors are still caught.
        assert_eq!(
            split_frame_unverified(&buf[..3]),
            Err(DecodeError::UnexpectedEof)
        );
    }

    #[test]
    fn decode_frame_with_honors_the_flavor() {
        let mut buf = Vec::new();
        write_frame_with(b"wide", &mut buf, FrameChecksum::Fnv1aWide).unwrap();
        let (payload, n) = decode_frame_with(&buf, FrameChecksum::Fnv1aWide).unwrap();
        assert_eq!(payload, b"wide");
        assert_eq!(n, buf.len());
        assert!(decode_frame_with(&buf, FrameChecksum::Fnv1a).is_err());
    }

    #[test]
    fn mapped_frames_expose_the_file_bytes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lash-mapped-frames-{}", std::process::id()));
        let mut bytes = Vec::new();
        encode_frame(b"first", &mut bytes);
        encode_frame(b"second", &mut bytes);
        std::fs::write(&path, &bytes).unwrap();
        let mapped = MappedFrames::open(&path).unwrap();
        assert_eq!(mapped.bytes(), &bytes[..]);
        assert_eq!(mapped.len(), bytes.len());
        assert!(!mapped.is_empty());
        if cfg!(all(unix, target_pointer_width = "64")) {
            assert!(mapped.is_mapped(), "linux CI should take the mmap path");
        }
        // Walk the frames zero-copy.
        let (p1, n1) = split_frame_unverified(mapped.bytes()).unwrap();
        assert_eq!(p1, b"first");
        let (p2, n2) = split_frame_unverified(&mapped.bytes()[n1..]).unwrap();
        assert_eq!(p2, b"second");
        assert_eq!(n1 + n2, mapped.len());
        drop(mapped);
        // Empty files take the heap fallback (zero-length maps are invalid).
        std::fs::write(&path, b"").unwrap();
        let empty = MappedFrames::open(&path).unwrap();
        assert!(empty.is_empty());
        assert!(!empty.is_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_frame_into_reuses_a_grow_only_buffer() {
        let mut buf = Vec::new();
        write_frame(&[7u8; 100], &mut buf).unwrap();
        write_frame(&[9u8; 10], &mut buf).unwrap();
        let mut cursor = &buf[..];
        let mut scratch = Vec::new();
        assert_eq!(
            read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1a).unwrap(),
            Some(100)
        );
        let cap = scratch.capacity();
        assert_eq!(
            read_frame_into(&mut cursor, &mut scratch, FrameChecksum::Fnv1a).unwrap(),
            Some(10)
        );
        assert_eq!(&scratch[..10], &[9u8; 10]);
        assert_eq!(
            scratch.capacity(),
            cap,
            "no reallocation for smaller frames"
        );
    }
}
