//! The wire format for (possibly blank-containing) item sequences.
//!
//! Layout: a varint token stream. Token `0` introduces a blank run and is
//! followed by the varint run length; token `k > 0` encodes item id `k - 1`.
//! Because LASH re-encodes items so that frequent items have small ids
//! (paper Sec. 6.1), most tokens occupy a single byte.

use crate::rle::{self, RleToken};
use crate::varint;
use crate::DecodeError;

/// The in-memory blank sentinel. Chosen as `u32::MAX` because the paper
/// requires `w < ␣` for every item `w` under the frequency-descending total
/// order (small id = frequent item).
pub const BLANK: u32 = u32::MAX;

/// Appends the encoding of `items` (which may contain [`BLANK`]) to `buf`.
///
/// Item ids must be `< u32::MAX - 1` so that `id + 1` does not collide with the
/// blank-run marker after shifting.
pub fn encode_sequence(items: &[u32], buf: &mut Vec<u8>) {
    for token in rle::to_tokens(items, BLANK) {
        match token {
            RleToken::Item(id) => {
                debug_assert!(id < u32::MAX - 1, "item id too large for codec");
                varint::encode_u32(id + 1, buf);
            }
            RleToken::Blanks(n) => {
                varint::encode_u32(0, buf);
                varint::encode_u32(n, buf);
            }
        }
    }
}

/// Decodes a sequence previously written by [`encode_sequence`], consuming the
/// entire input slice.
pub fn decode_sequence(mut input: &[u8]) -> Result<Vec<u32>, DecodeError> {
    let mut items = Vec::new();
    while !input.is_empty() {
        let (tok, n) = varint::decode_u32(input)?;
        input = &input[n..];
        if tok == 0 {
            let (run, n) = varint::decode_u32(input)?;
            input = &input[n..];
            if run == 0 {
                return Err(DecodeError::Corrupt("zero-length blank run"));
            }
            items.extend(std::iter::repeat_n(BLANK, run as usize));
        } else {
            items.push(tok - 1);
        }
    }
    Ok(items)
}

/// Stateful sequence codec that reuses an internal buffer across calls, for use
/// in hot map-output paths.
#[derive(Debug, Default)]
pub struct SequenceCodec {
    buf: Vec<u8>,
}

impl SequenceCodec {
    /// Creates an empty codec.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encodes `items` and returns the encoded bytes (valid until next call).
    pub fn encode<'a>(&'a mut self, items: &[u32]) -> &'a [u8] {
        self.buf.clear();
        encode_sequence(items, &mut self.buf);
        &self.buf
    }

    /// Number of bytes the encoding of `items` occupies, without materializing.
    pub fn encoded_len(items: &[u32]) -> usize {
        let mut len = 0usize;
        for token in rle::to_tokens(items, BLANK) {
            match token {
                RleToken::Item(id) => len += varint::encoded_len_u32(id + 1),
                RleToken::Blanks(n) => len += 1 + varint::encoded_len_u32(n),
            }
        }
        len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_simple_sequence() {
        let seq = [0u32, 1, 2, 100, 4];
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn round_trips_blank_runs() {
        let seq = [0u32, BLANK, BLANK, 3, BLANK, 7, BLANK];
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn empty_sequence_is_empty_encoding() {
        let mut buf = Vec::new();
        encode_sequence(&[], &mut buf);
        assert!(buf.is_empty());
        assert_eq!(decode_sequence(&[]).unwrap(), Vec::<u32>::new());
    }

    #[test]
    fn frequent_items_encode_to_single_bytes() {
        // Items 0..=126 become tokens 1..=127, each a single varint byte.
        let seq: Vec<u32> = (0..=126).collect();
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        assert_eq!(buf.len(), seq.len());
    }

    #[test]
    fn blank_run_is_cheaper_than_rare_items() {
        // A run of 100 blanks costs 2 bytes; 100 distinct rare items cost far more.
        let blanks = vec![BLANK; 100];
        assert_eq!(SequenceCodec::encoded_len(&blanks), 2);
        let rare = vec![1_000_000u32; 100];
        assert!(SequenceCodec::encoded_len(&rare) >= 300);
    }

    #[test]
    fn encoded_len_matches_actual() {
        let seq = [5u32, BLANK, BLANK, BLANK, 1 << 20, 0, BLANK];
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        assert_eq!(buf.len(), SequenceCodec::encoded_len(&seq));
    }

    #[test]
    fn stateful_codec_reuses_buffer() {
        let mut codec = SequenceCodec::new();
        let a = codec.encode(&[1, 2, 3]).to_vec();
        let b = codec.encode(&[9, BLANK, 9]).to_vec();
        assert_eq!(decode_sequence(&a).unwrap(), vec![1, 2, 3]);
        assert_eq!(decode_sequence(&b).unwrap(), vec![9, BLANK, 9]);
    }

    #[test]
    fn rejects_zero_length_blank_run() {
        // token 0 (blank marker) followed by run length 0.
        let bad = [0x00, 0x00];
        assert!(matches!(
            decode_sequence(&bad),
            Err(DecodeError::Corrupt(_))
        ));
    }

    #[test]
    fn rejects_truncated_blank_run() {
        let bad = [0x00];
        assert_eq!(decode_sequence(&bad), Err(DecodeError::UnexpectedEof));
    }
}
