//! Run-length encoding of blank runs.
//!
//! After w-generalization (paper Sec. 4.2), rewritten sequences contain runs of
//! the blank symbol "␣". Blanks only matter for gap accounting, so the paper
//! stores them as run lengths ("`aB␣2B`") rather than individual symbols. This
//! module provides the token-level view used by the sequence codec: a sequence
//! of items-or-blank-runs.

/// One token of a run-length-encoded sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RleToken {
    /// A concrete (non-blank) item id.
    Item(u32),
    /// A run of `len ≥ 1` consecutive blanks.
    Blanks(u32),
}

/// Converts a sequence with explicit blanks (`blank` sentinel) into RLE tokens.
pub fn to_tokens(items: &[u32], blank: u32) -> Vec<RleToken> {
    let mut tokens = Vec::with_capacity(items.len());
    let mut run = 0u32;
    for &it in items {
        if it == blank {
            run += 1;
        } else {
            if run > 0 {
                tokens.push(RleToken::Blanks(run));
                run = 0;
            }
            tokens.push(RleToken::Item(it));
        }
    }
    if run > 0 {
        tokens.push(RleToken::Blanks(run));
    }
    tokens
}

/// Expands RLE tokens back into a sequence with explicit `blank` sentinels.
pub fn from_tokens(tokens: &[RleToken], blank: u32) -> Vec<u32> {
    let mut items = Vec::with_capacity(tokens.len());
    for &tok in tokens {
        match tok {
            RleToken::Item(it) => items.push(it),
            RleToken::Blanks(n) => items.extend(std::iter::repeat_n(blank, n as usize)),
        }
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u32 = u32::MAX;

    #[test]
    fn encodes_mixed_runs() {
        let seq = [1, B, B, 2, B, 3];
        let tokens = to_tokens(&seq, B);
        assert_eq!(
            tokens,
            vec![
                RleToken::Item(1),
                RleToken::Blanks(2),
                RleToken::Item(2),
                RleToken::Blanks(1),
                RleToken::Item(3),
            ]
        );
        assert_eq!(from_tokens(&tokens, B), seq);
    }

    #[test]
    fn handles_leading_and_trailing_blanks() {
        let seq = [B, B, 7, B];
        let tokens = to_tokens(&seq, B);
        assert_eq!(
            tokens,
            vec![RleToken::Blanks(2), RleToken::Item(7), RleToken::Blanks(1)]
        );
        assert_eq!(from_tokens(&tokens, B), seq);
    }

    #[test]
    fn handles_empty_and_all_blank() {
        assert!(to_tokens(&[], B).is_empty());
        let all_blank = [B; 4];
        let tokens = to_tokens(&all_blank, B);
        assert_eq!(tokens, vec![RleToken::Blanks(4)]);
        assert_eq!(from_tokens(&tokens, B), all_blank);
    }

    #[test]
    fn no_blanks_is_identity() {
        let seq = [5, 6, 7];
        let tokens = to_tokens(&seq, B);
        assert_eq!(
            tokens,
            vec![RleToken::Item(5), RleToken::Item(6), RleToken::Item(7)]
        );
        assert_eq!(from_tokens(&tokens, B), seq);
    }
}
