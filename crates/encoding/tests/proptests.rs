//! Property tests for the codec crate: every encoder/decoder pair round-trips
//! on arbitrary input, and decoders never panic on arbitrary bytes.

use lash_encoding::{
    codec, decode_i64, decode_sequence, decode_u32, decode_u64, encode_i64, encode_sequence,
    encode_u32, encode_u64, encoded_len_u32, encoded_len_u64, group_varint, DecodeError, BLANK,
};
use proptest::prelude::*;

/// An independent re-statement of the documented group-varint layout, used
/// to pin the production encoder byte for byte: groups of four values, a
/// control byte holding each value's little-endian byte length minus one in
/// two bits, the tail group zero-padded.
fn reference_group_varint(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    for chunk in values.chunks(4) {
        let mut group = [0u32; 4];
        group[..chunk.len()].copy_from_slice(chunk);
        let len = |v: u32| -> usize {
            match v {
                0..=0xff => 1,
                0x100..=0xffff => 2,
                0x1_0000..=0xff_ffff => 3,
                _ => 4,
            }
        };
        let mut ctrl = 0u8;
        for (i, &v) in group.iter().enumerate() {
            ctrl |= ((len(v) - 1) as u8) << (2 * i);
        }
        out.push(ctrl);
        for &v in &group {
            out.extend_from_slice(&v.to_le_bytes()[..len(v)]);
        }
    }
    out
}

/// A value mix shaped like store payloads: mostly small (frequent) ids,
/// some wide, some max-width, and blank-sentinel runs.
fn gv_values() -> impl Strategy<Value = Vec<u32>> {
    prop::collection::vec(
        prop_oneof![
            4 => (0u32..256).prop_map(|v| v),
            2 => (0u32..65_536).prop_map(|v| v),
            1 => any::<u32>(),
            1 => Just(u32::MAX),
            1 => Just(BLANK),
        ],
        0..257,
    )
}

proptest! {
    #[test]
    fn varint_u32_round_trips(v in any::<u32>()) {
        let mut buf = Vec::new();
        encode_u32(v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len_u32(v));
        let (decoded, n) = decode_u32(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_u64_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len_u64(v));
        let (decoded, n) = decode_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(decode_i64(encode_i64(v)), v);
    }

    #[test]
    fn zigzag_is_monotone_in_magnitude(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(encode_i64(a) < encode_i64(b) + 2);
        }
    }

    #[test]
    fn sequence_round_trips(seq in prop::collection::vec(0u32..10_000, 0..64)) {
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        prop_assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn sequence_with_blanks_round_trips(
        seq in prop::collection::vec(prop_oneof![3 => (0u32..1000).prop_map(|v| v), 1 => Just(BLANK)], 0..64)
    ) {
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        prop_assert_eq!(buf.len(), codec::SequenceCodec::encoded_len(&seq));
        prop_assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_u32(&bytes);
        let _ = decode_u64(&bytes);
        let _ = decode_sequence(&bytes);
    }

    #[test]
    fn group_varint_round_trips_byte_compatibly(values in gv_values()) {
        let mut buf = Vec::new();
        group_varint::encode(&values, &mut buf);
        // Byte-compatible with the documented layout (independent encoder).
        prop_assert_eq!(&buf, &reference_group_varint(&values));
        prop_assert_eq!(buf.len(), group_varint::encoded_len(&values));
        let mut out = vec![0u32; values.len()];
        let consumed = group_varint::decode(&buf, &mut out).unwrap();
        prop_assert_eq!(consumed, buf.len());
        prop_assert_eq!(out, values);
    }

    #[test]
    fn group_varint_rejects_truncation_with_typed_errors(values in gv_values(), cut_seed in 0usize..10_000) {
        if !values.is_empty() {
            let mut buf = Vec::new();
            group_varint::encode(&values, &mut buf);
            let cut = cut_seed % buf.len();
            let mut out = vec![0u32; values.len()];
            prop_assert_eq!(
                group_varint::decode(&buf[..cut], &mut out),
                Err(DecodeError::UnexpectedEof)
            );
        }
    }

    #[test]
    fn group_varint_runs_round_trip_with_blanks(values in gv_values()) {
        // BLANK == u32::MAX: both the Just(BLANK) and Just(u32::MAX) arms
        // above land in blank runs, and round-trip regardless.
        let mut buf = Vec::new();
        group_varint::encode_runs(&values, BLANK, &mut buf);
        let mut out = Vec::new();
        group_varint::decode_runs(&buf, BLANK, &mut out, values.len()).unwrap();
        prop_assert_eq!(out, values);
    }

    #[test]
    fn group_varint_run_decoding_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..128),
        n in 0usize..64,
    ) {
        let mut out = vec![0u32; n];
        let _ = group_varint::decode(&bytes, &mut out);
        let mut runs = Vec::new();
        // Garbage either decodes to *some* values or fails with a typed
        // error — never a panic; corruption of run structure is typed too.
        match group_varint::decode_runs(&bytes, BLANK, &mut runs, 1 << 16) {
            Ok(()) => {}
            Err(DecodeError::UnexpectedEof)
            | Err(DecodeError::Overflow)
            | Err(DecodeError::Corrupt(_)) => {}
        }
    }

    #[test]
    fn consecutive_varints_round_trip(values in prop::collection::vec(any::<u32>(), 0..32)) {
        let mut buf = Vec::new();
        for &v in &values {
            encode_u32(v, &mut buf);
        }
        let mut reader = lash_encoding::varint::VarintReader::new(&buf);
        for &v in &values {
            prop_assert_eq!(reader.read_u32().unwrap(), v);
        }
        prop_assert!(reader.is_empty());
    }
}
