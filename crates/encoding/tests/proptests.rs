//! Property tests for the codec crate: every encoder/decoder pair round-trips
//! on arbitrary input, and decoders never panic on arbitrary bytes.

use lash_encoding::{
    codec, decode_i64, decode_sequence, decode_u32, decode_u64, encode_i64, encode_sequence,
    encode_u32, encode_u64, encoded_len_u32, encoded_len_u64, BLANK,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_u32_round_trips(v in any::<u32>()) {
        let mut buf = Vec::new();
        encode_u32(v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len_u32(v));
        let (decoded, n) = decode_u32(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn varint_u64_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        encode_u64(v, &mut buf);
        prop_assert_eq!(buf.len(), encoded_len_u64(v));
        let (decoded, n) = decode_u64(&buf).unwrap();
        prop_assert_eq!(decoded, v);
        prop_assert_eq!(n, buf.len());
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(decode_i64(encode_i64(v)), v);
    }

    #[test]
    fn zigzag_is_monotone_in_magnitude(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(encode_i64(a) < encode_i64(b) + 2);
        }
    }

    #[test]
    fn sequence_round_trips(seq in prop::collection::vec(0u32..10_000, 0..64)) {
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        prop_assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn sequence_with_blanks_round_trips(
        seq in prop::collection::vec(prop_oneof![3 => (0u32..1000).prop_map(|v| v), 1 => Just(BLANK)], 0..64)
    ) {
        let mut buf = Vec::new();
        encode_sequence(&seq, &mut buf);
        prop_assert_eq!(buf.len(), codec::SequenceCodec::encoded_len(&seq));
        prop_assert_eq!(decode_sequence(&buf).unwrap(), seq);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let _ = decode_u32(&bytes);
        let _ = decode_u64(&bytes);
        let _ = decode_sequence(&bytes);
    }

    #[test]
    fn consecutive_varints_round_trip(values in prop::collection::vec(any::<u32>(), 0..32)) {
        let mut buf = Vec::new();
        for &v in &values {
            encode_u32(v, &mut buf);
        }
        let mut reader = lash_encoding::varint::VarintReader::new(&buf);
        for &v in &values {
            prop_assert_eq!(reader.read_u32().unwrap(), v);
        }
        prop_assert!(reader.is_empty());
    }
}
