//! The paper's running example (Fig. 1): the database and hierarchy used
//! throughout the LASH paper's exposition — handy for examples, docs, and
//! cross-crate tests.

use lash_core::{SequenceDatabase, Vocabulary, VocabularyBuilder};

/// Builds the Fig. 1 vocabulary/hierarchy and its six-sequence database:
///
/// ```text
/// T1: a b1 a b1      hierarchy: B → {b1, b2, b3}, b1 → {b11, b12, b13},
/// T2: a b3 c c b2               D → {d1, d2}; a, c, e, f are roots.
/// T3: a c
/// T4: b11 a e a
/// T5: a b12 d1 c
/// T6: b13 f d2
/// ```
///
/// With σ=2, γ=1, λ=3 the GSM output is the ten patterns of the paper's
/// Sec. 2: (aa,2), (ab1,2), (b1a,2), (aB,3), (Ba,2), (aBc,2), (Bc,2),
/// (ac,2), (b1D,2), (BD,2).
pub fn paper_example() -> (Vocabulary, SequenceDatabase) {
    let mut vb = VocabularyBuilder::new();
    let a = vb.intern("a");
    let b_cap = vb.intern("B");
    let c = vb.intern("c");
    let d_cap = vb.intern("D");
    let b1 = vb.child("b1", b_cap);
    let b2 = vb.child("b2", b_cap);
    let b3 = vb.child("b3", b_cap);
    let b11 = vb.child("b11", b1);
    let b12 = vb.child("b12", b1);
    let b13 = vb.child("b13", b1);
    let d1 = vb.child("d1", d_cap);
    let d2 = vb.child("d2", d_cap);
    let e = vb.intern("e");
    let f = vb.intern("f");
    let vocab = vb.finish().expect("fig. 1 hierarchy is a forest");

    let mut db = SequenceDatabase::new();
    db.push(&[a, b1, a, b1]);
    db.push(&[a, b3, c, c, b2]);
    db.push(&[a, c]);
    db.push(&[b11, a, e, a]);
    db.push(&[a, b12, d1, c]);
    db.push(&[b13, f, d2]);
    (vocab, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lash_core::{GsmParams, Lash, LashConfig};

    #[test]
    fn mining_the_example_yields_the_paper_output() {
        let (vocab, db) = paper_example();
        let params = GsmParams::new(2, 1, 3).unwrap();
        let result = Lash::new(LashConfig::default())
            .mine(&db, &vocab, &params)
            .unwrap();
        assert_eq!(result.patterns().len(), 10);
        let ab = result.patterns().iter().find(|p| p.frequency == 3).unwrap();
        assert_eq!(ab.to_names(&vocab), ["a", "B"]);
        // b1D is frequent even though it never occurs literally.
        assert!(result
            .patterns()
            .iter()
            .any(|p| p.to_names(&vocab) == ["b1", "D"] && p.frequency == 2));
    }
}
