//! NYT-like text corpus with syntactic hierarchies (paper Sec. 6.1).
//!
//! The corpus is a collection of sentences whose tokens follow a Zipf law
//! over lemmas. Each lemma has a part-of-speech tag, a base surface form
//! (identical to the lemma — this is how tokens end up at *different
//! hierarchy levels*, as the paper highlights), a few inflected forms, and,
//! for some inflections, a distinct lowercase ("case") variant.
//!
//! Four hierarchy variants wire the same token strings differently:
//!
//! | variant | chain                              | shape (cf. Table 2)        |
//! |---------|------------------------------------|----------------------------|
//! | `L`     | word → lemma                       | many roots, tiny fan-out   |
//! | `P`     | word → POS                         | few roots, huge fan-out    |
//! | `LP`    | word → lemma → POS                 | 3 levels                   |
//! | `CLP`   | word → case → lemma → POS          | 4 levels                   |

use lash_core::{SequenceDatabase, Vocabulary, VocabularyBuilder};

use crate::rng::Rng;
use crate::zipf::Zipf;

/// Hierarchy variants of the text corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TextHierarchy {
    /// word → lemma.
    L,
    /// word → part-of-speech.
    P,
    /// word → lemma → part-of-speech.
    LP,
    /// word → case → lemma → part-of-speech.
    CLP,
}

impl TextHierarchy {
    /// Display name ("L", "P", …).
    pub fn name(&self) -> &'static str {
        match self {
            TextHierarchy::L => "L",
            TextHierarchy::P => "P",
            TextHierarchy::LP => "LP",
            TextHierarchy::CLP => "CLP",
        }
    }

    /// All variants, in the paper's order.
    pub fn all() -> [TextHierarchy; 4] {
        [
            TextHierarchy::L,
            TextHierarchy::P,
            TextHierarchy::LP,
            TextHierarchy::CLP,
        ]
    }
}

/// Configuration of the text corpus generator.
#[derive(Debug, Clone)]
pub struct TextConfig {
    /// Number of sentences.
    pub sentences: usize,
    /// Number of lemmas (word types collapse onto these).
    pub lemmas: usize,
    /// Number of part-of-speech tags (the NYT-P hierarchy has 22 roots).
    pub pos_tags: usize,
    /// Average sentence length (NYT ≈ 21.1).
    pub avg_sentence_len: f64,
    /// Zipf exponent of the lemma distribution.
    pub zipf_exponent: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for TextConfig {
    fn default() -> Self {
        TextConfig {
            sentences: 20_000,
            lemmas: 5_000,
            pos_tags: 22,
            avg_sentence_len: 21.0,
            zipf_exponent: 1.0,
            seed: 20150601,
        }
    }
}

impl TextConfig {
    /// Scales sentence count and lemma count by `factor` (the experiment
    /// harness' `--scale`).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.sentences = ((self.sentences as f64 * factor) as usize).max(1);
        self.lemmas = ((self.lemmas as f64 * factor.sqrt()) as usize).max(10);
        self
    }
}

/// Token code: which surface form of which lemma.
/// Packed as `(lemma << 3) | slot`; slot 0 = base form, 1–2 = inflected
/// forms, 5 = the case variant of inflected form 1.
type Token = u32;

const SLOT_BASE: u32 = 0;
const SLOT_CASE: u32 = 5;
const MAX_INFLECTED: u32 = 4;

/// A generated corpus; pair it with any [`TextHierarchy`] via
/// [`TextCorpus::dataset`].
#[derive(Debug, Clone)]
pub struct TextCorpus {
    config: TextConfig,
    pos_of_lemma: Vec<u16>,
    /// Number of inflected forms per lemma (1..=MAX_INFLECTED).
    inflections: Vec<u8>,
    tokens: Vec<Token>,
    offsets: Vec<u64>,
}

impl TextCorpus {
    /// Generates the corpus deterministically from the configuration.
    pub fn generate(config: &TextConfig) -> TextCorpus {
        assert!(config.lemmas >= 1 && config.pos_tags >= 1 && config.avg_sentence_len > 3.0);
        let mut rng = Rng::new(config.seed);
        let lemma_dist = Zipf::new(config.lemmas, config.zipf_exponent);
        // Few POS tags dominate (nouns/verbs), mirrored with a mild Zipf.
        let pos_dist = Zipf::new(config.pos_tags, 0.8);
        let pos_of_lemma: Vec<u16> = (0..config.lemmas)
            .map(|_| pos_dist.sample(&mut rng) as u16)
            .collect();
        let inflections: Vec<u8> = (0..config.lemmas)
            .map(|_| 1 + rng.geometric(0.55, (MAX_INFLECTED - 1) as usize) as u8)
            .collect();

        let mut tokens = Vec::new();
        let mut offsets = Vec::with_capacity(config.sentences + 1);
        offsets.push(0u64);
        let len_p = 1.0 / (config.avg_sentence_len - 2.0);
        for _ in 0..config.sentences {
            let len = 3 + rng.geometric(len_p, (config.avg_sentence_len * 8.0) as usize);
            for _ in 0..len {
                let lemma = lemma_dist.sample(&mut rng) as u32;
                let roll = rng.f64();
                let slot = if roll < 0.45 {
                    SLOT_BASE
                } else if roll < 0.90 {
                    1 + rng.below(inflections[lemma as usize] as u64) as u32
                } else {
                    // The lowercase variant of inflected form 1 (always
                    // present); only a distinct item in the CLP hierarchy.
                    SLOT_CASE
                };
                tokens.push((lemma << 3) | slot);
            }
            offsets.push(tokens.len() as u64);
        }
        TextCorpus {
            config: config.clone(),
            pos_of_lemma,
            inflections,
            tokens,
            offsets,
        }
    }

    /// Number of sentences.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if the corpus has no sentences.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The generator configuration.
    pub fn config(&self) -> &TextConfig {
        &self.config
    }

    /// Materializes the corpus under a hierarchy variant.
    ///
    /// The returned database contains the same token stream for every
    /// variant; only the vocabulary's parent links (and the set of
    /// non-surface items) differ.
    pub fn dataset(&self, hierarchy: TextHierarchy) -> (Vocabulary, SequenceDatabase) {
        let mut vb = VocabularyBuilder::new();
        let lemmas = self.config.lemmas;

        // POS roots (only present in P/LP/CLP).
        let pos_items: Vec<_> = match hierarchy {
            TextHierarchy::L => Vec::new(),
            _ => (0..self.config.pos_tags)
                .map(|p| vb.intern(&format!("POS{p}")))
                .collect(),
        };

        // Lemma items. In P they are plain surface words under their POS; in
        // L they are roots; in LP/CLP they sit between words and POS.
        let lemma_items: Vec<_> = (0..lemmas).map(|l| vb.intern(&format!("lem{l}"))).collect();
        match hierarchy {
            TextHierarchy::L => {}
            _ => {
                for l in 0..lemmas {
                    vb.set_parent(lemma_items[l], pos_items[self.pos_of_lemma[l] as usize])
                        .expect("fresh item");
                }
            }
        }

        // Case items only exist in CLP; elsewhere the case token string maps
        // to an item parented like any other word.
        let mut case_items = Vec::new();
        if hierarchy == TextHierarchy::CLP {
            case_items = (0..lemmas)
                .map(|l| {
                    let c = vb.intern(&format!("c{l}_1"));
                    vb.set_parent(c, lemma_items[l]).expect("fresh item");
                    c
                })
                .collect();
        }

        // Inflected word items.
        let mut word_items = vec![lash_core::ItemId::from_u32(0); lemmas * MAX_INFLECTED as usize];
        for l in 0..lemmas {
            for j in 1..=self.inflections[l] as u32 {
                let w = vb.intern(&format!("w{l}_{j}"));
                let parent = match hierarchy {
                    TextHierarchy::L => lemma_items[l],
                    TextHierarchy::P => pos_items[self.pos_of_lemma[l] as usize],
                    TextHierarchy::LP => lemma_items[l],
                    TextHierarchy::CLP => {
                        // Inflected form 1 has a distinct lowercase variant;
                        // it sits under the case item. Others attach to the
                        // lemma directly (real text: not every form has a
                        // distinct case variant).
                        if j == 1 {
                            case_items[l]
                        } else {
                            lemma_items[l]
                        }
                    }
                };
                vb.set_parent(w, parent).expect("fresh item");
                word_items[l * MAX_INFLECTED as usize + (j - 1) as usize] = w;
            }
        }

        // For non-CLP hierarchies the case token string is still a word.
        let case_token_items: Vec<_> = if hierarchy == TextHierarchy::CLP {
            case_items.clone()
        } else {
            (0..lemmas)
                .map(|l| {
                    let c = vb.intern(&format!("c{l}_1"));
                    let parent = match hierarchy {
                        TextHierarchy::L | TextHierarchy::LP => lemma_items[l],
                        TextHierarchy::P => pos_items[self.pos_of_lemma[l] as usize],
                        TextHierarchy::CLP => unreachable!(),
                    };
                    vb.set_parent(c, parent).expect("fresh item");
                    c
                })
                .collect()
        };

        let vocab = vb.finish().expect("generated hierarchy is a forest");

        let mut db = SequenceDatabase::with_capacity(self.len(), self.tokens.len());
        let mut seq = Vec::new();
        for i in 0..self.len() {
            seq.clear();
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            for &tok in &self.tokens[lo..hi] {
                let lemma = (tok >> 3) as usize;
                let slot = tok & 0x7;
                let item = if slot == SLOT_BASE {
                    lemma_items[lemma]
                } else if slot == SLOT_CASE {
                    case_token_items[lemma]
                } else {
                    word_items[lemma * MAX_INFLECTED as usize + (slot - 1) as usize]
                };
                seq.push(item);
            }
            db.push(&seq);
        }
        (vocab, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> TextConfig {
        TextConfig {
            sentences: 500,
            lemmas: 200,
            pos_tags: 10,
            avg_sentence_len: 12.0,
            zipf_exponent: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = TextCorpus::generate(&small_config());
        let b = TextCorpus::generate(&small_config());
        assert_eq!(a.tokens, b.tokens);
        let (_, db_a) = a.dataset(TextHierarchy::CLP);
        let (_, db_b) = b.dataset(TextHierarchy::CLP);
        assert_eq!(db_a.len(), db_b.len());
        assert_eq!(db_a.get(3), db_b.get(3));
    }

    #[test]
    fn hierarchy_shapes_match_table2() {
        let corpus = TextCorpus::generate(&small_config());
        let (l, _) = corpus.dataset(TextHierarchy::L);
        let (p, _) = corpus.dataset(TextHierarchy::P);
        let (lp, _) = corpus.dataset(TextHierarchy::LP);
        let (clp, _) = corpus.dataset(TextHierarchy::CLP);

        let ls = l.hierarchy_stats();
        let ps = p.hierarchy_stats();
        let lps = lp.hierarchy_stats();
        let clps = clp.hierarchy_stats();

        // L: two levels, many roots (lemmas), small fan-out.
        assert_eq!(ls.levels, 2);
        assert_eq!(ls.root_items, 200);
        assert!(ls.avg_fanout < 6.0);
        // P: two levels, few roots, huge fan-out.
        assert_eq!(ps.levels, 2);
        assert_eq!(ps.root_items, 10);
        assert!(ps.avg_fanout > ls.avg_fanout * 3.0);
        // LP: three levels with the lemmas intermediate.
        assert_eq!(lps.levels, 3);
        assert_eq!(lps.root_items, 10);
        assert!(lps.intermediate_items >= 200);
        // CLP: four levels; the case forms become intermediate items (they
        // are leaves in every other variant).
        assert_eq!(clps.levels, 4);
        assert!(clps.intermediate_items > lps.intermediate_items);
    }

    #[test]
    fn same_sentences_across_variants() {
        let corpus = TextCorpus::generate(&small_config());
        let (va, a) = corpus.dataset(TextHierarchy::L);
        let (vb, b) = corpus.dataset(TextHierarchy::CLP);
        assert_eq!(a.len(), b.len());
        for i in (0..a.len()).step_by(97) {
            let names_a: Vec<&str> = a.get(i).iter().map(|&t| va.name(t)).collect();
            let names_b: Vec<&str> = b.get(i).iter().map(|&t| vb.name(t)).collect();
            assert_eq!(names_a, names_b, "sentence {i}");
        }
    }

    #[test]
    fn sentence_lengths_and_skew_are_plausible() {
        let corpus = TextCorpus::generate(&TextConfig {
            sentences: 2_000,
            ..small_config()
        });
        let (vocab, db) = corpus.dataset(TextHierarchy::LP);
        let avg = db.avg_len();
        assert!((9.0..15.0).contains(&avg), "avg len {avg}");
        assert!(db.max_len() >= 20);
        // Zipf skew: the most frequent surface item should occur much more
        // often than the median one.
        let mut counts = std::collections::HashMap::new();
        for seq in db.iter() {
            for &t in seq {
                *counts.entry(t).or_insert(0usize) += 1;
            }
        }
        let mut freqs: Vec<usize> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        assert!(freqs[0] > freqs[freqs.len() / 2] * 20);
        // Tokens come from multiple hierarchy levels: some sentences contain
        // lemma-level items directly.
        let lemma_in_text = db
            .iter()
            .flatten()
            .any(|&t| vocab.name(t).starts_with("lem"));
        assert!(lemma_in_text);
    }

    #[test]
    fn scaled_config_grows() {
        let base = TextConfig::default();
        let big = base.clone().scaled(2.0);
        assert_eq!(big.sentences, base.sentences * 2);
        assert!(big.lemmas > base.lemmas);
        let tiny = base.scaled(1e-9);
        assert!(tiny.sentences >= 1 && tiny.lemmas >= 10);
    }
}
