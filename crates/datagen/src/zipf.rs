//! Zipf-distributed sampling via an inverse-CDF table.
//!
//! Item frequencies in both the NYT and AMZN corpora are heavily skewed; a
//! Zipf law with exponent ≈ 1 reproduces that skew.

use crate::rng::Rng;

/// A Zipf distribution over ranks `0..n` with exponent `s`
/// (`P(k) ∝ 1/(k+1)^s`).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table. `n` must be ≥ 1.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1);
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(total);
        }
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off at the tail.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True if the distribution has a single rank.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Samples a rank (0 = most probable).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_ranks_dominate() {
        let zipf = Zipf::new(1000, 1.0);
        let mut rng = Rng::new(123);
        let mut counts = vec![0usize; 1000];
        for _ in 0..100_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        // Rank 0 should be roughly twice as frequent as rank 1.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.7..2.4).contains(&ratio), "ratio {ratio}");
        // Monotone (roughly) decreasing over the head.
        assert!(counts[0] > counts[9]);
        assert!(counts[9] > counts[99]);
    }

    #[test]
    fn all_ranks_reachable_and_in_range() {
        let zipf = Zipf::new(5, 1.0);
        let mut rng = Rng::new(77);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[zipf.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_rank_distribution() {
        let zipf = Zipf::new(1, 1.0);
        let mut rng = Rng::new(1);
        for _ in 0..10 {
            assert_eq!(zipf.sample(&mut rng), 0);
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let zipf = Zipf::new(4, 0.0);
        let mut rng = Rng::new(5);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }
}
