//! # lash-datagen
//!
//! Deterministic synthetic datasets and hierarchies whose *shape* mirrors the
//! two corpora of the LASH paper's evaluation (Sec. 6.1, Tables 1–2):
//!
//! * [`text`] — an NYT-like corpus: Zipfian word frequencies, sentence
//!   lengths around 21 tokens, and syntactic hierarchies in four variants
//!   (L: word → lemma; P: word → POS; LP: word → lemma → POS;
//!   CLP: word → case → lemma → POS). As in the paper, tokens may come from
//!   different hierarchy levels (a surface form often *is* its lemma).
//! * [`products`] — an AMZN-like corpus: user sessions of product ids with
//!   heavy-tailed lengths (avg ≈ 4.5) and category hierarchies of depth 2–8
//!   (`h2`/`h3`/`h4`/`h8`), where most products sit no more than four levels
//!   below a root category.
//!
//! Both corpora are generated once and can be paired with any hierarchy
//! variant, so experiments that sweep hierarchies (Figs. 5(e,f)) mine the
//! *same* sequences under different vocabularies — as the paper does.
//!
//! [`describe`] renders Table 1/Table 2-style statistics; [`fig1`] exposes
//! the paper's running example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod describe;
pub mod fig1;
pub mod products;
pub mod rng;
pub mod text;
pub mod zipf;

pub use fig1::paper_example;
pub use products::{ProductConfig, ProductCorpus, ProductHierarchy};
pub use rng::Rng;
pub use text::{TextConfig, TextCorpus, TextHierarchy};
pub use zipf::Zipf;
