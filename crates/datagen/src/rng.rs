//! A small deterministic PRNG (SplitMix64 seeding a xorshift* core).
//!
//! Implemented locally instead of depending on `rand` so that generated
//! datasets are bit-stable across crate versions — experiment outputs must be
//! reproducible run-to-run and machine-to-machine.

/// Deterministic pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 scramble so that small seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        Rng {
            state: (z ^ (z >> 31)) | 1,
        }
    }

    /// Next raw 64-bit value (xorshift64*).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // our bounds (< 2^32).
        ((self.next_u64() >> 32).wrapping_mul(bound)) >> 32
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Geometric sample: number of failures before the first success with
    /// success probability `p` (0 < p ≤ 1), capped at `cap`.
    pub fn geometric(&mut self, p: f64, cap: usize) -> usize {
        debug_assert!(p > 0.0 && p <= 1.0);
        let mut n = 0;
        while n < cap && self.f64() >= p {
            n += 1;
        }
        n
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.below(bound) < bound);
            }
        }
    }

    #[test]
    fn below_covers_range_roughly_uniformly() {
        let mut rng = Rng::new(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.below_usize(10)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn geometric_mean_matches_parameter() {
        let mut rng = Rng::new(11);
        let p = 0.25;
        let n = 20_000;
        let total: usize = (0..n).map(|_| rng.geometric(p, 1000)).sum();
        let mean = total as f64 / n as f64;
        // Expected (1-p)/p = 3.
        assert!((2.8..3.2).contains(&mean), "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle should change order");
    }
}
