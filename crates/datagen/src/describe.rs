//! Dataset and hierarchy statistics in the shape of the paper's
//! Tables 1 and 2.

use lash_core::vocabulary::HierarchyStats;
use lash_core::{SequenceDatabase, Vocabulary};

/// One row of Table 1 (dataset characteristics).
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSummary {
    /// Dataset name.
    pub name: String,
    /// Number of sequences.
    pub sequences: usize,
    /// Average sequence length.
    pub avg_length: f64,
    /// Maximum sequence length.
    pub max_length: usize,
    /// Total item occurrences.
    pub total_items: usize,
    /// Distinct items occurring in sequences.
    pub unique_items: usize,
}

impl DatasetSummary {
    /// Computes the summary for a database.
    pub fn compute(name: &str, db: &SequenceDatabase) -> DatasetSummary {
        DatasetSummary {
            name: name.to_owned(),
            sequences: db.len(),
            avg_length: db.avg_len(),
            max_length: db.max_len(),
            total_items: db.total_items(),
            unique_items: db.unique_items(),
        }
    }
}

/// Renders Table 1.
pub fn format_table1(rows: &[DatasetSummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>12} {:>10} {:>10} {:>14} {:>13}\n",
        "Dataset", "Sequences", "Avg len", "Max len", "Total items", "Unique items"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>12} {:>10.1} {:>10} {:>14} {:>13}\n",
            r.name, r.sequences, r.avg_length, r.max_length, r.total_items, r.unique_items
        ));
    }
    out
}

/// One row of Table 2 (hierarchy characteristics).
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchySummary {
    /// Hierarchy name (e.g. "CLP" or "h8").
    pub name: String,
    /// The structural statistics.
    pub stats: HierarchyStats,
}

impl HierarchySummary {
    /// Computes the summary for a vocabulary.
    pub fn compute(name: &str, vocab: &Vocabulary) -> HierarchySummary {
        HierarchySummary {
            name: name.to_owned(),
            stats: vocab.hierarchy_stats(),
        }
    }
}

/// Renders Table 2.
pub fn format_table2(rows: &[HierarchySummary]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>12} {:>11} {:>11} {:>13} {:>7} {:>12} {:>12}\n",
        "Hierarchy",
        "Total items",
        "Leaf items",
        "Root items",
        "Intermediate",
        "Levels",
        "Avg fan-out",
        "Max fan-out"
    ));
    for r in rows {
        let s = &r.stats;
        out.push_str(&format!(
            "{:<10} {:>12} {:>11} {:>11} {:>13} {:>7} {:>12.1} {:>12}\n",
            r.name,
            s.total_items,
            s.leaf_items,
            s.root_items,
            s.intermediate_items,
            s.levels,
            s.avg_fanout,
            s.max_fanout
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1::paper_example;

    #[test]
    fn dataset_summary_of_fig1() {
        let (_, db) = paper_example();
        let s = DatasetSummary::compute("fig1", &db);
        assert_eq!(s.sequences, 6);
        assert_eq!(s.total_items, 4 + 5 + 2 + 4 + 4 + 3);
        assert_eq!(s.max_length, 5);
        assert_eq!(s.unique_items, 12); // 14 items minus unused b2-sibling? all but B, D occur
    }

    #[test]
    fn tables_render_all_rows() {
        let (vocab, db) = paper_example();
        let t1 = format_table1(&[DatasetSummary::compute("fig1", &db)]);
        assert!(t1.contains("fig1"));
        assert!(t1.lines().count() == 2);
        let t2 = format_table2(&[HierarchySummary::compute("fig1-h", &vocab)]);
        assert!(t2.contains("fig1-h"));
        assert!(t2.contains("14"));
    }
}
