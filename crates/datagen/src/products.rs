//! AMZN-like product sessions with category hierarchies (paper Sec. 6.1).
//!
//! Users review products over time; grouping reviews by user and sorting by
//! timestamp yields short, heavy-tailed product sequences (average ≈ 4.5).
//! Products live in a category tree; the paper derives hierarchy variants of
//! depth 2–8 by varying how many intermediate categories a product keeps,
//! and notes that most products have no more than four parent categories —
//! so deeper variants add levels only for a minority of products.
//!
//! [`ProductCorpus`] samples a category *path* per product (depth mostly
//! 2–4, occasionally deeper) and materializes a variant `h_k` by truncating
//! paths to `k − 1` category levels.

use lash_core::{SequenceDatabase, Vocabulary, VocabularyBuilder};

use std::collections::HashMap;

use crate::rng::Rng;
use crate::zipf::Zipf;

/// Category-hierarchy depth variants (total levels including products).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductHierarchy {
    /// product → root category.
    H2,
    /// product → subcategory → root.
    H3,
    /// product → … (3 category levels).
    H4,
    /// product → … (up to 7 category levels).
    H8,
}

impl ProductHierarchy {
    /// Total number of levels (the paper's "h2" … "h8").
    pub fn levels(&self) -> usize {
        match self {
            ProductHierarchy::H2 => 2,
            ProductHierarchy::H3 => 3,
            ProductHierarchy::H4 => 4,
            ProductHierarchy::H8 => 8,
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ProductHierarchy::H2 => "h2",
            ProductHierarchy::H3 => "h3",
            ProductHierarchy::H4 => "h4",
            ProductHierarchy::H8 => "h8",
        }
    }

    /// All variants in the paper's order.
    pub fn all() -> [ProductHierarchy; 4] {
        [
            ProductHierarchy::H2,
            ProductHierarchy::H3,
            ProductHierarchy::H4,
            ProductHierarchy::H8,
        ]
    }
}

/// Configuration of the product corpus generator.
#[derive(Debug, Clone)]
pub struct ProductConfig {
    /// Number of users (= sessions).
    pub users: usize,
    /// Number of distinct products.
    pub products: usize,
    /// Number of root categories.
    pub root_categories: usize,
    /// Maximum children per category node.
    pub branching: usize,
    /// Maximum category levels (7 for the paper's h8).
    pub max_depth: usize,
    /// Average session length (AMZN ≈ 4.5).
    pub avg_session_len: f64,
    /// Zipf exponent of product popularity.
    pub zipf_exponent: f64,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for ProductConfig {
    fn default() -> Self {
        ProductConfig {
            users: 20_000,
            products: 20_000,
            root_categories: 40,
            branching: 6,
            max_depth: 7,
            avg_session_len: 4.5,
            zipf_exponent: 1.05,
            seed: 20150602,
        }
    }
}

impl ProductConfig {
    /// Scales user and product counts by `factor`.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.users = ((self.users as f64 * factor) as usize).max(1);
        self.products = ((self.products as f64 * factor.sqrt()) as usize).max(10);
        self
    }
}

/// A generated product corpus; pair with a [`ProductHierarchy`] via
/// [`ProductCorpus::dataset`].
#[derive(Debug, Clone)]
pub struct ProductCorpus {
    config: ProductConfig,
    /// Category parents (`None` for roots) and depths (roots = 1).
    cat_parent: Vec<Option<u32>>,
    cat_depth: Vec<u8>,
    /// Deepest category of each product.
    product_cat: Vec<u32>,
    /// Flat session arena over product ids.
    items: Vec<u32>,
    offsets: Vec<u64>,
}

impl ProductCorpus {
    /// Generates the corpus deterministically.
    pub fn generate(config: &ProductConfig) -> ProductCorpus {
        assert!(config.products >= 1 && config.root_categories >= 1);
        assert!(config.max_depth >= 1 && config.avg_session_len >= 1.0);
        let mut rng = Rng::new(config.seed);

        // Category tree, built on demand while sampling product paths.
        let mut cat_parent: Vec<Option<u32>> = (0..config.root_categories).map(|_| None).collect();
        let mut cat_depth: Vec<u8> = vec![1; config.root_categories];
        let mut child_index: HashMap<(u32, u32), u32> = HashMap::new();
        let root_dist = Zipf::new(config.root_categories, 0.7);

        let mut product_cat = Vec::with_capacity(config.products);
        for _ in 0..config.products {
            // Depth mostly 2–4: 2 + geometric(0.6), capped at max_depth.
            let depth = (2 + rng.geometric(0.6, 5)).min(config.max_depth);
            let mut cat = root_dist.sample(&mut rng) as u32;
            for _ in 1..depth {
                let slot = rng.below(config.branching as u64) as u32;
                cat = *child_index.entry((cat, slot)).or_insert_with(|| {
                    let id = cat_parent.len() as u32;
                    cat_parent.push(Some(cat));
                    cat_depth.push(cat_depth[cat as usize] + 1);
                    id
                });
            }
            product_cat.push(cat);
        }

        // Sessions.
        let product_dist = Zipf::new(config.products, config.zipf_exponent);
        let p = 1.0 / config.avg_session_len;
        let mut items = Vec::new();
        let mut offsets = Vec::with_capacity(config.users + 1);
        offsets.push(0u64);
        for _ in 0..config.users {
            let len = 1 + rng.geometric(p, (config.avg_session_len * 50.0) as usize);
            for _ in 0..len {
                items.push(product_dist.sample(&mut rng) as u32);
            }
            offsets.push(items.len() as u64);
        }
        ProductCorpus {
            config: config.clone(),
            cat_parent,
            cat_depth,
            product_cat,
            items,
            offsets,
        }
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True if no sessions were generated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The generator configuration.
    pub fn config(&self) -> &ProductConfig {
        &self.config
    }

    /// Materializes the corpus under a hierarchy variant: the same sessions,
    /// with each product's category path truncated to `levels − 1`
    /// categories.
    pub fn dataset(&self, hierarchy: ProductHierarchy) -> (Vocabulary, SequenceDatabase) {
        let max_cat_levels = (hierarchy.levels() - 1) as u8;
        let mut vb = VocabularyBuilder::new();

        // Intern every category that survives truncation, parents first
        // (category ids are creation-ordered, so parents precede children).
        let mut cat_item = vec![None; self.cat_parent.len()];
        for (id, (&parent, &depth)) in self.cat_parent.iter().zip(&self.cat_depth).enumerate() {
            if depth > max_cat_levels {
                continue;
            }
            let item = vb.intern(&format!("cat{id}"));
            if let Some(p) = parent {
                vb.set_parent(item, cat_item[p as usize].expect("parent interned first"))
                    .expect("fresh item");
            }
            cat_item[id] = Some(item);
        }

        // Products attach to their deepest surviving ancestor category.
        let product_items: Vec<_> = (0..self.config.products)
            .map(|pid| {
                let item = vb.intern(&format!("p{pid}"));
                let mut cat = self.product_cat[pid];
                while self.cat_depth[cat as usize] > max_cat_levels {
                    cat = self.cat_parent[cat as usize].expect("depth > 1 has parent");
                }
                vb.set_parent(item, cat_item[cat as usize].expect("interned"))
                    .expect("fresh item");
                item
            })
            .collect();

        let vocab = vb.finish().expect("generated hierarchy is a forest");
        let mut db = SequenceDatabase::with_capacity(self.len(), self.items.len());
        let mut seq = Vec::new();
        for i in 0..self.len() {
            seq.clear();
            let lo = self.offsets[i] as usize;
            let hi = self.offsets[i + 1] as usize;
            seq.extend(
                self.items[lo..hi]
                    .iter()
                    .map(|&p| product_items[p as usize]),
            );
            db.push(&seq);
        }
        (vocab, db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ProductConfig {
        ProductConfig {
            users: 1_000,
            products: 500,
            root_categories: 8,
            branching: 4,
            max_depth: 7,
            avg_session_len: 4.5,
            zipf_exponent: 1.05,
            seed: 99,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProductCorpus::generate(&small_config());
        let b = ProductCorpus::generate(&small_config());
        assert_eq!(a.items, b.items);
        assert_eq!(a.product_cat, b.product_cat);
    }

    #[test]
    fn hierarchy_depths_match_variants() {
        let corpus = ProductCorpus::generate(&small_config());
        let mut prev_intermediates = 0usize;
        for h in ProductHierarchy::all() {
            let (vocab, _) = corpus.dataset(h);
            let stats = vocab.hierarchy_stats();
            assert!(
                stats.levels <= h.levels(),
                "{}: levels {} > {}",
                h.name(),
                stats.levels,
                h.levels()
            );
            // h2 is exactly two levels with no intermediates.
            if h == ProductHierarchy::H2 {
                assert_eq!(stats.levels, 2);
                assert_eq!(stats.intermediate_items, 0);
                assert_eq!(stats.root_items, 8);
            } else {
                assert!(stats.intermediate_items >= prev_intermediates);
            }
            prev_intermediates = stats.intermediate_items;
        }
        // Deeper variants add items (the surviving categories).
        let (v2, _) = corpus.dataset(ProductHierarchy::H2);
        let (v8, _) = corpus.dataset(ProductHierarchy::H8);
        assert!(v8.len() > v2.len());
        // Most products sit within 4 levels: h8 adds few levels beyond h4.
        let deep_products = (0..corpus.config.products)
            .filter(|&p| corpus.cat_depth[corpus.product_cat[p] as usize] > 3)
            .count();
        assert!(deep_products * 3 < corpus.config.products);
    }

    #[test]
    fn sessions_identical_across_variants() {
        let corpus = ProductCorpus::generate(&small_config());
        let (va, a) = corpus.dataset(ProductHierarchy::H2);
        let (vb, b) = corpus.dataset(ProductHierarchy::H8);
        assert_eq!(a.len(), b.len());
        for i in (0..a.len()).step_by(53) {
            let na: Vec<&str> = a.get(i).iter().map(|&t| va.name(t)).collect();
            let nb: Vec<&str> = b.get(i).iter().map(|&t| vb.name(t)).collect();
            assert_eq!(na, nb);
        }
    }

    #[test]
    fn session_lengths_are_heavy_tailed() {
        let corpus = ProductCorpus::generate(&ProductConfig {
            users: 5_000,
            ..small_config()
        });
        let (_, db) = corpus.dataset(ProductHierarchy::H4);
        let avg = db.avg_len();
        assert!((3.5..5.5).contains(&avg), "avg {avg}");
        assert!(db.max_len() > 20, "max {}", db.max_len());
        // Plenty of singleton sessions, like real review data.
        let singletons = db.iter().filter(|s| s.len() == 1).count();
        assert!(singletons > db.len() / 10);
    }

    #[test]
    fn products_generalize_to_root_categories() {
        let corpus = ProductCorpus::generate(&small_config());
        let (vocab, db) = corpus.dataset(ProductHierarchy::H8);
        for &item in db.get(0) {
            let chain = vocab.chain(item);
            assert!(chain.len() >= 2, "product must have a category parent");
            let root = *chain.last().unwrap();
            assert!(vocab.name(root).starts_with("cat"));
            assert_eq!(vocab.parent(root), None);
        }
    }
}
