//! Microbenchmarks of generalized subsequence matching (`S ⊑γ T`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lash_core::context::MiningContext;
use lash_core::matching::{embeddings, matches};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};

fn setup() -> (MiningContext, Vec<Vec<u32>>) {
    let corpus = TextCorpus::generate(&TextConfig {
        sentences: 500,
        lemmas: 500,
        ..TextConfig::default()
    });
    let (vocab, db) = corpus.dataset(TextHierarchy::CLP);
    let ctx = MiningContext::build(&db, &vocab, 20);
    let seqs: Vec<Vec<u32>> = (0..200).map(|i| ctx.ranked_seq(i).to_vec()).collect();
    (ctx, seqs)
}

fn bench_matching(c: &mut Criterion) {
    let (ctx, seqs) = setup();
    let space = ctx.space();
    // A three-item pattern over frequent ranks, hierarchy-aware.
    let pattern = [0u32, 3, 1];
    let mut group = c.benchmark_group("matching");
    group.bench_function("matches_200_sentences_gamma1", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for seq in &seqs {
                hits += usize::from(matches(black_box(&pattern), seq, space, 1));
            }
            black_box(hits)
        });
    });
    group.bench_function("matches_200_sentences_gamma0", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for seq in &seqs {
                hits += usize::from(matches(black_box(&pattern), seq, space, 0));
            }
            black_box(hits)
        });
    });
    group.bench_function("embeddings_200_sentences", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for seq in &seqs {
                total += embeddings(black_box(&pattern), seq, space, 1).len();
            }
            black_box(total)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
