//! Throughput of the on-disk corpus: write path, block decode (the scan
//! hot path, per payload codec), streaming scan, parallel scan, and
//! header-only f-list — each against the in-memory baseline the store
//! replaces.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_core::flist::FList;
use lash_core::{SequenceDatabase, Vocabulary};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash_store::{CorpusReader, Partitioning, PayloadCodec, StoreOptions};

fn dataset() -> (Vocabulary, SequenceDatabase) {
    TextCorpus::generate(&TextConfig {
        sentences: 10_000,
        lemmas: 1_500,
        ..TextConfig::default()
    })
    .dataset(TextHierarchy::LP)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lash-bench-store-{tag}-{}", std::process::id()))
}

fn opts() -> StoreOptions {
    StoreOptions::default().with_partitioning(Partitioning::hash(8))
}

fn bench_write(c: &mut Criterion) {
    let (vocab, db) = dataset();
    let bytes = (db.total_items() * 4) as u64;
    let mut group = c.benchmark_group("store_write");
    group.throughput(Throughput::Elements(db.len() as u64));
    group.bench_function("sequences", |b| {
        let dir = temp_dir("write");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let m = lash_store::convert::write_database(&dir, &vocab, &db, opts()).unwrap();
            black_box(m.num_sequences)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("item_bytes", |b| {
        let dir = temp_dir("write-bytes");
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let m = lash_store::convert::write_database(&dir, &vocab, &db, opts()).unwrap();
            black_box(m.total_items)
        });
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

/// Block-decode throughput per payload codec: the same corpus written in
/// the v2 varint format and the v3 group-varint format, fully scanned
/// batch-by-batch (page-cache-hot, so the measurement is decode-bound).
/// CI tracks the same measurement through `experiments decode`, which
/// gates on each codec's *absolute* Melem/s against the checked-in
/// `BENCH_decode.json` baseline (the v3/v2 ratio is recorded there too,
/// but not gated).
fn bench_block_decode(c: &mut Criterion) {
    // The env override would silently write both corpora with one codec and
    // mislabel the comparison — refuse loudly instead.
    assert!(
        std::env::var(lash_store::FORCE_CODEC_ENV).map_or(true, |v| v.trim().is_empty()),
        "unset {} before running the block_decode benches: it overrides the per-corpus codec",
        lash_store::FORCE_CODEC_ENV
    );
    let (vocab, db) = dataset();
    let items = db.total_items() as u64;
    let mut group = c.benchmark_group("block_decode");
    group.throughput(Throughput::Elements(items));
    for (label, codec) in [
        ("v2", PayloadCodec::Varint),
        ("v3", PayloadCodec::GroupVarint),
    ] {
        let dir = temp_dir(&format!("decode-{label}"));
        let _ = std::fs::remove_dir_all(&dir);
        // Sketchless: this group isolates block *payload* decode; header
        // sketches are a fixed per-block cost measured by store_flist.
        let decode_opts = opts().with_codec(codec).with_sketches(false);
        lash_store::convert::write_database(&dir, &vocab, &db, decode_opts).unwrap();
        let reader = CorpusReader::open(&dir).unwrap();
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut seen = 0usize;
                for shard in 0..reader.num_shards() {
                    let mut scan = reader.scan_shard(shard).unwrap();
                    while let Some(batch) = scan.next_batch().unwrap() {
                        seen += batch.arena().len();
                    }
                }
                assert_eq!(seen as u64, items);
                black_box(seen)
            });
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
}

fn bench_scan(c: &mut Criterion) {
    let (vocab, db) = dataset();
    let dir = temp_dir("scan");
    let _ = std::fs::remove_dir_all(&dir);
    lash_store::convert::write_database(&dir, &vocab, &db, opts()).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();

    let mut group = c.benchmark_group("store_scan");
    group.throughput(Throughput::Elements(db.len() as u64));
    // The baseline the store competes with: iterating the heap arena.
    group.bench_function("in_memory_baseline", |b| {
        b.iter(|| {
            let mut items = 0usize;
            for seq in db.iter() {
                items += seq.len();
            }
            black_box(items)
        });
    });
    group.bench_function("streaming", |b| {
        b.iter(|| {
            let mut items = 0usize;
            for record in reader.scan() {
                items += record.unwrap().1.len();
            }
            black_box(items)
        });
    });
    // Block-at-a-time delivery: shared item arena + offsets, no per-record
    // allocation.
    group.bench_function("streaming_batched", |b| {
        b.iter(|| {
            let mut items = 0usize;
            for shard in 0..reader.num_shards() {
                let mut scan = reader.scan_shard(shard).unwrap();
                while let Some(batch) = scan.next_batch().unwrap() {
                    items += batch.arena().len();
                }
            }
            black_box(items)
        });
    });
    group.bench_function("parallel_8_shards", |b| {
        b.iter(|| {
            let counts = reader
                .par_scan(8, |_, scan| {
                    let mut items = 0usize;
                    for record in scan {
                        items += record?.1.len();
                    }
                    Ok(items)
                })
                .unwrap();
            black_box(counts.into_iter().sum::<usize>())
        });
    });
    group.bench_function("parallel_8_shards_batched", |b| {
        b.iter(|| {
            let counts = reader
                .par_scan(8, |_, mut scan| {
                    let mut items = 0usize;
                    while let Some(batch) = scan.next_batch()? {
                        items += batch.arena().len();
                    }
                    Ok(items)
                })
                .unwrap();
            black_box(counts.into_iter().sum::<usize>())
        });
    });
    group.finish();

    let mut group = c.benchmark_group("store_flist");
    group.throughput(Throughput::Elements(db.len() as u64));
    group.bench_function("in_memory_compute", |b| {
        b.iter(|| black_box(FList::compute(&db, &vocab).num_frequent(10)));
    });
    group.bench_function("from_block_headers", |b| {
        b.iter(|| black_box(reader.flist().unwrap().unwrap().num_frequent(10)));
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_write, bench_block_decode, bench_scan);
criterion_main!(benches);
