//! Microbenchmarks of the wire-format codecs: varint encode/decode and the
//! blank-aware sequence codec used by the shuffle.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_encoding::{decode_sequence, encode_sequence, varint, BLANK};

fn varint_roundtrip(c: &mut Criterion) {
    let values: Vec<u32> = (0..1024u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let mut group = c.benchmark_group("varint");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_u32_x1024", |b| {
        let mut buf = Vec::with_capacity(5 * values.len());
        b.iter(|| {
            buf.clear();
            for &v in &values {
                varint::encode_u32(black_box(v), &mut buf);
            }
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    for &v in &values {
        varint::encode_u32(v, &mut encoded);
    }
    group.bench_function("decode_u32_x1024", |b| {
        b.iter(|| {
            let mut reader = varint::VarintReader::new(&encoded);
            let mut sum = 0u64;
            while !reader.is_empty() {
                sum += reader.read_u32().unwrap() as u64;
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn sequence_codec(c: &mut Criterion) {
    // A rewritten partition sequence: frequent (small) ids with blank runs.
    let seq: Vec<u32> = (0..64u32)
        .map(|i| if i % 5 == 4 { BLANK } else { i % 40 })
        .collect();
    let mut group = c.benchmark_group("sequence_codec");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_function("encode_64_items", |b| {
        let mut buf = Vec::with_capacity(128);
        b.iter(|| {
            buf.clear();
            encode_sequence(black_box(&seq), &mut buf);
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    encode_sequence(&seq, &mut encoded);
    group.bench_function("decode_64_items", |b| {
        b.iter(|| black_box(decode_sequence(black_box(&encoded)).unwrap().len()));
    });
    group.finish();
}

criterion_group!(benches, varint_roundtrip, sequence_codec);
criterion_main!(benches);
