//! Microbenchmarks of the wire-format codecs: varint and group-varint
//! encode/decode, the blank-aware sequence codec used by the shuffle, and
//! the frame checksums.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_encoding::{decode_sequence, encode_sequence, frame, group_varint, varint, BLANK};

fn varint_roundtrip(c: &mut Criterion) {
    let values: Vec<u32> = (0..1024u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let mut group = c.benchmark_group("varint");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_u32_x1024", |b| {
        let mut buf = Vec::with_capacity(5 * values.len());
        b.iter(|| {
            buf.clear();
            for &v in &values {
                varint::encode_u32(black_box(v), &mut buf);
            }
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    for &v in &values {
        varint::encode_u32(v, &mut encoded);
    }
    group.bench_function("decode_u32_x1024", |b| {
        b.iter(|| {
            let mut reader = varint::VarintReader::new(&encoded);
            let mut sum = 0u64;
            while !reader.is_empty() {
                sum += reader.read_u32().unwrap() as u64;
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn sequence_codec(c: &mut Criterion) {
    // A rewritten partition sequence: frequent (small) ids with blank runs.
    let seq: Vec<u32> = (0..64u32)
        .map(|i| if i % 5 == 4 { BLANK } else { i % 40 })
        .collect();
    let mut group = c.benchmark_group("sequence_codec");
    group.throughput(Throughput::Elements(seq.len() as u64));
    group.bench_function("encode_64_items", |b| {
        let mut buf = Vec::with_capacity(128);
        b.iter(|| {
            buf.clear();
            encode_sequence(black_box(&seq), &mut buf);
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    encode_sequence(&seq, &mut encoded);
    group.bench_function("decode_64_items", |b| {
        b.iter(|| black_box(decode_sequence(black_box(&encoded)).unwrap().len()));
    });
    group.finish();
}

fn group_varint_kernel(c: &mut Criterion) {
    // Store-shaped data: mostly small (frequent) ids with a rare-item tail.
    let values: Vec<u32> = (0..65_536u32)
        .map(|i| {
            let h = i.wrapping_mul(2_654_435_761);
            match h % 16 {
                0..=9 => h % 128,
                10..=13 => h % 8_192,
                14 => h % 2_000_000,
                _ => h,
            }
        })
        .collect();
    let mut group = c.benchmark_group("group_varint");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("encode_64k", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            group_varint::encode(black_box(&values), &mut buf);
            black_box(buf.len())
        });
    });
    let mut encoded = Vec::new();
    group_varint::encode(&values, &mut encoded);
    group.bench_function("decode_64k", |b| {
        let mut out = vec![0u32; values.len()];
        b.iter(|| {
            let n = group_varint::decode(black_box(&encoded), &mut out).unwrap();
            black_box((n, out[out.len() - 1]))
        });
    });
    // The byte-at-a-time baseline the wide kernel replaces.
    let mut varint_encoded = Vec::new();
    for &v in &values {
        varint::encode_u32(v, &mut varint_encoded);
    }
    group.bench_function("varint_decode_64k_baseline", |b| {
        b.iter(|| {
            let mut reader = varint::VarintReader::new(&varint_encoded);
            let mut sum = 0u64;
            while !reader.is_empty() {
                sum += reader.read_u32().unwrap() as u64;
            }
            black_box(sum)
        });
    });
    group.finish();
}

fn frame_checksums(c: &mut Criterion) {
    let payload: Vec<u8> = (0..256 * 1024usize).map(|i| (i * 131) as u8).collect();
    let mut group = c.benchmark_group("frame_checksum");
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("fnv1a_256k", |b| {
        b.iter(|| black_box(frame::checksum(black_box(&payload))));
    });
    group.bench_function("fnv1a_wide_256k", |b| {
        b.iter(|| black_box(frame::checksum_wide(black_box(&payload))));
    });
    group.finish();
}

criterion_group!(
    benches,
    varint_roundtrip,
    sequence_codec,
    group_varint_kernel,
    frame_checksums
);
criterion_main!(benches);
