//! Microbenchmarks of partition construction: w-generalization plus the full
//! rewrite pipeline (the per-sequence map-side cost of LASH).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_core::context::MiningContext;
use lash_core::rewrite::{RewriteLevel, Rewriter};
use lash_core::GsmParams;
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};

fn bench_rewrite(c: &mut Criterion) {
    let corpus = TextCorpus::generate(&TextConfig {
        sentences: 500,
        lemmas: 500,
        ..TextConfig::default()
    });
    let (vocab, db) = corpus.dataset(TextHierarchy::CLP);
    let ctx = MiningContext::build(&db, &vocab, 20);
    let params = GsmParams::new(20, 1, 5).unwrap();
    let seqs: Vec<Vec<u32>> = (0..200).map(|i| ctx.ranked_seq(i).to_vec()).collect();
    let pivots: Vec<u32> = (0..ctx.space().num_frequent().min(8)).collect();

    let mut group = c.benchmark_group("rewrite");
    group.throughput(Throughput::Elements((seqs.len() * pivots.len()) as u64));
    for (name, level) in [
        ("generalize_only", RewriteLevel::GeneralizeOnly),
        ("full", RewriteLevel::Full),
    ] {
        group.bench_function(name, |b| {
            let rw = Rewriter::with_level(ctx.space(), &params, level);
            b.iter(|| {
                let mut kept = 0usize;
                for seq in &seqs {
                    for &pivot in &pivots {
                        kept += usize::from(rw.rewrite(black_box(seq), pivot).is_some());
                    }
                }
                black_box(kept)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rewrite);
criterion_main!(benches);
