//! Microbenchmarks of the local miners on a fixed partition — the
//! reduce-side cost that Fig. 4(c) measures at the job level.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lash_core::context::MiningContext;
use lash_core::miner::{BfsMiner, DfsMiner, LocalMiner, PsmMiner};
use lash_core::rewrite::Rewriter;
use lash_core::sequence::Partition;
use lash_core::GsmParams;
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};

fn build_partition() -> (MiningContext, Partition, u32, GsmParams) {
    let corpus = TextCorpus::generate(&TextConfig {
        sentences: 2_000,
        lemmas: 500,
        ..TextConfig::default()
    });
    let (vocab, db) = corpus.dataset(TextHierarchy::CLP);
    let ctx = MiningContext::build(&db, &vocab, 20);
    let params = GsmParams::new(20, 0, 5).unwrap();
    // A mid-frequency pivot has a partition that is neither trivial nor huge.
    let pivot = ctx.space().num_frequent() / 4;
    let rewriter = Rewriter::new(ctx.space(), &params);
    let partition = Partition::aggregate(
        (0..ctx.ranked_db().len())
            .filter_map(|i| rewriter.rewrite(ctx.ranked_seq(i), pivot))
            .map(|s| (s, 1)),
    );
    (ctx, partition, pivot, params)
}

fn bench_miners(c: &mut Criterion) {
    let (ctx, partition, pivot, params) = build_partition();
    let space = ctx.space();
    let miners: Vec<(&str, Box<dyn LocalMiner>)> = vec![
        ("bfs", Box::new(BfsMiner)),
        ("dfs", Box::new(DfsMiner)),
        ("psm", Box::new(PsmMiner::plain())),
        ("psm_indexed", Box::new(PsmMiner::indexed())),
    ];
    let mut group = c.benchmark_group("local_miners");
    group.sample_size(20);
    for (name, miner) in &miners {
        group.bench_function(name, |b| {
            b.iter(|| {
                let (patterns, stats) = miner.mine(black_box(&partition), pivot, space, &params);
                black_box((patterns.len(), stats.candidates))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_miners);
criterion_main!(benches);
