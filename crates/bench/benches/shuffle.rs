//! Throughput of the MapReduce shuffle: the all-in-memory fast path against
//! the out-of-core external-sort path at several spill thresholds, plus a
//! LASH mine job end-to-end on both paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_core::{GsmParams, Lash, LashConfig};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash_mapreduce::{run_job, Emitter, EngineConfig, Job};

/// A word-count-shaped job over synthetic token sequences: enough emitted
/// pairs per input to make the shuffle the dominant cost.
struct TokenCount;

impl Job for TokenCount {
    type Input = Vec<u32>;
    type Key = u32;
    type Value = u64;
    type Output = (u32, u64);

    fn map(&self, tokens: &Vec<u32>, emit: &mut Emitter<'_, Self>) {
        for &t in tokens {
            emit.emit(t, 1);
        }
    }

    fn combine(&self, _key: &u32, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(&self, key: u32, values: impl Iterator<Item = u64>, out: &mut Vec<(u32, u64)>) {
        out.push((key, values.sum()));
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&key.to_be_bytes());
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        u32::from_be_bytes(bytes.try_into().expect("4-byte key"))
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&value.to_le_bytes());
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        u64::from_le_bytes(bytes.try_into().expect("8-byte value"))
    }
}

/// Deterministic Zipf-ish token sequences.
fn inputs() -> Vec<Vec<u32>> {
    let mut state = 0x2545f4914f6cdd1du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..4_000)
        .map(|_| {
            (0..12)
                .map(|_| {
                    let r = next();
                    // Skew towards small keys so groups have many values.
                    ((r % 1000) * (r % 7) / 6) as u32
                })
                .collect()
        })
        .collect()
}

fn bench_shuffle_paths(c: &mut Criterion) {
    let data = inputs();
    let pairs: u64 = data.iter().map(|v| v.len() as u64).sum();
    let base = EngineConfig::default()
        .with_reduce_tasks(8)
        .with_split_size(256);

    let mut group = c.benchmark_group("shuffle");
    group.throughput(Throughput::Elements(pairs));
    group.bench_function("in_memory", |b| {
        let cfg = base.clone().with_spill_threshold(None);
        b.iter(|| black_box(run_job(&TokenCount, &data, &cfg).unwrap().outputs.len()));
    });
    for (label, threshold) in [("spill_64k", 64 * 1024), ("spill_8k", 8 * 1024)] {
        let cfg = base.clone().with_spill_threshold(Some(threshold));
        group.bench_function(label, |b| {
            b.iter(|| black_box(run_job(&TokenCount, &data, &cfg).unwrap().outputs.len()));
        });
    }
    group.finish();
}

fn bench_mine_job_paths(c: &mut Criterion) {
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 4_000,
        lemmas: 1_200,
        ..TextConfig::default()
    })
    .dataset(TextHierarchy::LP);
    let params = GsmParams::ngram(40, 4).expect("valid params");

    let mut group = c.benchmark_group("mine_job");
    group.throughput(Throughput::Elements(db.len() as u64));
    group.sample_size(10);
    let base = EngineConfig::default()
        .with_reduce_tasks(8)
        .with_split_size(512);
    for (label, threshold) in [("in_memory", None), ("spill_64k", Some(64 * 1024))] {
        let cfg = base.clone().with_spill_threshold(threshold);
        group.bench_function(label, |b| {
            b.iter(|| {
                let result = Lash::new(LashConfig::new(cfg.clone()))
                    .mine(&db, &vocab, &params)
                    .unwrap();
                black_box(result.pattern_set().len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_shuffle_paths, bench_mine_job_paths);
criterion_main!(benches);
