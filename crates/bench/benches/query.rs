//! Query throughput of the on-disk pattern index: exact-support lookups
//! (hits and misses), prefix enumeration, top-k ranking (the
//! max-descendant-frequency pruning path), and hierarchy-aware lookups —
//! each against a brute-force linear scan over the pattern list, the
//! baseline the index replaces.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lash_core::pattern::Pattern;
use lash_core::{GsmParams, ItemId, Lash};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash_index::{write_patterns, PatternIndexReader};

/// Mines a mid-size NYT-like corpus once; the index is built from its
/// pattern list.
fn mined() -> (lash_core::Vocabulary, Vec<Pattern>) {
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 8_000,
        lemmas: 1_200,
        ..TextConfig::default()
    })
    .dataset(TextHierarchy::LP);
    let params = GsmParams::new(20, 1, 5).unwrap();
    let result = Lash::default().mine(&db, &vocab, &params).unwrap();
    (vocab, result.patterns().to_vec())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lash-bench-query-{tag}-{}", std::process::id()))
}

fn bench_queries(c: &mut Criterion) {
    let (vocab, patterns) = mined();
    assert!(!patterns.is_empty());
    let dir = temp_dir("index");
    let _ = std::fs::remove_dir_all(&dir);
    write_patterns(&dir, &vocab, &patterns).unwrap();
    let reader = PatternIndexReader::open(&dir).unwrap();

    // Probe set: every pattern (hit) and a one-item-longer variant (miss).
    let mut probes: Vec<Vec<ItemId>> = Vec::with_capacity(patterns.len() * 2);
    for p in &patterns {
        probes.push(p.items.clone());
        let mut miss = p.items.clone();
        miss.push(p.items[0]);
        probes.push(miss);
    }

    let mut group = c.benchmark_group("query_support");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("indexed", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for items in &probes {
                if reader.support(items).unwrap().is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.finish();

    // The baseline the index replaces: a linear scan per query. Probes
    // are subsampled — at hundreds of thousands of patterns one full
    // round would take a minute per iteration, and the per-query cost is
    // uniform enough that a 1/64 sample measures the same thing.
    let sampled: Vec<&Vec<ItemId>> = probes.iter().step_by(64).collect();
    let mut group = c.benchmark_group("query_support_baseline");
    group.throughput(Throughput::Elements(sampled.len() as u64));
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0u64;
            for items in &sampled {
                if patterns.iter().any(|p| &p.items == *items) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.finish();

    // Distinct first items: the prefix workload.
    let mut firsts: Vec<ItemId> = patterns.iter().map(|p| p.items[0]).collect();
    firsts.sort_unstable();
    firsts.dedup();

    let mut group = c.benchmark_group("query_prefix");
    group.throughput(Throughput::Elements(firsts.len() as u64));
    group.bench_function("enumerate", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &first in &firsts {
                total += reader.enumerate(&[first], None).unwrap().len();
            }
            assert_eq!(total, patterns.len());
            black_box(total)
        });
    });
    group.bench_function("top_10", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for &first in &firsts {
                total += reader.top_k(&[first], 10).unwrap().len();
            }
            black_box(total)
        });
    });
    group.finish();

    let mut group = c.benchmark_group("query_top_k_full_index");
    group.throughput(Throughput::Elements(1));
    group.bench_function("top_10", |b| {
        b.iter(|| black_box(reader.top_k(&[], 10).unwrap().len()));
    });
    group.bench_function("top_100", |b| {
        b.iter(|| black_box(reader.top_k(&[], 100).unwrap().len()));
    });
    group.finish();

    // Hierarchy-aware lookups phrased in the patterns' own items.
    let queries: Vec<&[ItemId]> = patterns
        .iter()
        .take(512)
        .map(|p| p.items.as_slice())
        .collect();
    let mut group = c.benchmark_group("query_generalized");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("lookup", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for items in &queries {
                total += reader.lookup_generalized(items).unwrap().len();
            }
            black_box(total)
        });
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
