//! Fig. 5: parameter effects (σ, γ, λ) and hierarchy effects on the LASH
//! pipeline, with the map/shuffle/reduce phase breakdown of the mining job.

use lash_core::{GsmParams, LashConfig, LashResult};
use lash_datagen::{ProductHierarchy, TextHierarchy};

use crate::datasets::Datasets;
use crate::report::{secs, Report, Table};

use super::{cluster, run_lash};

fn phase_row(label: String, result: &LashResult) -> Vec<String> {
    vec![
        label,
        secs(result.mine_metrics.map_time),
        secs(result.mine_metrics.shuffle_time),
        secs(result.mine_metrics.reduce_time),
        secs(result.total_time()),
        result.pattern_set().len().to_string(),
    ]
}

const PHASE_HEADERS: [&str; 6] = ["setting", "map", "shuffle", "reduce", "total", "#patterns"];

/// Fig. 5(a): effect of minimum support σ on AMZN-h8 (γ=1, λ=5).
///
/// The paper sweeps σ ∈ {10, 100, 1000, 10000} over 6.6M sessions; the
/// synthetic corpus is ~300× smaller, so the sweep {5, 25, 125, 625} spans
/// the corresponding two orders of magnitude of relative support.
///
/// Paper shape: both map (rewriting) and reduce (mining) times fall as σ
/// rises — higher support shrinks the effective hierarchy depth and the
/// search space.
pub fn fig5a(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig5a",
        "Effect of support σ (s): AMZN-h8, γ=1, λ=5",
        &PHASE_HEADERS,
    );
    let (vocab, db) = datasets.amzn_dataset(ProductHierarchy::H8);
    for sigma in [5u64, 25, 125, 625] {
        let params = GsmParams::new(sigma, 1, 5).expect("valid params");
        let result = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        table.row(phase_row(format!("σ={sigma}"), &result));
    }
    report.add(table);
}

/// Fig. 5(b): effect of the gap constraint γ ∈ {0..3} on AMZN-h8
/// (σ=25, the mapped equivalent of the paper's σ=100; λ=5).
///
/// Paper shape: map time is flat (rewriting is largely γ-independent);
/// reduce time grows steeply with γ as the mining search space widens.
pub fn fig5b(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig5b",
        "Effect of gap γ (s): AMZN-h8, σ=25, λ=5",
        &PHASE_HEADERS,
    );
    let (vocab, db) = datasets.amzn_dataset(ProductHierarchy::H8);
    for gamma in 0..=3usize {
        let params = GsmParams::new(25, gamma, 5).expect("valid params");
        let result = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        table.row(phase_row(format!("γ={gamma}"), &result));
    }
    report.add(table);
}

/// Fig. 5(c,d): effect of maximum length λ ∈ {3..7} on AMZN-h8 (σ=25, γ=1),
/// plus the output-size series of Fig. 5(d).
///
/// Paper shape: map time flat; reduce time and output size grow with λ and
/// are proportional to each other.
pub fn fig5cd(datasets: &mut Datasets, report: &mut Report) {
    let mut time_table = Table::new(
        "fig5c",
        "Effect of length λ (s): AMZN-h8, σ=25, γ=1",
        &PHASE_HEADERS,
    );
    let mut out_table = Table::new(
        "fig5d",
        "Output sequences vs λ: AMZN-h8, σ=25, γ=1",
        &["setting", "#patterns", "reduce (s)"],
    );
    let (vocab, db) = datasets.amzn_dataset(ProductHierarchy::H8);
    for lambda in 3..=7usize {
        let params = GsmParams::new(25, 1, lambda).expect("valid params");
        let result = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        time_table.row(phase_row(format!("λ={lambda}"), &result));
        out_table.row(vec![
            format!("λ={lambda}"),
            result.pattern_set().len().to_string(),
            secs(result.mine_metrics.reduce_time),
        ]);
    }
    report.add(time_table);
    report.add(out_table);
}

/// Fig. 5(e): effect of hierarchy depth (AMZN h2/h3/h4/h8; σ=25, γ=2, λ=5).
///
/// Paper shape: map grows mildly with depth (rewriting walks chains); reduce
/// grows with the number of intermediate items since each one spawns a
/// partition; h8 adds little over h4 because most products have ≤ 4 parent
/// categories.
pub fn fig5e(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig5e",
        "Effect of hierarchy depth (s): AMZN, σ=25, γ=2, λ=5",
        &PHASE_HEADERS,
    );
    for hierarchy in ProductHierarchy::all() {
        let (vocab, db) = datasets.amzn_dataset(hierarchy);
        let params = GsmParams::new(25, 2, 5).expect("valid params");
        let result = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        table.row(phase_row(hierarchy.name().to_owned(), &result));
    }
    report.add(table);
}

/// Fig. 5(f): effect of hierarchy shape (NYT L/P/LP/CLP; σ=100, γ=0, λ=5).
///
/// Paper shape: P (few roots, huge fan-out) mines slower than L (many roots,
/// small fan-out) despite equal depth; LP and CLP add map and reduce time.
pub fn fig5f(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig5f",
        "Effect of hierarchy shape (s): NYT, σ=100, γ=0, λ=5",
        &PHASE_HEADERS,
    );
    for hierarchy in TextHierarchy::all() {
        let (vocab, db) = datasets.nyt_dataset(hierarchy);
        let params = GsmParams::ngram(100, 5).expect("valid params");
        let result = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        table.row(phase_row(hierarchy.name().to_owned(), &result));
    }
    report.add(table);
}
