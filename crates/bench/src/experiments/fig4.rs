//! Fig. 4: distributed baselines (a, b), local miners (c, d), and flat
//! mining against MG-FSM (e).

use lash_core::context::MiningContext;
use lash_core::distributed::flist_job::compute_flist_distributed;
use lash_core::distributed::mgfsm::{lash_flat, MgFsm};
use lash_core::distributed::naive_job::run_naive;
use lash_core::distributed::semi_naive_job::run_semi_naive;
use lash_core::{GsmParams, LashConfig, MinerKind};
use lash_datagen::TextHierarchy;

use crate::datasets::Datasets;
use crate::report::{mib, secs, Report, Table};

use super::{cluster, run_lash, setting_label};

/// Fig. 4(a,b): total time and shuffled bytes of naive vs semi-naive vs LASH
/// on the NYT corpus (generalized n-gram mining, γ = 0).
///
/// Paper shape: LASH wins by ≥10× on the P settings and by orders of
/// magnitude on CLP(100,0,5), where naive and semi-naive were aborted after
/// 12 hours; LASH also shuffles far fewer bytes.
pub fn fig4ab(datasets: &mut Datasets, report: &mut Report) {
    let settings: [(TextHierarchy, u64, usize); 4] = [
        (TextHierarchy::P, 1000, 3),
        (TextHierarchy::P, 100, 3),
        (TextHierarchy::P, 100, 5),
        (TextHierarchy::CLP, 100, 5),
    ];
    let mut time_table = Table::new(
        "fig4a",
        "Total time (s): naive vs semi-naive vs LASH, NYT, γ=0",
        &[
            "setting",
            "naive",
            "semi-naive",
            "LASH",
            "speedup(naive/LASH)",
        ],
    );
    let mut bytes_table = Table::new(
        "fig4b",
        "Shuffled bytes (MiB): map→reduce data volume",
        &["setting", "naive", "semi-naive", "LASH"],
    );
    for (hierarchy, sigma, lambda) in settings {
        let params = GsmParams::ngram(sigma, lambda).expect("valid params");
        let (vocab, db) = datasets.nyt_dataset(hierarchy);
        let label = setting_label(hierarchy.name(), &params);

        // Shared preprocessing (the paper reuses the f-list across methods).
        let (flist, flist_metrics) =
            compute_flist_distributed(&db, &vocab, &cluster()).expect("flist job");
        let ctx = MiningContext::from_flist(&db, &vocab, flist, params.sigma);

        let (naive_set, naive_metrics) = run_naive(&ctx, &params, &cluster()).expect("naive job");
        let (semi_set, semi_metrics) =
            run_semi_naive(&ctx, &params, &cluster()).expect("semi-naive job");
        let lash = run_lash(&db, &vocab, &params, LashConfig::new(cluster()));
        assert_eq!(
            &naive_set,
            lash.pattern_set(),
            "baselines must agree with LASH on {label}"
        );
        assert_eq!(&semi_set, lash.pattern_set());

        let naive_t = naive_metrics.total_time;
        let semi_t = flist_metrics.total_time + semi_metrics.total_time;
        let lash_t = lash.total_time();
        time_table.row(vec![
            label.clone(),
            secs(naive_t),
            secs(semi_t),
            secs(lash_t),
            format!(
                "{:.1}x",
                naive_t.as_secs_f64() / lash_t.as_secs_f64().max(1e-9)
            ),
        ]);
        bytes_table.row(vec![
            label,
            mib(naive_metrics.counters.map_output_bytes),
            mib(semi_metrics.counters.map_output_bytes),
            mib(lash.mine_metrics.counters.map_output_bytes),
        ]);
    }
    report.add(time_table);
    report.add(bytes_table);
}

/// Fig. 4(c,d): local mining time and search-space size of BFS vs DFS vs PSM
/// vs PSM+Index inside the LASH reduce phase.
///
/// Paper shape: PSM is 9–22× faster than BFS and 2.5–3.5× faster than DFS;
/// the index further prunes candidates (up to 2×).
pub fn fig4cd(datasets: &mut Datasets, report: &mut Report) {
    let settings: [(TextHierarchy, u64, usize); 4] = [
        (TextHierarchy::LP, 1000, 5),
        (TextHierarchy::LP, 100, 5),
        (TextHierarchy::CLP, 100, 5),
        (TextHierarchy::CLP, 100, 7),
    ];
    let miners = [
        MinerKind::Bfs,
        MinerKind::Dfs,
        MinerKind::Psm,
        MinerKind::PsmIndexed,
    ];
    let mut time_table = Table::new(
        "fig4c",
        "Local mining time (s): reduce-phase time per local miner, NYT, γ=0",
        &["setting", "BFS", "DFS", "PSM", "PSM+Index"],
    );
    let mut space_table = Table::new(
        "fig4d",
        "#Candidate / output sequences per local miner",
        &["setting", "DFS", "PSM", "PSM+Index"],
    );
    for (hierarchy, sigma, lambda) in settings {
        let params = GsmParams::ngram(sigma, lambda).expect("valid params");
        let (vocab, db) = datasets.nyt_dataset(hierarchy);
        let label = setting_label(hierarchy.name(), &params);
        let mut times = Vec::new();
        let mut ratios = Vec::new();
        let mut reference = None;
        for miner in miners {
            let result = run_lash(
                &db,
                &vocab,
                &params,
                LashConfig::new(cluster()).with_miner(miner),
            );
            match &reference {
                None => reference = Some(result.pattern_set().clone()),
                Some(r) => assert_eq!(r, result.pattern_set(), "{label} {}", miner.name()),
            }
            times.push(secs(result.mine_metrics.reduce_time));
            if miner != MinerKind::Bfs {
                ratios.push(format!(
                    "{:.1}",
                    result.miner_stats.candidates_per_output().unwrap_or(0.0)
                ));
            }
        }
        let mut row = vec![label.clone()];
        row.extend(times);
        time_table.row(row);
        let mut row = vec![label];
        row.extend(ratios);
        space_table.row(row);
    }
    report.add(time_table);
    report.add(space_table);
}

/// Fig. 4(e): sequence mining *without* hierarchies — MG-FSM (BFS local
/// miner) vs LASH (PSM local miner) on the flat NYT corpus.
///
/// Paper shape: LASH wins 2–5×, entirely due to PSM.
pub fn fig4e(datasets: &mut Datasets, report: &mut Report) {
    let settings: [(u64, usize, usize); 3] = [(100, 1, 5), (10, 1, 5), (10, 1, 10)];
    let mut table = Table::new(
        "fig4e",
        "Flat mining (s): MG-FSM vs LASH (no hierarchy), NYT",
        &["setting", "MG-FSM", "LASH", "speedup"],
    );
    // Flat mining only looks at tokens; use the LP vocabulary's surface forms.
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    for (sigma, gamma, lambda) in settings {
        let params = GsmParams::new(sigma, gamma, lambda).expect("valid params");
        let label = setting_label("flat", &params);
        let mgfsm = MgFsm::new(cluster())
            .mine(&db, &vocab, &params)
            .expect("mgfsm run");
        let lash = lash_flat(cluster())
            .mine(&db, &vocab, &params)
            .expect("flat lash run");
        assert_eq!(mgfsm.pattern_set(), lash.pattern_set(), "{label}");
        let t_mgfsm = mgfsm.total_time();
        let t_lash = lash.total_time();
        table.row(vec![
            label,
            secs(t_mgfsm),
            secs(t_lash),
            format!(
                "{:.1}x",
                t_mgfsm.as_secs_f64() / t_lash.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    report.add(table);
}
