//! Shard-scan throughput: the zero-copy mmap + decode-ahead engine vs. the
//! buffered-read engine, full scans and sketch-pruned scans, on the same
//! format-v4 corpus.
//!
//! This is the perf-tracking experiment behind the scan half of CI's
//! `bench-regression` leg: it writes its measurements to `BENCH_scan.json`
//! (uploaded as a build artifact) and, when given `--baseline <json>`,
//! fails the run if scan throughput regressed more than
//! [`super::REGRESSION_TOLERANCE`] against the checked-in numbers. To
//! refresh the baseline after an intentional change (or a runner-class
//! change), copy the artifact over `crates/bench/baselines/BENCH_scan.json`.
//!
//! Both engines run the exact same push-style [`ShardedCorpus`] scans; only
//! `LASH_SCAN_MODE` differs, so the ratio isolates the engine (zero-copy
//! block windows plus the prefetch thread) from the codec.

use std::path::Path;
use std::time::Instant;

use lash_core::sequence::ShardedCorpus;
use lash_core::ItemId;
use lash_datagen::TextHierarchy;
use lash_store::{CorpusReader, Partitioning, StoreOptions, SCAN_MODE_ENV};

use crate::report::{Report, Table};
use crate::Datasets;

use super::check_baseline;

const SHARDS: u32 = 4;
const SCAN_ITERS: u32 = 7;

/// One engine's measurements.
struct Measurement {
    full_melems: f64,
    pruned_melems: f64,
}

/// Best-of-[`SCAN_ITERS`] full-shard and pruned scans through the engine
/// selected by the current `LASH_SCAN_MODE` (page-cache-hot after the first
/// pass).
fn measure(reader: &CorpusReader) -> Measurement {
    // Sketch-prunable predicate: only the rarest eighth of the vocabulary
    // is relevant, so most blocks' G1 sketches rule them out entirely.
    let cut = reader.vocabulary().len() as u32 - reader.vocabulary().len() as u32 / 8;
    let relevant = move |item: ItemId| item.as_u32() >= cut;
    let mut best_full = f64::MAX;
    let mut best_pruned = f64::MAX;
    let mut full_items = 0u64;
    let mut pruned_items = 0u64;
    for _ in 0..SCAN_ITERS {
        full_items = 0;
        let started = Instant::now();
        for shard in 0..reader.num_shards() {
            let items = &mut full_items;
            ShardedCorpus::scan_shard(reader, shard, &mut |_id, seq| {
                *items += seq.len() as u64;
            })
            .expect("full scan");
        }
        best_full = best_full.min(started.elapsed().as_secs_f64());

        pruned_items = 0;
        let started = Instant::now();
        for shard in 0..reader.num_shards() {
            let items = &mut pruned_items;
            ShardedCorpus::scan_shard_pruned(reader, shard, &relevant, &mut |_id, seq| {
                *items += seq.len() as u64;
            })
            .expect("pruned scan");
        }
        best_pruned = best_pruned.min(started.elapsed().as_secs_f64());
    }
    assert!(pruned_items <= full_items);
    Measurement {
        full_melems: full_items as f64 / best_full / 1e6,
        // Pruned throughput is rated in *corpus* items per second: skipping
        // blocks makes the same logical scan finish sooner.
        pruned_melems: full_items as f64 / best_pruned / 1e6,
    }
}

/// Runs the scan experiment; returns `false` when a baseline was given and
/// the measured throughput regressed beyond tolerance.
pub fn scan(
    datasets: &mut Datasets,
    report: &mut Report,
    json_out: Option<&Path>,
    baseline: Option<&Path>,
) -> bool {
    // A forced codec changes what the corpus stores (and therefore what the
    // baseline numbers mean); a forced scan mode would make both rows
    // measure the same engine. Refuse to produce mislabeled numbers.
    if std::env::var(lash_store::FORCE_CODEC_ENV).is_ok_and(|v| !v.trim().is_empty()) {
        eprintln!(
            "error: {} is set — the baseline describes the default (v4) codec; \
             unset it to run `scan`",
            lash_store::FORCE_CODEC_ENV
        );
        return false;
    }
    if std::env::var(SCAN_MODE_ENV).is_ok_and(|v| !v.trim().is_empty()) {
        eprintln!(
            "error: {SCAN_MODE_ENV} is set — `scan` compares both engines itself; \
             unset it to run `scan`"
        );
        return false;
    }
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let scratch = datasets
        .cache_dir()
        .join(format!("scan-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(SHARDS));
    lash_store::convert::write_database(&scratch, &vocab, &db, opts).expect("write corpus");
    let reader = CorpusReader::open(&scratch).expect("open corpus");

    let mut table = Table::new(
        "scan",
        "shard-scan throughput by engine (full + sketch-pruned, format v4)",
        &["engine", "full Melem/s", "pruned Melem/s", "speedup"],
    );

    let mut measured: Vec<(&str, Measurement)> = Vec::new();
    for (label, mode) in [("buffered", "buffered"), ("mmap", "mmap")] {
        std::env::set_var(SCAN_MODE_ENV, mode);
        measured.push((label, measure(&reader)));
    }
    std::env::remove_var(SCAN_MODE_ENV);
    drop(reader);
    let _ = std::fs::remove_dir_all(&scratch);

    let buffered = &measured[0].1;
    let mmap = &measured[1].1;
    let speedup = mmap.full_melems / buffered.full_melems;
    for (label, m) in &measured {
        table.row(vec![
            (*label).to_string(),
            format!("{:.1}", m.full_melems),
            format!("{:.1}", m.pruned_melems),
            if *label == "mmap" {
                format!("{speedup:.2}x")
            } else {
                "1.00x".to_string()
            },
        ]);
    }

    let json = format!(
        "{{\n  \"schema\": \"lash-bench-scan/v1\",\n  \"scan_melems_buffered\": {:.2},\n  \
         \"scan_melems_mmap\": {:.2},\n  \"pruned_melems_buffered\": {:.2},\n  \
         \"pruned_melems_mmap\": {:.2},\n  \"speedup_mmap_over_buffered\": {:.3}\n}}\n",
        buffered.full_melems, mmap.full_melems, buffered.pruned_melems, mmap.pruned_melems, speedup
    );
    if let Some(dir) = json_out {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("BENCH_scan.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    report.add(table);

    match baseline {
        Some(path) => check_baseline(
            path,
            &[
                ("scan_melems_buffered", buffered.full_melems),
                ("scan_melems_mmap", mmap.full_melems),
                ("pruned_melems_mmap", mmap.pruned_melems),
            ],
        ),
        None => true,
    }
}
