//! Block-decode throughput: the format-v2 varint record stream vs. the
//! format-v3 group-varint columnar layout, on the same corpus.
//!
//! This is the perf-tracking experiment behind CI's `bench-regression`
//! leg: it writes its measurements to `BENCH_decode.json` (uploaded as a
//! build artifact) and, when given `--baseline <json>`, fails the run if
//! block-decode throughput regressed more than [`REGRESSION_TOLERANCE`]
//! against the checked-in numbers. To refresh the baseline after an
//! intentional change (or a runner-class change), copy the artifact over
//! `crates/bench/baselines/BENCH_decode.json`.
//!
//! The corpora are written sketchless so the number isolates block
//! *payload* decode — header sketches are a separate, codec-independent
//! cost tracked by the `store_flist` bench group.

use std::path::Path;
use std::time::Instant;

use lash_store::{CorpusReader, Partitioning, PayloadCodec, StoreOptions};

use crate::report::{Report, Table};
use crate::Datasets;
use lash_datagen::TextHierarchy;

const SHARDS: u32 = 4;
const SCAN_ITERS: u32 = 7;

/// Allowed relative throughput drop against the baseline before the run
/// fails (the CI gate's contract: >15% regression is a failure).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// One codec's measurements.
struct Measurement {
    melems: f64,
    payload_bytes: u64,
    blocks: u64,
}

/// Full-corpus batched scan (page-cache-hot after the first pass, so the
/// time is decode-bound); returns the best of [`SCAN_ITERS`] passes.
fn measure(reader: &CorpusReader) -> Measurement {
    let mut best = f64::MAX;
    let mut items = 0u64;
    for _ in 0..SCAN_ITERS {
        items = 0;
        let started = Instant::now();
        for shard in 0..reader.num_shards() {
            let mut scan = reader.scan_shard(shard).expect("open shard scan");
            while let Some(batch) = scan.next_batch().expect("scan batch") {
                items += batch.arena().len() as u64;
            }
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    Measurement {
        melems: items as f64 / best / 1e6,
        payload_bytes: reader
            .manifest()
            .shards
            .iter()
            .map(|s| s.payload_bytes)
            .sum(),
        blocks: reader.manifest().shards.iter().map(|s| s.blocks).sum(),
    }
}

/// Extracts `"key": <number>` from a flat JSON object — enough for the
/// files this experiment writes itself (the repo is offline; no JSON dep).
fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Runs the decode experiment; returns `false` when a baseline was given
/// and the measured throughput regressed beyond tolerance.
pub fn decode(
    datasets: &mut Datasets,
    report: &mut Report,
    json_out: Option<&Path>,
    baseline: Option<&Path>,
) -> bool {
    // LASH_FORCE_CODEC overrides StoreOptions::with_codec everywhere, so
    // under it both corpora would silently get the same codec: the row
    // labeled v3 would measure the forced codec and the baseline gate
    // would fail with a bogus regression. Refuse to produce mislabeled
    // numbers instead.
    if std::env::var(lash_store::FORCE_CODEC_ENV).is_ok_and(|v| !v.trim().is_empty()) {
        eprintln!(
            "error: {} is set — it overrides the per-corpus codec, so the v2-vs-v3 \
             comparison would be meaningless; unset it to run `decode`",
            lash_store::FORCE_CODEC_ENV
        );
        return false;
    }
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let scratch = datasets
        .cache_dir()
        .join(format!("decode-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut table = Table::new(
        "decode",
        "block-decode throughput by payload codec (full batched scan)",
        &["codec", "blocks", "payload MiB", "Melem/s", "speedup"],
    );

    let mut measured: Vec<(&str, Measurement)> = Vec::new();
    for (label, codec) in [
        ("v2", PayloadCodec::Varint),
        ("v3", PayloadCodec::GroupVarint),
    ] {
        let dir = scratch.join(label);
        let opts = StoreOptions::default()
            .with_partitioning(Partitioning::hash(SHARDS))
            .with_sketches(false)
            .with_codec(codec);
        lash_store::convert::write_database(&dir, &vocab, &db, opts).expect("write corpus");
        let reader = CorpusReader::open(&dir).expect("open corpus");
        measured.push((label, measure(&reader)));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let v2 = &measured[0].1;
    let v3 = &measured[1].1;
    let speedup = v3.melems / v2.melems;
    for (label, m) in &measured {
        table.row(vec![
            (*label).to_string(),
            m.blocks.to_string(),
            format!("{:.2}", m.payload_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", m.melems),
            if *label == "v3" {
                format!("{speedup:.2}x")
            } else {
                "1.00x".to_string()
            },
        ]);
    }

    let json = format!(
        "{{\n  \"schema\": \"lash-bench-decode/v1\",\n  \"decode_melems_v2\": {:.2},\n  \
         \"decode_melems_v3\": {:.2},\n  \"speedup_v3_over_v2\": {:.3},\n  \
         \"payload_bytes_v2\": {},\n  \"payload_bytes_v3\": {}\n}}\n",
        v2.melems, v3.melems, speedup, v2.payload_bytes, v3.payload_bytes
    );
    if let Some(dir) = json_out {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("BENCH_decode.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    report.add(table);

    let mut ok = true;
    if let Some(path) = baseline {
        match std::fs::read_to_string(path) {
            Ok(base) => {
                for (key, current) in [
                    ("decode_melems_v2", v2.melems),
                    ("decode_melems_v3", v3.melems),
                ] {
                    let Some(expected) = json_number(&base, key) else {
                        eprintln!("error: baseline {} lacks key {key}", path.display());
                        ok = false;
                        continue;
                    };
                    let floor = expected * (1.0 - REGRESSION_TOLERANCE);
                    if current < floor {
                        eprintln!(
                            "error: {key} regressed: {current:.1} Melem/s < {floor:.1} \
                             (baseline {expected:.1} − {:.0}% tolerance)",
                            REGRESSION_TOLERANCE * 100.0
                        );
                        ok = false;
                    } else {
                        println!("baseline check: {key} {current:.1} Melem/s >= {floor:.1} — ok");
                    }
                }
            }
            Err(e) => {
                eprintln!("error: cannot read baseline {}: {e}", path.display());
                ok = false;
            }
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::json_number;

    #[test]
    fn flat_json_numbers_parse() {
        let json = "{\n  \"a\": 12.5,\n  \"b_c\": 3,\n  \"neg\": -1.25e2\n}";
        assert_eq!(json_number(json, "a"), Some(12.5));
        assert_eq!(json_number(json, "b_c"), Some(3.0));
        assert_eq!(json_number(json, "neg"), Some(-125.0));
        assert_eq!(json_number(json, "missing"), None);
    }
}
