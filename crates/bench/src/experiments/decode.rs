//! Block-decode throughput: the format-v2 varint record stream vs. the
//! format-v3 group-varint columnar layout, on the same corpus.
//!
//! This is the perf-tracking experiment behind CI's `bench-regression`
//! leg: it writes its measurements to `BENCH_decode.json` (uploaded as a
//! build artifact) and, when given `--baseline <json>`, fails the run if
//! block-decode throughput regressed more than
//! [`super::REGRESSION_TOLERANCE`] against the checked-in numbers. To
//! refresh the baseline after an
//! intentional change (or a runner-class change), copy the artifact over
//! `crates/bench/baselines/BENCH_decode.json`.
//!
//! The corpora are written sketchless so the number isolates block
//! *payload* decode — header sketches are a separate, codec-independent
//! cost tracked by the `store_flist` bench group.

use std::path::Path;
use std::time::Instant;

use lash_store::{CorpusReader, Partitioning, PayloadCodec, StoreOptions};

use crate::report::{Report, Table};
use crate::Datasets;
use lash_datagen::TextHierarchy;

use super::check_baseline;

const SHARDS: u32 = 4;
const SCAN_ITERS: u32 = 7;

/// One codec's measurements.
struct Measurement {
    melems: f64,
    payload_bytes: u64,
    blocks: u64,
}

/// Full-corpus batched scan (page-cache-hot after the first pass, so the
/// time is decode-bound); returns the best of [`SCAN_ITERS`] passes.
fn measure(reader: &CorpusReader) -> Measurement {
    let mut best = f64::MAX;
    let mut items = 0u64;
    for _ in 0..SCAN_ITERS {
        items = 0;
        let started = Instant::now();
        for shard in 0..reader.num_shards() {
            let mut scan = reader.scan_shard(shard).expect("open shard scan");
            while let Some(batch) = scan.next_batch().expect("scan batch") {
                items += batch.arena().len() as u64;
            }
        }
        best = best.min(started.elapsed().as_secs_f64());
    }
    Measurement {
        melems: items as f64 / best / 1e6,
        payload_bytes: reader
            .manifest()
            .shards
            .iter()
            .map(|s| s.payload_bytes)
            .sum(),
        blocks: reader.manifest().shards.iter().map(|s| s.blocks).sum(),
    }
}

/// Runs the decode experiment; returns `false` when a baseline was given
/// and the measured throughput regressed beyond tolerance.
pub fn decode(
    datasets: &mut Datasets,
    report: &mut Report,
    json_out: Option<&Path>,
    baseline: Option<&Path>,
) -> bool {
    // LASH_FORCE_CODEC overrides StoreOptions::with_codec everywhere, so
    // under it both corpora would silently get the same codec: the row
    // labeled v3 would measure the forced codec and the baseline gate
    // would fail with a bogus regression. Refuse to produce mislabeled
    // numbers instead.
    if std::env::var(lash_store::FORCE_CODEC_ENV).is_ok_and(|v| !v.trim().is_empty()) {
        eprintln!(
            "error: {} is set — it overrides the per-corpus codec, so the v2-vs-v3 \
             comparison would be meaningless; unset it to run `decode`",
            lash_store::FORCE_CODEC_ENV
        );
        return false;
    }
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let scratch = datasets
        .cache_dir()
        .join(format!("decode-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut table = Table::new(
        "decode",
        "block-decode throughput by payload codec (full batched scan)",
        &["codec", "blocks", "payload MiB", "Melem/s", "speedup"],
    );

    let mut measured: Vec<(&str, Measurement)> = Vec::new();
    for (label, codec) in [
        ("v2", PayloadCodec::Varint),
        ("v3", PayloadCodec::GroupVarint),
    ] {
        let dir = scratch.join(label);
        let opts = StoreOptions::default()
            .with_partitioning(Partitioning::hash(SHARDS))
            .with_sketches(false)
            .with_codec(codec);
        lash_store::convert::write_database(&dir, &vocab, &db, opts).expect("write corpus");
        let reader = CorpusReader::open(&dir).expect("open corpus");
        measured.push((label, measure(&reader)));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let v2 = &measured[0].1;
    let v3 = &measured[1].1;
    let speedup = v3.melems / v2.melems;
    for (label, m) in &measured {
        table.row(vec![
            (*label).to_string(),
            m.blocks.to_string(),
            format!("{:.2}", m.payload_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", m.melems),
            if *label == "v3" {
                format!("{speedup:.2}x")
            } else {
                "1.00x".to_string()
            },
        ]);
    }

    let json = format!(
        "{{\n  \"schema\": \"lash-bench-decode/v1\",\n  \"decode_melems_v2\": {:.2},\n  \
         \"decode_melems_v3\": {:.2},\n  \"speedup_v3_over_v2\": {:.3},\n  \
         \"payload_bytes_v2\": {},\n  \"payload_bytes_v3\": {}\n}}\n",
        v2.melems, v3.melems, speedup, v2.payload_bytes, v3.payload_bytes
    );
    if let Some(dir) = json_out {
        let _ = std::fs::create_dir_all(dir);
        let path = dir.join("BENCH_decode.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    report.add(table);

    match baseline {
        Some(path) => check_baseline(
            path,
            &[
                ("decode_melems_v2", v2.melems),
                ("decode_melems_v3", v3.melems),
            ],
        ),
        None => true,
    }
}
