//! Daemon saturation: sustained client query throughput over the framed
//! TCP protocol while the lifecycle loop ingests, compacts, re-mines and
//! swaps the index underneath the connections.
//!
//! This is the perf-tracking experiment behind CI's
//! `serve-bench-regression` leg: it writes its measurements to
//! `BENCH_serve.json` (uploaded as a build artifact) and, when given
//! `--baseline <json>`, fails the run if serving throughput regressed more
//! than [`super::REGRESSION_TOLERANCE`] against the checked-in numbers.
//! To refresh the baseline after an intentional change (or a runner-class
//! change), copy the artifact over `crates/bench/baselines/BENCH_serve.json`.
//!
//! The run has two phases over one booted daemon:
//!
//! 1. **Measured saturation.** Client threads pipeline a mixed query
//!    workload (top-k, enumerate, exact support of discovered patterns,
//!    hierarchy-aware lookups) with a deep in-flight window, which keeps
//!    the server's batches full — this is the regime the batching worker
//!    pool exists for, and its queries/s is the gated `serve_qps` metric.
//!    The lifecycle is quiescent here on purpose: mining is compute-bound
//!    and on a small CI runner it starves *everything*, so a qps measured
//!    under concurrent mining would track the miner's runtime, not the
//!    serving path under test.
//! 2. **Survival under refresh.** The same client load keeps running while
//!    the main thread drives ingest → compact → re-mine → index → swap
//!    rounds. Nothing is timed; instead every reply must be a success —
//!    one typed error or torn connection fails the experiment outright,
//!    which is the "daemon survives saturation with zero failed requests"
//!    acceptance gate.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use lash_core::{GsmParams, Lash};
use lash_datagen::TextHierarchy;
use lash_index::{Query, QueryReply};
use lash_serve::{AdminReply, AdminRequest, Client, Lifecycle, ServeConfig, Server};

use crate::report::{Report, Table};
use crate::Datasets;

use super::check_baseline;

/// Concurrent client connections in both phases.
const CLIENTS: usize = 4;
/// Requests each client keeps in flight; deep enough to fill the server's
/// default `batch_max` across the client pool.
const PIPELINE: usize = 32;
/// Requests per client per measured pass.
const REQS_PER_CLIENT: usize = 2_500;
/// Measured passes; the reported qps is the best one (same best-of-N
/// convention as the query experiment — scheduler noise on a small runner
/// only ever pushes throughput down).
const MEASURE_ITERS: usize = 4;
/// Sequences seeded into the corpus before the server boots.
const SEED_SEQUENCES: usize = 6_000;
/// Sequences appended per refresh round.
const INGEST_CHUNK: usize = 1_000;
/// Ingest → compact → mine → index → swap rounds driven under load.
const ROUNDS: usize = 2;

/// Runs the serve experiment; returns `false` when a baseline was given
/// and throughput regressed beyond tolerance.
pub fn serve(
    datasets: &mut Datasets,
    report: &mut Report,
    json_out: Option<&Path>,
    baseline: Option<&Path>,
) -> bool {
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let needed = SEED_SEQUENCES + ROUNDS * INGEST_CHUNK;
    assert!(
        db.len() >= needed,
        "bench corpus too small: {} < {needed} sequences",
        db.len()
    );
    let seed = db.truncated(SEED_SEQUENCES);

    let corpus_dir = datasets
        .cache_dir()
        .join(format!("serve-corpus-{}", std::process::id()));
    let index_root = datasets
        .cache_dir()
        .join(format!("serve-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&index_root);
    lash_store::convert::write_database(
        &corpus_dir,
        &vocab,
        &seed,
        lash_store::StoreOptions::default(),
    )
    .expect("seed the serve corpus");

    let config = ServeConfig::default();
    let params = GsmParams::new(25, 1, 4).expect("valid params");
    let mut lifecycle =
        Lifecycle::bootstrap(&corpus_dir, &index_root, Lash::default(), params, &config)
            .expect("bootstrap the lifecycle");
    let server = Server::start_with_health(lifecycle.service(), &config, lifecycle.health())
        .expect("start the server");
    let addr = server.local_addr();

    // The query mix, discovered from the served index itself so every
    // probe is answerable: the whole-index ranking, a lexicographic
    // slice, exact support of real mined patterns, and the
    // hierarchy-aware walk over one of them.
    let service = lifecycle.service();
    let QueryReply::Patterns(top) = service
        .execute(&Query::TopK {
            prefix: vec![],
            k: 20,
        })
        .expect("rank the bootstrap index")
    else {
        panic!("top-k did not answer with patterns");
    };
    assert!(!top.is_empty(), "the bootstrap index must hold patterns");
    let mut mix: Vec<Query> = vec![
        Query::TopK {
            prefix: vec![],
            k: 10,
        },
        Query::Enumerate {
            prefix: vec![],
            limit: Some(5),
        },
        Query::Generalized {
            items: top[0].items.clone(),
        },
    ];
    for hit in &top {
        mix.push(Query::Support {
            items: hit.items.clone(),
        });
    }

    let obs = lash_obs::global();
    let batches_before = obs.counter("serve.batches").get();
    let errors_before = obs.counter("serve.error_replies").get();
    let failed = AtomicU64::new(0);

    // Phase 1 — measured saturation: every client keeps PIPELINE requests
    // in flight, so the worker pool's batches stay full. The lifecycle is
    // idle; this times the serving path alone.
    let requests = (CLIENTS * REQS_PER_CLIENT) as u64;
    let mut serve_qps = 0f64;
    for _ in 0..MEASURE_ITERS {
        let started = Instant::now();
        std::thread::scope(|scope| {
            for _ in 0..CLIENTS {
                scope.spawn(|| {
                    let mut client = Client::connect(addr).expect("connect to the daemon");
                    let mut sent = 0usize;
                    let mut inflight = 0usize;
                    while sent < REQS_PER_CLIENT || inflight > 0 {
                        while inflight < PIPELINE && sent < REQS_PER_CLIENT {
                            client
                                .send(&mix[sent % mix.len()])
                                .expect("send under saturation");
                            sent += 1;
                            inflight += 1;
                        }
                        let resp = client.recv().expect("recv under saturation");
                        inflight -= 1;
                        if let QueryReply::Error(e) = resp.reply {
                            eprintln!("error: typed error under saturation: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        serve_qps = serve_qps.max(requests as f64 / started.elapsed().as_secs_f64());
    }
    let batches = obs.counter("serve.batches").get() - batches_before;

    // Scrape the admin lane right after the measured phase, while the
    // sliding windows still hold it: the daemon's own view of its rate and
    // queueing. Reported beside the wall-clock qps (not gated — windowed
    // numbers depend on how much of the run fits the window).
    let (windowed_qps, queue_wait) = {
        let mut admin = Client::connect(addr).expect("connect to the admin lane");
        let uptime_us = match admin.admin(&AdminRequest::Health) {
            Ok(AdminReply::Health { fields, .. }) => fields
                .iter()
                .find(|(k, _)| k == "uptime_us")
                .map_or(0, |(_, v)| *v),
            _ => 0,
        };
        match admin.admin(&AdminRequest::Metrics) {
            Ok(AdminReply::Metrics { windows, .. }) => {
                let qps = windows
                    .iter()
                    .find(|w| w.name == "query.requests")
                    .map_or(0.0, |w| w.rate_per_sec(uptime_us));
                let wait = windows
                    .iter()
                    .find(|w| w.name == "serve.queue.wait_us")
                    .map(|w| (w.p50, w.p95, w.p99));
                (qps, wait)
            }
            _ => (0.0, None),
        }
    };

    // Phase 2 — survival: the same client load keeps running while the
    // lifecycle ingests, compacts, re-mines and swaps underneath it.
    // Untimed; the contract is simply that nothing fails.
    let done = AtomicBool::new(false);
    let survived = AtomicU64::new(0);
    let mut round_stats = Vec::new();
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            scope.spawn(|| {
                let mut client = Client::connect(addr).expect("reconnect to the daemon");
                let mut i = 0usize;
                while !done.load(Ordering::Relaxed) {
                    match client.query(&mix[i % mix.len()]) {
                        Ok(QueryReply::Error(e)) => {
                            eprintln!("error: typed error during refresh: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {
                            survived.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => {
                            eprintln!("error: transport error during refresh: {e}");
                            failed.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                    i += 1;
                }
            });
        }
        for round in 0..ROUNDS {
            let from = SEED_SEQUENCES + round * INGEST_CHUNK;
            let chunk: Vec<&[lash_core::ItemId]> =
                (from..from + INGEST_CHUNK).map(|i| db.get(i)).collect();
            lifecycle.ingest(chunk).expect("ingest under load");
            let stats = lifecycle.refresh().expect("refresh under load");
            round_stats.push(stats);
        }
        done.store(true, Ordering::Relaxed);
    });
    server.shutdown();

    let failures = failed.load(Ordering::Relaxed);
    let survived = survived.load(Ordering::Relaxed);
    let error_replies = obs.counter("serve.error_replies").get() - errors_before;
    assert_eq!(failures, 0, "saturation clients saw {failures} failures");
    assert_eq!(
        error_replies, 0,
        "the daemon sent {error_replies} error replies to well-formed queries"
    );
    assert!(survived > 0, "the refresh phase served no requests");

    let _ = std::fs::remove_dir_all(&corpus_dir);
    let _ = std::fs::remove_dir_all(&index_root);

    let last = round_stats.last().expect("at least one refresh round ran");
    let mut table = Table::new(
        "serve",
        "daemon saturation: queries/s across concurrent refresh rounds",
        &["metric", "value"],
    );
    table.row(vec![
        "clients × pipeline".into(),
        format!("{CLIENTS} × {PIPELINE}"),
    ]);
    table.row(vec!["measured requests".into(), requests.to_string()]);
    table.row(vec!["queries/s".into(), format!("{serve_qps:.0}")]);
    table.row(vec![
        "requests per batch".into(),
        format!(
            "{:.1}",
            (requests * MEASURE_ITERS as u64) as f64 / (batches.max(1)) as f64
        ),
    ]);
    table.row(vec![
        "windowed queries/s (admin scrape)".into(),
        format!("{windowed_qps:.0}"),
    ]);
    if let Some((p50, p95, p99)) = queue_wait {
        table.row(vec![
            "queue wait p50/p95/p99 (us, windowed)".into(),
            format!("{p50}/{p95}/{p99}"),
        ]);
    }
    table.row(vec!["refresh rounds".into(), round_stats.len().to_string()]);
    table.row(vec![
        "requests served during refresh".into(),
        survived.to_string(),
    ]);
    table.row(vec![
        "corpus after rounds".into(),
        format!("{} sequences", last.sequences),
    ]);
    table.row(vec![
        "patterns after rounds".into(),
        last.patterns.to_string(),
    ]);
    report.add(table);

    let (p50, p95, p99) = queue_wait.unwrap_or((0, 0, 0));
    let json = format!(
        "{{\n  \"schema\": \"lash-bench-serve/v1\",\n  \"serve_qps\": {:.0},\n  \
         \"requests\": {},\n  \"clients\": {},\n  \"refresh_rounds\": {},\n  \
         \"survived_requests\": {},\n  \"failures\": {},\n  \
         \"windowed_qps\": {:.0},\n  \"queue_wait_p50_us\": {},\n  \
         \"queue_wait_p95_us\": {},\n  \"queue_wait_p99_us\": {}\n}}\n",
        serve_qps,
        requests,
        CLIENTS,
        round_stats.len(),
        survived,
        failures,
        windowed_qps,
        p50,
        p95,
        p99
    );
    if let Some(out) = json_out {
        let _ = std::fs::create_dir_all(out);
        let path = out.join("BENCH_serve.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    println!("\n{}", lash_obs::global().render_text());

    match baseline {
        Some(path) => check_baseline(path, &[("serve_qps", serve_qps)]),
        None => true,
    }
}
