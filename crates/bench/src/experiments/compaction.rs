//! Scan throughput vs. generation count, before and after compaction.
//!
//! Incremental ingest (`lash-store`'s segment generations) trades scan
//! locality for cheap appends: every generation adds one segment file per
//! shard, so a G-generation corpus pays G file opens, G segment headers,
//! and G partially-filled trailing blocks per shard scan. This experiment
//! quantifies that tax — full-corpus scan time as the same data is split
//! into ever more generations — and then compacts each corpus down to one
//! generation and re-measures, showing the tax is fully recoverable.

use std::time::Instant;

use lash_store::compact::{self, CompactionConfig};
use lash_store::{CorpusReader, CorpusWriter, IncrementalWriter, Partitioning, StoreOptions};

use crate::report::{Report, Table};
use crate::Datasets;
use lash_datagen::TextHierarchy;

const SHARDS: u32 = 4;
const SCAN_ITERS: u32 = 5;

/// Full-corpus batched scan; returns (seconds per scan, items seen).
fn time_scan(reader: &CorpusReader) -> (f64, u64) {
    let mut items = 0u64;
    let started = Instant::now();
    for _ in 0..SCAN_ITERS {
        items = 0;
        for shard in 0..reader.num_shards() {
            let mut scan = reader.scan_shard(shard).expect("open shard scan");
            while let Some(batch) = scan.next_batch().expect("scan batch") {
                items += batch.arena().len() as u64;
            }
        }
    }
    (started.elapsed().as_secs_f64() / SCAN_ITERS as f64, items)
}

/// Scan throughput vs. generation count, before/after compaction.
pub fn compaction(datasets: &mut Datasets, report: &mut Report) {
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let scratch = datasets
        .cache_dir()
        .join(format!("compaction-scratch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    let mut table = Table::new(
        "compaction",
        "full-scan throughput vs. generation count, before/after compaction",
        &[
            "generations",
            "files/shard",
            "blocks",
            "scan ms",
            "Melem/s",
            "blocks (compacted)",
            "scan ms (compacted)",
            "Melem/s (compacted)",
        ],
    );

    for generations in [1usize, 4, 16, 64] {
        let dir = scratch.join(format!("g{generations}"));
        let opts = StoreOptions::default().with_partitioning(Partitioning::hash(SHARDS));
        // Split the corpus into `generations` equal ingest batches.
        let per = db.len().div_ceil(generations).max(1);
        let mut writer = CorpusWriter::create(&dir, &vocab, opts).expect("create corpus");
        for i in 0..per.min(db.len()) {
            writer.append(db.get(i)).expect("append");
        }
        writer.finish().expect("seal generation 0");
        let mut next = per;
        while next < db.len() {
            let mut incr = IncrementalWriter::open(&dir).expect("open incremental");
            for i in next..(next + per).min(db.len()) {
                incr.append(db.get(i)).expect("append");
            }
            incr.finish().expect("seal generation");
            next += per;
        }

        let reader = CorpusReader::open(&dir).expect("open corpus");
        let files_per_shard = reader.num_generations();
        let blocks: u64 = reader.manifest().shards.iter().map(|s| s.blocks).sum();
        let (secs, items) = time_scan(&reader);
        let melems = items as f64 / secs / 1e6;

        compact::compact(&dir, &CompactionConfig::default().with_max_generations(1))
            .expect("compact");
        let compacted = CorpusReader::open(&dir).expect("reopen compacted");
        assert_eq!(compacted.len(), db.len() as u64, "compaction lost data");
        let blocks_after: u64 = compacted.manifest().shards.iter().map(|s| s.blocks).sum();
        let (secs_after, items_after) = time_scan(&compacted);
        assert_eq!(items, items_after, "compaction changed scan contents");
        let melems_after = items_after as f64 / secs_after / 1e6;

        table.row(vec![
            generations.to_string(),
            files_per_shard.to_string(),
            blocks.to_string(),
            format!("{:.2}", secs * 1e3),
            format!("{melems:.1}"),
            blocks_after.to_string(),
            format!("{:.2}", secs_after * 1e3),
            format!("{melems_after:.1}"),
        ]);
    }
    let _ = std::fs::remove_dir_all(&scratch);
    report.add(table);
}
