//! Fig. 6: scalability — data scaling, strong scaling, weak scaling on the
//! NYT-CLP dataset (σ=100, γ=0, λ=5).
//!
//! The paper varies cluster machines (2/4/8); here worker threads stand in
//! for machines, so wall-clock speedups saturate at the host's core count —
//! the harness prints the host parallelism alongside.

use lash_core::{GsmParams, LashConfig, SequenceDatabase, Vocabulary};
use lash_datagen::TextHierarchy;

use crate::datasets::Datasets;
use crate::report::{secs, Report, Table};

use super::{cluster, run_lash};

fn params() -> GsmParams {
    GsmParams::ngram(100, 5).expect("valid params")
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn dataset(datasets: &mut Datasets) -> (Vocabulary, SequenceDatabase) {
    datasets.nyt_dataset(TextHierarchy::CLP)
}

/// Fig. 6(a): data scaling — 25/50/75/100% of the input.
///
/// Paper shape: map and reduce times grow linearly with data size.
pub fn fig6a(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig6a",
        "Data scaling (s): NYT-CLP, σ=100, γ=0, λ=5",
        &["data", "map", "shuffle", "reduce", "total", "#patterns"],
    );
    let (vocab, db) = dataset(datasets);
    for pct in [25usize, 50, 75, 100] {
        let part = db.truncated(db.len() * pct / 100);
        let result = run_lash(&part, &vocab, &params(), LashConfig::new(cluster()));
        table.row(vec![
            format!("{pct}%"),
            secs(result.mine_metrics.map_time),
            secs(result.mine_metrics.shuffle_time),
            secs(result.mine_metrics.reduce_time),
            secs(result.total_time()),
            result.pattern_set().len().to_string(),
        ]);
    }
    report.add(table);
}

/// Fig. 6(b): strong scaling — fixed data, 1/2/4/8 workers.
///
/// Paper shape: near-linear speedup in both map and reduce.
pub fn fig6b(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig6b",
        &format!(
            "Strong scaling (s): NYT-CLP, fixed data, workers as machines \
             (host has {} threads — speedups saturate there)",
            host_threads()
        ),
        &["workers", "map", "shuffle", "reduce", "total", "speedup"],
    );
    let (vocab, db) = dataset(datasets);
    let mut base: Option<f64> = None;
    for workers in [1usize, 2, 4, 8] {
        let result = run_lash(
            &db,
            &vocab,
            &params(),
            LashConfig::new(cluster().with_parallelism(workers)),
        );
        let total = result.total_time().as_secs_f64();
        let baseline = *base.get_or_insert(total);
        table.row(vec![
            workers.to_string(),
            secs(result.mine_metrics.map_time),
            secs(result.mine_metrics.shuffle_time),
            secs(result.mine_metrics.reduce_time),
            secs(result.total_time()),
            format!("{:.2}x", baseline / total.max(1e-9)),
        ]);
    }
    report.add(table);
}

/// Fig. 6(c): weak scaling — data grows with workers: (2, 25%), (4, 50%),
/// (8, 100%).
///
/// Paper shape: total time stays roughly constant, rising slightly because
/// output size grows super-linearly with data.
pub fn fig6c(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "fig6c",
        &format!(
            "Weak scaling (s): NYT-CLP, data grows with workers (host has {} threads)",
            host_threads()
        ),
        &[
            "workers(data)",
            "map",
            "shuffle",
            "reduce",
            "total",
            "#patterns",
        ],
    );
    let (vocab, db) = dataset(datasets);
    for (workers, pct) in [(2usize, 25usize), (4, 50), (8, 100)] {
        let part = db.truncated(db.len() * pct / 100);
        let result = run_lash(
            &part,
            &vocab,
            &params(),
            LashConfig::new(cluster().with_parallelism(workers)),
        );
        table.row(vec![
            format!("{workers}({pct}%)"),
            secs(result.mine_metrics.map_time),
            secs(result.mine_metrics.shuffle_time),
            secs(result.mine_metrics.reduce_time),
            secs(result.total_time()),
            result.pattern_set().len().to_string(),
        ]);
    }
    report.add(table);
}
