//! Tables 1–3: dataset characteristics, hierarchy characteristics, and
//! output statistics.

use lash_core::distributed::mgfsm::MgFsm;
use lash_core::stats::output_stats;
use lash_core::vocabulary::ItemId;
use lash_core::{GsmParams, LashConfig, LashResult, SequenceDatabase, Vocabulary};
use lash_datagen::describe::{DatasetSummary, HierarchySummary};
use lash_datagen::{ProductHierarchy, TextHierarchy};

use crate::datasets::Datasets;
use crate::report::{Report, Table};

use super::{cluster, run_lash};

/// Table 1: dataset characteristics of the synthetic NYT and AMZN corpora.
pub fn table1(datasets: &mut Datasets, report: &mut Report) {
    let (_, nyt_db) = datasets.nyt_dataset(TextHierarchy::CLP);
    let (_, amzn_db) = datasets.amzn_dataset(ProductHierarchy::H8);
    let rows = [
        DatasetSummary::compute("NYT", &nyt_db),
        DatasetSummary::compute("AMZN", &amzn_db),
    ];
    let mut table = Table::new(
        "table1",
        "Dataset characteristics (synthetic stand-ins)",
        &[
            "dataset",
            "sequences",
            "avg len",
            "max len",
            "total items",
            "unique items",
        ],
    );
    for r in rows {
        table.row(vec![
            r.name,
            r.sequences.to_string(),
            format!("{:.1}", r.avg_length),
            r.max_length.to_string(),
            r.total_items.to_string(),
            r.unique_items.to_string(),
        ]);
    }
    report.add(table);
}

/// Table 2: hierarchy characteristics of all eight hierarchy variants.
pub fn table2(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "table2",
        "Hierarchy characteristics",
        &[
            "hierarchy",
            "total",
            "leaves",
            "roots",
            "intermediate",
            "levels",
            "avg fan-out",
            "max fan-out",
        ],
    );
    for h in TextHierarchy::all() {
        let vocab = datasets.nyt_reader(h).vocabulary().clone();
        push_row(&mut table, &format!("NYT-{}", h.name()), &vocab);
    }
    for h in ProductHierarchy::all() {
        let vocab = datasets.amzn_reader(h).vocabulary().clone();
        push_row(&mut table, &format!("AMZN-{}", h.name()), &vocab);
    }
    report.add(table);
}

fn push_row(table: &mut Table, name: &str, vocab: &Vocabulary) {
    let s = HierarchySummary::compute(name, vocab).stats;
    table.row(vec![
        name.to_owned(),
        s.total_items.to_string(),
        s.leaf_items.to_string(),
        s.root_items.to_string(),
        s.intermediate_items.to_string(),
        s.levels.to_string(),
        format!("{:.1}", s.avg_fanout),
        s.max_fanout.to_string(),
    ]);
}

/// Table 3: output statistics — % non-trivial / closed / maximal.
///
/// Paper shape: >70% (NYT) and >95% (AMZN) of mined sequences are
/// non-trivial; deeper hierarchies and lower supports increase redundancy
/// (lower closed/maximal percentages) but leave many patterns non-redundant.
pub fn table3(datasets: &mut Datasets, report: &mut Report) {
    let mut table = Table::new(
        "table3",
        "Output statistics (% of mined sequences)",
        &[
            "setting",
            "#patterns",
            "non-trivial %",
            "closed %",
            "maximal %",
        ],
    );

    for h in [TextHierarchy::P, TextHierarchy::LP, TextHierarchy::CLP] {
        let (vocab, db) = datasets.nyt_dataset(h);
        let params = GsmParams::ngram(100, 5).expect("valid params");
        add_stats_row(
            &mut table,
            &format!("NYT-{}", h.name()),
            &db,
            &vocab,
            &params,
        );
    }

    // The paper's σ ∈ {10000, 1000, 100} over 6.6M sessions maps to
    // {625, 125, 25} on the ~300× smaller synthetic corpus.
    let (vocab, db) = datasets.amzn_dataset(ProductHierarchy::H8);
    for sigma in [625u64, 125, 25] {
        let params = GsmParams::new(sigma, 1, 5).expect("valid params");
        add_stats_row(
            &mut table,
            &format!("AMZN-h8 σ={sigma}"),
            &db,
            &vocab,
            &params,
        );
    }
    report.add(table);
}

fn add_stats_row(
    table: &mut Table,
    label: &str,
    db: &SequenceDatabase,
    vocab: &Vocabulary,
    params: &GsmParams,
) {
    let gsm = run_lash(db, vocab, params, LashConfig::new(cluster()));
    let flat = MgFsm::new(cluster())
        .mine(db, vocab, params)
        .expect("flat run");
    let gsm_items = decode_all(&gsm);
    let flat_items = decode_all(&flat);
    let stats = output_stats(
        &gsm_items,
        gsm.pattern_set(),
        &flat_items,
        gsm.context().space(),
        vocab,
    );
    table.row(vec![
        label.to_owned(),
        stats.total.to_string(),
        format!("{:.2}", stats.non_trivial_pct),
        format!("{:.2}", stats.closed_pct),
        format!("{:.2}", stats.maximal_pct),
    ]);
}

fn decode_all(result: &LashResult) -> Vec<Vec<ItemId>> {
    result.patterns().iter().map(|p| p.items.clone()).collect()
}
