//! One module per figure/table group of the paper's evaluation (Sec. 6).

pub mod ablation;
pub mod compaction;
pub mod decode;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod query;
pub mod scan;
pub mod serve;
pub mod tables;

use lash_core::{GsmParams, Lash, LashConfig, LashResult, SequenceDatabase, Vocabulary};
use lash_mapreduce::EngineConfig;

/// The default cluster configuration for experiments: all host threads, a
/// fixed number of reduce partitions for run-to-run comparability.
pub fn cluster() -> EngineConfig {
    EngineConfig::default()
        .with_reduce_tasks(16)
        .with_split_size(1024)
}

/// Runs LASH with the given configuration and returns the result.
pub fn run_lash(
    db: &SequenceDatabase,
    vocab: &Vocabulary,
    params: &GsmParams,
    config: LashConfig,
) -> LashResult {
    Lash::new(config)
        .mine(db, vocab, params)
        .expect("experiment run failed")
}

/// A parameter setting label like "P(1000,0,3)".
pub fn setting_label(hierarchy: &str, params: &GsmParams) -> String {
    format!(
        "{hierarchy}({},{},{})",
        params.sigma, params.gamma, params.lambda
    )
}

/// Allowed relative throughput drop against a checked-in baseline before a
/// perf-gated experiment fails the run (the CI gates' contract: >15%
/// regression is a failure).
pub const REGRESSION_TOLERANCE: f64 = 0.15;

/// Extracts `"key": <number>` from a flat JSON object — enough for the
/// BENCH_*.json files the gated experiments write themselves (the repo is
/// offline; no JSON dep).
pub fn json_number(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let rest = &json[json.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Checks measured throughputs against a baseline JSON file; returns
/// `false` (and prints the offending keys) when any metric fell more than
/// [`REGRESSION_TOLERANCE`] below its baseline.
pub fn check_baseline(path: &std::path::Path, measured: &[(&str, f64)]) -> bool {
    let base = match std::fs::read_to_string(path) {
        Ok(base) => base,
        Err(e) => {
            eprintln!("error: cannot read baseline {}: {e}", path.display());
            return false;
        }
    };
    let mut ok = true;
    for (key, current) in measured {
        let Some(expected) = json_number(&base, key) else {
            eprintln!("error: baseline {} lacks key {key}", path.display());
            ok = false;
            continue;
        };
        let floor = expected * (1.0 - REGRESSION_TOLERANCE);
        if *current < floor {
            eprintln!(
                "error: {key} regressed: {current:.1} < {floor:.1} (baseline {expected:.1} − \
                 {:.0}% tolerance)",
                REGRESSION_TOLERANCE * 100.0
            );
            ok = false;
        } else {
            println!("baseline check: {key} {current:.1} >= {floor:.1} — ok");
        }
    }
    ok
}

#[cfg(test)]
mod tests {
    use super::json_number;

    #[test]
    fn flat_json_numbers_parse() {
        let json = "{\n  \"a\": 12.5,\n  \"b_c\": 3,\n  \"neg\": -1.25e2\n}";
        assert_eq!(json_number(json, "a"), Some(12.5));
        assert_eq!(json_number(json, "b_c"), Some(3.0));
        assert_eq!(json_number(json, "neg"), Some(-125.0));
        assert_eq!(json_number(json, "missing"), None);
    }
}
