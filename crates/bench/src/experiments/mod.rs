//! One module per figure/table group of the paper's evaluation (Sec. 6).

pub mod ablation;
pub mod compaction;
pub mod decode;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod tables;

use lash_core::{GsmParams, Lash, LashConfig, LashResult, SequenceDatabase, Vocabulary};
use lash_mapreduce::ClusterConfig;

/// The default cluster configuration for experiments: all host threads, a
/// fixed number of reduce partitions for run-to-run comparability.
pub fn cluster() -> ClusterConfig {
    ClusterConfig::default()
        .with_reduce_tasks(16)
        .with_split_size(1024)
}

/// Runs LASH with the given configuration and returns the result.
pub fn run_lash(
    db: &SequenceDatabase,
    vocab: &Vocabulary,
    params: &GsmParams,
    config: LashConfig,
) -> LashResult {
    Lash::new(config)
        .mine(db, vocab, params)
        .expect("experiment run failed")
}

/// A parameter setting label like "P(1000,0,3)".
pub fn setting_label(hierarchy: &str, params: &GsmParams) -> String {
    format!(
        "{hierarchy}({},{},{})",
        params.sigma, params.gamma, params.lambda
    )
}
