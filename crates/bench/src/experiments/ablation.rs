//! Ablations of LASH's design choices (DESIGN.md §5): partition rewrites,
//! combiner aggregation, and the PSM right-expansion index.

use lash_core::rewrite::RewriteLevel;
use lash_core::{GsmParams, LashConfig, MinerKind};
use lash_datagen::TextHierarchy;

use crate::datasets::Datasets;
use crate::report::{mib, secs, Report, Table};

use super::{cluster, run_lash};

/// Runs all three ablations on NYT-CLP (σ=100, γ=0, λ=5).
pub fn ablation(datasets: &mut Datasets, report: &mut Report) {
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::CLP);
    let params = GsmParams::ngram(100, 5).expect("valid params");

    // 1. Rewrite levels: how much do the Sec. 4 rewrites save?
    let mut rewrites = Table::new(
        "ablation_rewrites",
        "Partition-construction rewrites: shuffle volume and time, NYT-CLP(100,0,5)",
        &[
            "rewrite level",
            "shuffled MiB",
            "map (s)",
            "reduce (s)",
            "total (s)",
        ],
    );
    let mut reference = None;
    for (label, level) in [
        ("none (P_w(T)=T)", RewriteLevel::None),
        ("w-generalization only", RewriteLevel::GeneralizeOnly),
        ("full (LASH)", RewriteLevel::Full),
    ] {
        let result = run_lash(
            &db,
            &vocab,
            &params,
            LashConfig::new(cluster()).with_rewrite_level(level),
        );
        match &reference {
            None => reference = Some(result.pattern_set().clone()),
            Some(r) => assert_eq!(
                r,
                result.pattern_set(),
                "rewrite ablation must not change output"
            ),
        }
        rewrites.row(vec![
            label.to_owned(),
            mib(result.mine_metrics.counters.map_output_bytes),
            secs(result.mine_metrics.map_time),
            secs(result.mine_metrics.reduce_time),
            secs(result.total_time()),
        ]);
    }
    report.add(rewrites);

    // 2. Combiner aggregation of duplicate rewrites (Sec. 4.4).
    let mut aggregation = Table::new(
        "ablation_aggregation",
        "Combiner aggregation of duplicate rewrites, NYT-CLP(100,0,5)",
        &[
            "aggregation",
            "shuffled MiB",
            "shuffle (s)",
            "reduce (s)",
            "total (s)",
        ],
    );
    for (label, on) in [("off", false), ("on (LASH)", true)] {
        let result = run_lash(
            &db,
            &vocab,
            &params,
            LashConfig::new(cluster()).with_aggregation(on),
        );
        aggregation.row(vec![
            label.to_owned(),
            mib(result.mine_metrics.counters.map_output_bytes),
            secs(result.mine_metrics.shuffle_time),
            secs(result.mine_metrics.reduce_time),
            secs(result.total_time()),
        ]);
    }
    report.add(aggregation);

    // 3. The PSM right-expansion index (Sec. 5.2).
    let mut index = Table::new(
        "ablation_psm_index",
        "PSM right-expansion index, NYT-CLP(100,0,5)",
        &["miner", "candidates", "cand/output", "reduce (s)"],
    );
    for miner in [MinerKind::Psm, MinerKind::PsmIndexed] {
        let result = run_lash(
            &db,
            &vocab,
            &params,
            LashConfig::new(cluster()).with_miner(miner),
        );
        index.row(vec![
            miner.name().to_owned(),
            result.miner_stats.candidates.to_string(),
            format!(
                "{:.1}",
                result.miner_stats.candidates_per_output().unwrap_or(0.0)
            ),
            secs(result.mine_metrics.reduce_time),
        ]);
    }
    report.add(index);
}
