//! Pattern-index query throughput: exact-support lookups and top-k
//! searches against the index built from mining the NYT-like corpus.
//!
//! This is the perf-tracking experiment behind CI's
//! `query-bench-regression` leg: it writes its measurements to
//! `BENCH_query.json` (uploaded as a build artifact) and, when given
//! `--baseline <json>`, fails the run if query throughput regressed more
//! than [`super::REGRESSION_TOLERANCE`] against the checked-in numbers.
//! To refresh the baseline after an intentional change (or a runner-class
//! change), copy the artifact over `crates/bench/baselines/BENCH_query.json`.
//!
//! The query mix is built from the mined pattern set itself: every
//! lookup round probes each mined pattern (a hit) plus a derived
//! near-miss (the pattern with one item appended), so both the found and
//! not-found walk are on the measured path. Top-k rounds alternate the
//! whole-index ranking with per-first-item prefix rankings — the
//! max-descendant-frequency pruning path.

use std::path::Path;
use std::time::Instant;

use lash_core::pattern::Pattern;
use lash_core::{GsmParams, ItemId, Lash};
use lash_datagen::TextHierarchy;
use lash_index::{write_patterns, PatternIndexReader, Query, QueryService};

use crate::report::{Report, Table};
use crate::Datasets;

use super::check_baseline;

const MEASURE_ITERS: u32 = 5;
const TOP_K: usize = 10;

/// Best-of-N wall-clock throughput of `queries` query executions.
fn measure(iters: u32, queries: u64, mut pass: impl FnMut() -> u64) -> (f64, u64) {
    let mut best = f64::MAX;
    let mut checksum = 0u64;
    for _ in 0..iters {
        let started = Instant::now();
        checksum = pass();
        best = best.min(started.elapsed().as_secs_f64());
    }
    (queries as f64 / best, checksum)
}

/// Runs the query experiment; returns `false` when a baseline was given
/// and throughput regressed beyond tolerance.
pub fn query(
    datasets: &mut Datasets,
    report: &mut Report,
    json_out: Option<&Path>,
    baseline: Option<&Path>,
) -> bool {
    let (vocab, db) = datasets.nyt_dataset(TextHierarchy::LP);
    let params = GsmParams::new(25, 1, 5).expect("valid params");
    let result = Lash::default()
        .mine(&db, &vocab, &params)
        .expect("mine the bench corpus");
    let patterns: Vec<Pattern> = result.patterns().to_vec();
    assert!(
        !patterns.is_empty(),
        "the bench corpus must produce patterns"
    );

    let dir = datasets
        .cache_dir()
        .join(format!("query-index-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let summary = write_patterns(&dir, &vocab, &patterns).expect("build index");
    let reader = PatternIndexReader::open(&dir).expect("open index");

    // Exact lookups: every mined pattern (hit) and a near-miss variant.
    let mut probes: Vec<(Vec<ItemId>, bool)> = Vec::with_capacity(patterns.len() * 2);
    for p in &patterns {
        probes.push((p.items.clone(), true));
        let mut miss = p.items.clone();
        miss.push(p.items[0]);
        probes.push((miss, false));
    }
    let (lookups_per_sec, hits) = measure(MEASURE_ITERS, probes.len() as u64, || {
        let mut hits = 0u64;
        for (items, _) in &probes {
            if reader.support(items).expect("query intact index").is_some() {
                hits += 1;
            }
        }
        hits
    });
    // Every hit probe must hit; misses may collide with real patterns but
    // at least the hits keep the measurement honest.
    assert!(hits >= patterns.len() as u64, "lost hits: {hits}");

    // Top-k: the whole-index ranking plus one ranking per distinct first
    // item (the subtree-pruning path).
    let mut prefixes: Vec<Vec<ItemId>> = vec![Vec::new()];
    let mut seen = std::collections::BTreeSet::new();
    for p in &patterns {
        if seen.insert(p.items[0]) {
            prefixes.push(vec![p.items[0]]);
        }
    }
    let (topk_per_sec, ranked) = measure(MEASURE_ITERS, prefixes.len() as u64, || {
        let mut ranked = 0u64;
        for prefix in &prefixes {
            ranked += reader
                .top_k(prefix, TOP_K)
                .expect("query intact index")
                .len() as u64;
        }
        ranked
    });
    assert!(ranked > 0, "top-k returned nothing");

    // The same query mix once more through the instrumented serving path,
    // so per-query-type latency histograms (`query.*_us`) land in the
    // registry and, with `LASH_OBS_JSONL` set, the run leaves a parseable
    // event stream. Kept off the measured loops above: the regression gate
    // tracks the raw reader, not the service wrapper.
    // A zero threshold on the serving span promotes every request to the
    // slow-op log, demonstrating the promotion path end to end: the
    // `obs.slow_ops` delta below must match the request count.
    let obs_registry = lash_obs::global();
    obs_registry.set_slow_threshold("query.request", Some(0));
    let slow_ops_before = obs_registry.counter("obs.slow_ops").get();
    let service = QueryService::new(PatternIndexReader::open(&dir).expect("reopen index"));
    for (items, _) in &probes {
        service
            .execute(&Query::Support {
                items: items.clone(),
            })
            .expect("service support");
    }
    for prefix in &prefixes {
        service
            .execute(&Query::TopK {
                prefix: prefix.clone(),
                k: TOP_K,
            })
            .expect("service top-k");
        service
            .execute(&Query::Enumerate {
                prefix: prefix.clone(),
                limit: Some(5),
            })
            .expect("service enumerate");
    }
    for p in patterns.iter().take(50) {
        service
            .execute(&Query::Generalized {
                items: p.items.clone(),
            })
            .expect("service generalized");
    }
    let slow_ops = obs_registry.counter("obs.slow_ops").get() - slow_ops_before;
    obs_registry.set_slow_threshold("query.request", None);
    let _ = std::fs::remove_dir_all(&dir);

    // Sketch-prune effectiveness, read off the `store.scan.blocks_*`
    // counters every shard scan publishes when dropped. Zipf-headed text
    // cannot prune at block granularity — the few head lemmas cover >10%
    // of tokens, so every 64 KiB block of the cached corpus names a
    // frequent item at any σ that keeps the frequent set non-empty. The
    // probe corpus therefore uses short sequences over a flat lemma
    // distribution and small blocks: the frequent set is a thin slice of
    // the vocabulary, and a hierarchy-ignoring mine skips every block
    // whose sketch misses it without decoding the payload.
    let (pvocab, pdb) = lash_datagen::TextCorpus::generate(&lash_datagen::TextConfig {
        sentences: 30_000,
        lemmas: 2_000,
        avg_sentence_len: 4.0,
        zipf_exponent: 0.0,
        ..lash_datagen::TextConfig::default()
    })
    .dataset(TextHierarchy::LP);
    let prune_dir = datasets
        .cache_dir()
        .join(format!("prune-probe-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&prune_dir);
    lash_store::convert::write_database(
        &prune_dir,
        &pvocab,
        &pdb,
        lash_store::StoreOptions::default().with_block_budget(64),
    )
    .expect("write prune probe corpus");
    let probe = lash_store::CorpusReader::open(&prune_dir).expect("open prune probe corpus");
    let obs = lash_obs::global();
    let decoded_before = obs.counter("store.scan.blocks_decoded").get();
    let pruned_before = obs.counter("store.scan.blocks_pruned").get();
    let prune_params = GsmParams::new(75, 0, 2).expect("valid params");
    probe
        .mine(
            &Lash::new(lash_core::LashConfig::default().with_hierarchy(false)),
            &prune_params,
        )
        .expect("mine the prune probe");
    let decoded = obs.counter("store.scan.blocks_decoded").get() - decoded_before;
    let pruned = obs.counter("store.scan.blocks_pruned").get() - pruned_before;
    let _ = std::fs::remove_dir_all(&prune_dir);
    let scanned = decoded + pruned;
    let prune_rate = if scanned == 0 {
        0.0
    } else {
        pruned as f64 / scanned as f64
    };

    let mut table = Table::new(
        "query",
        "pattern-index query throughput (NYT-like corpus)",
        &["metric", "value"],
    );
    table.row(vec!["patterns".into(), summary.num_patterns.to_string()]);
    table.row(vec!["trie nodes".into(), summary.num_nodes.to_string()]);
    table.row(vec![
        "arena KiB".into(),
        format!("{:.1}", summary.arena_bytes as f64 / 1024.0),
    ]);
    table.row(vec![
        "exact lookups/s".into(),
        format!("{:.0}", lookups_per_sec),
    ]);
    table.row(vec![
        format!("top-{TOP_K}/s"),
        format!("{:.0}", topk_per_sec),
    ]);
    table.row(vec![
        "sketch-pruned blocks (probe mine)".into(),
        format!("{pruned} of {scanned} ({:.0}%)", prune_rate * 100.0),
    ]);
    table.row(vec![
        "slow-ops promoted (serving pass)".into(),
        slow_ops.to_string(),
    ]);
    report.add(table);

    let json = format!(
        "{{\n  \"schema\": \"lash-bench-query/v1\",\n  \"lookups_per_sec\": {:.0},\n  \
         \"topk_per_sec\": {:.0},\n  \"patterns\": {},\n  \"trie_nodes\": {},\n  \
         \"arena_bytes\": {}\n}}\n",
        lookups_per_sec, topk_per_sec, summary.num_patterns, summary.num_nodes, summary.arena_bytes
    );
    if let Some(out) = json_out {
        let _ = std::fs::create_dir_all(out);
        let path = out.join("BENCH_query.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    // The end-of-run registry dump: per-query-type latency quantiles from
    // the instrumented pass above, the prune counters, and whatever else
    // the run touched.
    println!("\n{}", lash_obs::global().render_text());

    match baseline {
        Some(path) => check_baseline(
            path,
            &[
                ("lookups_per_sec", lookups_per_sec),
                ("topk_per_sec", topk_per_sec),
            ],
        ),
        None => true,
    }
}
