//! Result tables: pretty-printed to stdout and written as CSV under
//! `bench_results/`.

use std::fmt::Write as _;
use std::path::PathBuf;

/// One result table (a figure series or a paper table).
#[derive(Debug, Clone)]
pub struct Table {
    /// Table identifier, e.g. "fig4a".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of stringified cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Table {
        Table {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Collects tables, printing each and optionally persisting CSVs.
#[derive(Debug)]
pub struct Report {
    out_dir: Option<PathBuf>,
    /// All tables produced so far.
    pub tables: Vec<Table>,
}

impl Report {
    /// A report that writes CSVs into `dir` (created on demand).
    pub fn new(dir: Option<PathBuf>) -> Report {
        Report {
            out_dir: dir,
            tables: Vec::new(),
        }
    }

    /// Prints and records a table; writes `<id>.csv` when an output directory
    /// is configured.
    pub fn add(&mut self, table: Table) {
        println!("{}", table.render());
        if let Some(dir) = &self.out_dir {
            if std::fs::create_dir_all(dir).is_ok() {
                let path = dir.join(format!("{}.csv", table.id));
                if let Err(e) = std::fs::write(&path, table.to_csv()) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
        }
        self.tables.push(table);
    }
}

/// Formats a `Duration` in seconds with millisecond resolution.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count in MiB.
pub fn mib(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_and_escapes_csv() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["1".into(), "x,y".into()]);
        let rendered = t.render();
        assert!(rendered.contains("demo"));
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn row_arity_is_checked() {
        let mut t = Table::new("t", "demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn report_collects_tables() {
        let mut r = Report::new(None);
        r.add(Table::new("x", "t", &["c"]));
        assert_eq!(r.tables.len(), 1);
    }

    #[test]
    fn format_helpers() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(mib(3 * 1024 * 1024), "3.00");
    }
}
