//! # lash-bench
//!
//! The experiment harness that regenerates **every table and figure** of the
//! LASH paper's evaluation (Sec. 6) on the synthetic stand-in corpora of
//! `lash-datagen` — see `DESIGN.md` for the per-experiment index and
//! `EXPERIMENTS.md` for measured results.
//!
//! The `experiments` binary exposes one subcommand per table/figure
//! (`table1`, `fig4a`, …, `fig6c`, `ablation`) plus `all`; `--scale F`
//! multiplies dataset sizes.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod report;

pub use datasets::{amzn, nyt, Datasets};
pub use report::{Report, Table};
