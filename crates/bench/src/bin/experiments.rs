//! The experiment harness: regenerates every table and figure of the LASH
//! paper's evaluation on the synthetic stand-in corpora.
//!
//! ```text
//! experiments <subcommand>... [--scale F] [--out DIR]
//!
//! subcommands:
//!   table1 table2 table3
//!   fig4a fig4b fig4c fig4d fig4e
//!   fig5a fig5b fig5c fig5d fig5e fig5f
//!   fig6a fig6b fig6c
//!   ablation
//!   all          run everything
//!
//! options:
//!   --scale F    dataset scale factor (default 1.0 ≈ 20k sequences)
//!   --out DIR    write CSVs (default bench_results/)
//!   --no-csv     do not write CSVs
//! ```

use std::collections::BTreeSet;
use std::path::PathBuf;

use lash_bench::experiments::{
    ablation, compaction, decode, fig4, fig5, fig6, query, scan, serve, tables,
};
use lash_bench::{Datasets, Report};

fn main() {
    let mut args = std::env::args().skip(1);
    let mut commands: BTreeSet<String> = BTreeSet::new();
    let mut scale = 1.0f64;
    let mut out: Option<PathBuf> = Some(PathBuf::from("bench_results"));
    let mut baseline: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("--scale expects a number"));
            }
            "--out" => {
                out = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| die("--out expects a path")),
                ));
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(
                    args.next()
                        .unwrap_or_else(|| die("--baseline expects a path")),
                ));
            }
            "--no-csv" => out = None,
            "--help" | "-h" => {
                print!("{}", HELP);
                return;
            }
            cmd if !cmd.starts_with('-') => {
                commands.insert(cmd.to_owned());
            }
            other => die(&format!("unknown option {other}")),
        }
    }
    if commands.is_empty() {
        print!("{}", HELP);
        return;
    }
    if commands.remove("all") {
        for c in ALL {
            commands.insert((*c).to_owned());
        }
    }

    let started = std::time::Instant::now();
    let mut datasets = Datasets::new(scale);
    let mut report = Report::new(out.clone());
    let mut bench_ok = true;
    println!(
        "LASH experiment harness — scale {scale}, host threads {}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    // fig4a/fig4b and fig4c/fig4d and fig5c/fig5d share runs; dedupe.
    let mut ran: BTreeSet<&str> = BTreeSet::new();
    for cmd in &commands {
        let run_once = |ran: &mut BTreeSet<&str>, key: &'static str| -> bool { ran.insert(key) };
        match cmd.as_str() {
            "table1" => tables::table1(&mut datasets, &mut report),
            "table2" => tables::table2(&mut datasets, &mut report),
            "table3" => tables::table3(&mut datasets, &mut report),
            "fig4a" | "fig4b" => {
                if run_once(&mut ran, "fig4ab") {
                    fig4::fig4ab(&mut datasets, &mut report);
                }
            }
            "fig4c" | "fig4d" => {
                if run_once(&mut ran, "fig4cd") {
                    fig4::fig4cd(&mut datasets, &mut report);
                }
            }
            "fig4e" => fig4::fig4e(&mut datasets, &mut report),
            "fig5a" => fig5::fig5a(&mut datasets, &mut report),
            "fig5b" => fig5::fig5b(&mut datasets, &mut report),
            "fig5c" | "fig5d" => {
                if run_once(&mut ran, "fig5cd") {
                    fig5::fig5cd(&mut datasets, &mut report);
                }
            }
            "fig5e" => fig5::fig5e(&mut datasets, &mut report),
            "fig5f" => fig5::fig5f(&mut datasets, &mut report),
            "fig6a" => fig6::fig6a(&mut datasets, &mut report),
            "fig6b" => fig6::fig6b(&mut datasets, &mut report),
            "fig6c" => fig6::fig6c(&mut datasets, &mut report),
            "ablation" => ablation::ablation(&mut datasets, &mut report),
            "compaction" => compaction::compaction(&mut datasets, &mut report),
            "decode" => {
                bench_ok &= decode::decode(
                    &mut datasets,
                    &mut report,
                    out.as_deref(),
                    baseline.as_deref(),
                );
            }
            "query" => {
                bench_ok &= query::query(
                    &mut datasets,
                    &mut report,
                    out.as_deref(),
                    baseline.as_deref(),
                );
            }
            "scan" => {
                bench_ok &= scan::scan(
                    &mut datasets,
                    &mut report,
                    out.as_deref(),
                    baseline.as_deref(),
                );
            }
            "serve" => {
                bench_ok &= serve::serve(
                    &mut datasets,
                    &mut report,
                    out.as_deref(),
                    baseline.as_deref(),
                );
            }
            other => die(&format!("unknown subcommand {other}; see --help")),
        }
    }
    println!(
        "done: {} table(s) in {:.1}s",
        report.tables.len(),
        started.elapsed().as_secs_f64()
    );
    if !bench_ok {
        eprintln!("error: benchmark regression check failed");
        std::process::exit(1);
    }
}

const ALL: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "fig4a",
    "fig4c",
    "fig4e",
    "fig5a",
    "fig5b",
    "fig5c",
    "fig5e",
    "fig5f",
    "fig6a",
    "fig6b",
    "fig6c",
    "ablation",
    "compaction",
    "decode",
    "query",
    "scan",
    "serve",
];

const HELP: &str = "\
LASH experiment harness — regenerates every table and figure of the paper.

usage: experiments <subcommand>... [--scale F] [--out DIR] [--no-csv]

subcommands:
  table1 table2 table3                       dataset / hierarchy / output stats
  fig4a fig4b                                naive vs semi-naive vs LASH (time, bytes)
  fig4c fig4d                                local miners (time, search space)
  fig4e                                      MG-FSM vs LASH without hierarchies
  fig5a fig5b fig5c fig5d                    effect of sigma / gamma / lambda
  fig5e fig5f                                effect of hierarchies
  fig6a fig6b fig6c                          data / strong / weak scaling
  ablation                                   rewrites, aggregation, PSM index
  compaction                                 scan throughput vs. generation count
  decode                                     block-decode throughput by payload codec
                                             (writes BENCH_decode.json to --out)
  query                                      pattern-index query throughput
                                             (writes BENCH_query.json to --out)
  scan                                       shard-scan throughput, mmap vs buffered
                                             (writes BENCH_scan.json to --out)
  serve                                      daemon saturation over the TCP protocol
                                             (writes BENCH_serve.json to --out)
  all                                        everything

options:
  --scale F         dataset scale factor (default 1.0, about 20k sequences)
  --out DIR         CSV output directory (default bench_results/)
  --baseline FILE   compare `decode`/`query`/`scan`/`serve` against a baseline BENCH_*.json
                    and fail on >15% throughput regression (the CI bench gates)
  --no-csv          disable CSV output
";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
