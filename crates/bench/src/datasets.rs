//! The canonical experiment datasets: synthetic stand-ins for the paper's
//! NYT and AMZN corpora, sized for a single machine and scaled with
//! `--scale`.
//!
//! The corpora are generated once per harness invocation and shared across
//! experiments (generation is deterministic, so re-running a single
//! subcommand sees identical data).

use std::path::Path;

use lash_datagen::{
    ProductConfig, ProductCorpus, ProductHierarchy, TextConfig, TextCorpus, TextHierarchy,
};
use lash_store::{CorpusReader, StoreOptions};

/// Builds the NYT-like corpus at `scale` (1.0 ≈ 20k sentences).
pub fn nyt(scale: f64) -> TextCorpus {
    TextCorpus::generate(&TextConfig::default().scaled(scale))
}

/// Builds the AMZN-like corpus at `scale` (1.0 ≈ 20k sessions).
pub fn amzn(scale: f64) -> ProductCorpus {
    ProductCorpus::generate(&ProductConfig::default().scaled(scale))
}

/// Cache generation, combined with the store format version in every cache
/// key. Bump this whenever `lash-datagen`'s generators or default configs
/// change, so persistent caches are invalidated instead of silently serving
/// corpora the current code no longer generates.
pub const CACHE_GENERATION: u32 = 1;

fn cache_key(corpus: &str, hierarchy: &str, scale: f64) -> String {
    format!(
        "{corpus}-{hierarchy}-x{scale}-v{}g{CACHE_GENERATION}",
        lash_store::FORMAT_VERSION
    )
}

/// Opens the NYT-like corpus as an on-disk store under `cache_dir`,
/// generating and persisting it on the first call — repeated harness runs
/// reopen the corpus cold instead of regenerating it, and experiments can
/// mine it without holding the database in memory.
pub fn nyt_store(
    scale: f64,
    hierarchy: TextHierarchy,
    cache_dir: &Path,
) -> lash_store::Result<CorpusReader> {
    cached_corpus(
        cache_dir,
        &cache_key("nyt", hierarchy.name(), scale),
        || nyt(scale).dataset(hierarchy),
    )
}

/// Opens the AMZN-like corpus as an on-disk store under `cache_dir`,
/// generating and persisting it on the first call.
pub fn amzn_store(
    scale: f64,
    hierarchy: ProductHierarchy,
    cache_dir: &Path,
) -> lash_store::Result<CorpusReader> {
    cached_corpus(
        cache_dir,
        &cache_key("amzn", hierarchy.name(), scale),
        || amzn(scale).dataset(hierarchy),
    )
}

/// Opens `cache_dir/key` as a corpus, building it via `generate` if absent.
fn cached_corpus(
    cache_dir: &Path,
    key: &str,
    generate: impl FnOnce() -> (lash_core::Vocabulary, lash_core::SequenceDatabase),
) -> lash_store::Result<CorpusReader> {
    let dir = cache_dir.join(key);
    match CorpusReader::open(&dir) {
        Ok(reader) => Ok(reader),
        Err(_) => {
            // Absent or unreadable: rebuild from scratch (generation is
            // deterministic, so a rebuild is always equivalent).
            let _ = std::fs::remove_dir_all(&dir);
            let (vocab, db) = generate();
            lash_store::convert::write_database(&dir, &vocab, &db, StoreOptions::default())?;
            CorpusReader::open(&dir)
        }
    }
}

/// Environment variable overriding the on-disk corpus cache directory.
pub const CACHE_DIR_ENV: &str = "LASH_BENCH_CACHE";

/// The default corpus cache directory: `$LASH_BENCH_CACHE` or
/// `<system temp>/lash-bench-cache`. The cache key embeds hierarchy and
/// scale, so corpora persist across harness reruns and are reopened cold
/// instead of being regenerated in memory.
pub fn default_cache_dir() -> std::path::PathBuf {
    std::env::var_os(CACHE_DIR_ENV)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("lash-bench-cache"))
}

/// Lazily-built corpora shared by the experiment subcommands.
///
/// Figure/table experiments pull their `(vocabulary, database)` pairs
/// through [`Datasets::nyt_dataset`]/[`Datasets::amzn_dataset`], which are
/// backed by the cached on-disk stores of [`nyt_store`]/[`amzn_store`]: the
/// first run of a (corpus, hierarchy, scale) combination generates and
/// persists the corpus; every later harness invocation reopens it from the
/// cache directory.
pub struct Datasets {
    scale: f64,
    cache_dir: std::path::PathBuf,
    nyt_readers: std::collections::BTreeMap<&'static str, CorpusReader>,
    amzn_readers: std::collections::BTreeMap<&'static str, CorpusReader>,
}

impl Datasets {
    /// Creates the holder at a given scale, caching under
    /// [`default_cache_dir`].
    pub fn new(scale: f64) -> Datasets {
        Datasets::with_cache_dir(scale, default_cache_dir())
    }

    /// Creates the holder with an explicit cache directory.
    pub fn with_cache_dir(scale: f64, cache_dir: impl Into<std::path::PathBuf>) -> Datasets {
        Datasets {
            scale,
            cache_dir: cache_dir.into(),
            nyt_readers: Default::default(),
            amzn_readers: Default::default(),
        }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The corpus cache directory.
    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    /// The cached on-disk NYT corpus under `hierarchy` (written on first
    /// use, reopened afterwards).
    pub fn nyt_reader(&mut self, hierarchy: TextHierarchy) -> &CorpusReader {
        let (scale, cache) = (self.scale, self.cache_dir.clone());
        self.nyt_readers
            .entry(hierarchy.name())
            .or_insert_with(|| nyt_store(scale, hierarchy, &cache).expect("open cached NYT corpus"))
    }

    /// The cached on-disk AMZN corpus under `hierarchy`.
    pub fn amzn_reader(&mut self, hierarchy: ProductHierarchy) -> &CorpusReader {
        let (scale, cache) = (self.scale, self.cache_dir.clone());
        self.amzn_readers
            .entry(hierarchy.name())
            .or_insert_with(|| {
                amzn_store(scale, hierarchy, &cache).expect("open cached AMZN corpus")
            })
    }

    /// The NYT `(vocabulary, database)` pair under `hierarchy`, materialized
    /// from the cached on-disk corpus.
    pub fn nyt_dataset(
        &mut self,
        hierarchy: TextHierarchy,
    ) -> (lash_core::Vocabulary, lash_core::SequenceDatabase) {
        let reader = self.nyt_reader(hierarchy);
        let db = reader.to_database().expect("materialize cached NYT corpus");
        (reader.vocabulary().clone(), db)
    }

    /// The AMZN `(vocabulary, database)` pair under `hierarchy`, materialized
    /// from the cached on-disk corpus.
    pub fn amzn_dataset(
        &mut self,
        hierarchy: ProductHierarchy,
    ) -> (lash_core::Vocabulary, lash_core::SequenceDatabase) {
        let reader = self.amzn_reader(hierarchy);
        let db = reader
            .to_database()
            .expect("materialize cached AMZN corpus");
        (reader.vocabulary().clone(), db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_lazily_and_cache() {
        let cache = std::env::temp_dir().join(format!("lash-bench-lazy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let mut d = Datasets::with_cache_dir(0.01, &cache);
        let n1 = d.nyt_reader(TextHierarchy::LP).len();
        let n2 = d.nyt_reader(TextHierarchy::LP).len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        let (vocab, db) = d.amzn_dataset(ProductHierarchy::H2);
        assert!(!db.is_empty());
        assert!(!vocab.is_empty());
        std::fs::remove_dir_all(&cache).unwrap();
    }

    #[test]
    fn store_cache_persists_and_reopens() {
        let cache = std::env::temp_dir().join(format!("lash-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let first = nyt_store(0.01, TextHierarchy::LP, &cache).unwrap();
        let in_memory = nyt(0.01).dataset(TextHierarchy::LP).1;
        assert_eq!(first.len(), in_memory.len() as u64);
        // Second call reopens the same files instead of regenerating.
        let second = nyt_store(0.01, TextHierarchy::LP, &cache).unwrap();
        assert_eq!(second.len(), first.len());
        assert_eq!(second.manifest(), first.manifest());
        let db = second.to_database().unwrap();
        for i in 0..db.len() {
            assert_eq!(db.get(i), in_memory.get(i));
        }
        std::fs::remove_dir_all(&cache).unwrap();
    }
}
