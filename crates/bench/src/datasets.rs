//! The canonical experiment datasets: synthetic stand-ins for the paper's
//! NYT and AMZN corpora, sized for a single machine and scaled with
//! `--scale`.
//!
//! The corpora are generated once per harness invocation and shared across
//! experiments (generation is deterministic, so re-running a single
//! subcommand sees identical data).

use lash_datagen::{ProductConfig, ProductCorpus, TextConfig, TextCorpus};

/// Builds the NYT-like corpus at `scale` (1.0 ≈ 20k sentences).
pub fn nyt(scale: f64) -> TextCorpus {
    TextCorpus::generate(&TextConfig::default().scaled(scale))
}

/// Builds the AMZN-like corpus at `scale` (1.0 ≈ 20k sessions).
pub fn amzn(scale: f64) -> ProductCorpus {
    ProductCorpus::generate(&ProductConfig::default().scaled(scale))
}

/// Lazily-built corpora shared by the experiment subcommands.
pub struct Datasets {
    scale: f64,
    nyt: Option<TextCorpus>,
    amzn: Option<ProductCorpus>,
}

impl Datasets {
    /// Creates the holder at a given scale.
    pub fn new(scale: f64) -> Datasets {
        Datasets {
            scale,
            nyt: None,
            amzn: None,
        }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The NYT-like corpus (generated on first use).
    pub fn nyt(&mut self) -> &TextCorpus {
        let scale = self.scale;
        self.nyt.get_or_insert_with(|| nyt(scale))
    }

    /// The AMZN-like corpus (generated on first use).
    pub fn amzn(&mut self) -> &ProductCorpus {
        let scale = self.scale;
        self.amzn.get_or_insert_with(|| amzn(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_lazily_and_cache() {
        let mut d = Datasets::new(0.01);
        let n1 = d.nyt().len();
        let n2 = d.nyt().len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        assert!(!d.amzn().is_empty());
    }
}
