//! The canonical experiment datasets: synthetic stand-ins for the paper's
//! NYT and AMZN corpora, sized for a single machine and scaled with
//! `--scale`.
//!
//! The corpora are generated once per harness invocation and shared across
//! experiments (generation is deterministic, so re-running a single
//! subcommand sees identical data).

use std::path::Path;

use lash_datagen::{
    ProductConfig, ProductCorpus, ProductHierarchy, TextConfig, TextCorpus, TextHierarchy,
};
use lash_store::{CorpusReader, StoreOptions};

/// Builds the NYT-like corpus at `scale` (1.0 ≈ 20k sentences).
pub fn nyt(scale: f64) -> TextCorpus {
    TextCorpus::generate(&TextConfig::default().scaled(scale))
}

/// Builds the AMZN-like corpus at `scale` (1.0 ≈ 20k sessions).
pub fn amzn(scale: f64) -> ProductCorpus {
    ProductCorpus::generate(&ProductConfig::default().scaled(scale))
}

/// Opens the NYT-like corpus as an on-disk store under `cache_dir`,
/// generating and persisting it on the first call — repeated harness runs
/// reopen the corpus cold instead of regenerating it, and experiments can
/// mine it without holding the database in memory.
pub fn nyt_store(
    scale: f64,
    hierarchy: TextHierarchy,
    cache_dir: &Path,
) -> lash_store::Result<CorpusReader> {
    cached_corpus(
        cache_dir,
        &format!("nyt-{}-x{scale}", hierarchy.name()),
        || nyt(scale).dataset(hierarchy),
    )
}

/// Opens the AMZN-like corpus as an on-disk store under `cache_dir`,
/// generating and persisting it on the first call.
pub fn amzn_store(
    scale: f64,
    hierarchy: ProductHierarchy,
    cache_dir: &Path,
) -> lash_store::Result<CorpusReader> {
    cached_corpus(
        cache_dir,
        &format!("amzn-{}-x{scale}", hierarchy.name()),
        || amzn(scale).dataset(hierarchy),
    )
}

/// Opens `cache_dir/key` as a corpus, building it via `generate` if absent.
fn cached_corpus(
    cache_dir: &Path,
    key: &str,
    generate: impl FnOnce() -> (lash_core::Vocabulary, lash_core::SequenceDatabase),
) -> lash_store::Result<CorpusReader> {
    let dir = cache_dir.join(key);
    match CorpusReader::open(&dir) {
        Ok(reader) => Ok(reader),
        Err(_) => {
            // Absent or unreadable: rebuild from scratch (generation is
            // deterministic, so a rebuild is always equivalent).
            let _ = std::fs::remove_dir_all(&dir);
            let (vocab, db) = generate();
            lash_store::convert::write_database(&dir, &vocab, &db, StoreOptions::default())?;
            CorpusReader::open(&dir)
        }
    }
}

/// Lazily-built corpora shared by the experiment subcommands.
pub struct Datasets {
    scale: f64,
    nyt: Option<TextCorpus>,
    amzn: Option<ProductCorpus>,
}

impl Datasets {
    /// Creates the holder at a given scale.
    pub fn new(scale: f64) -> Datasets {
        Datasets {
            scale,
            nyt: None,
            amzn: None,
        }
    }

    /// The scale factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The NYT-like corpus (generated on first use).
    pub fn nyt(&mut self) -> &TextCorpus {
        let scale = self.scale;
        self.nyt.get_or_insert_with(|| nyt(scale))
    }

    /// The AMZN-like corpus (generated on first use).
    pub fn amzn(&mut self) -> &ProductCorpus {
        let scale = self.scale;
        self.amzn.get_or_insert_with(|| amzn(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_build_lazily_and_cache() {
        let mut d = Datasets::new(0.01);
        let n1 = d.nyt().len();
        let n2 = d.nyt().len();
        assert_eq!(n1, n2);
        assert!(n1 > 0);
        assert!(!d.amzn().is_empty());
    }

    #[test]
    fn store_cache_persists_and_reopens() {
        let cache = std::env::temp_dir().join(format!("lash-bench-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache);
        let first = nyt_store(0.01, TextHierarchy::LP, &cache).unwrap();
        let in_memory = nyt(0.01).dataset(TextHierarchy::LP).1;
        assert_eq!(first.len(), in_memory.len() as u64);
        // Second call reopens the same files instead of regenerating.
        let second = nyt_store(0.01, TextHierarchy::LP, &cache).unwrap();
        assert_eq!(second.len(), first.len());
        assert_eq!(second.manifest(), first.manifest());
        let db = second.to_database().unwrap();
        for i in 0..db.len() {
            assert_eq!(db.get(i), in_memory.get(i));
        }
        std::fs::remove_dir_all(&cache).unwrap();
    }
}
