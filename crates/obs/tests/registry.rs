//! Registry correctness under concurrency and arbitrary interleavings:
//! counters must sum exactly across racing threads, histogram percentiles
//! must stay inside the recorded value's bucket, and interleaved
//! record/snapshot sequences must never panic or lose counts.

use std::sync::Arc;

use lash_obs::{bucket_bounds, bucket_index, Histogram, MetricsRegistry};
use proptest::prelude::*;

#[test]
fn concurrent_increments_sum_exactly() {
    const THREADS: usize = 8;
    const INCREMENTS: u64 = 25_000;
    let registry = MetricsRegistry::new();
    let counter = registry.counter("test.exact");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..INCREMENTS {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * INCREMENTS);
    assert_eq!(registry.counter("test.exact").get(), counter.get());
}

#[test]
fn concurrent_histogram_records_lose_nothing() {
    const THREADS: u64 = 6;
    const RECORDS: u64 = 10_000;
    let histogram = Arc::new(Histogram::default());
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = Arc::clone(&histogram);
            scope.spawn(move || {
                for i in 0..RECORDS {
                    histogram.record(t * RECORDS + i);
                }
            });
        }
    });
    let s = histogram.snapshot();
    assert_eq!(s.count, THREADS * RECORDS);
    // Sum of 0..THREADS*RECORDS.
    let n = THREADS * RECORDS;
    assert_eq!(s.sum, n * (n - 1) / 2);
    assert_eq!(s.max, n - 1);
}

#[test]
fn single_value_percentiles_report_the_value_exactly() {
    // With one recorded value, every quantile is min(bucket upper bound,
    // max) — which collapses to the value itself.
    for v in [0u64, 1, 2, 3, 5, 64, 1000, u64::MAX / 3, u64::MAX] {
        let h = Histogram::default();
        h.record(v);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.percentile(q), v, "value {v} quantile {q}");
        }
    }
}

#[test]
fn percentiles_stay_within_a_recorded_bucket() {
    let h = Histogram::default();
    let values = [3u64, 9, 17, 1000, 1001, 40_000, 7];
    for &v in &values {
        h.record(v);
    }
    let s = h.snapshot();
    let mut previous = 0;
    for q in [0.5, 0.95, 0.99] {
        let p = s.percentile(q);
        // Every reported quantile lies in the bucket of some recorded
        // value — the readout never invents a bucket nothing landed in.
        assert!(
            values.iter().any(|&v| bucket_index(v) == bucket_index(p)),
            "p{q} = {p} outside every recorded bucket"
        );
        assert!(p >= previous, "quantiles must be monotone");
        assert!(p <= s.max);
        previous = p;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary interleavings of record and snapshot: no panic, no lost
    /// counts, and each intermediate snapshot is exact for a single
    /// (sequential) writer.
    #[test]
    fn interleaved_record_snapshot_never_loses_counts(
        ops in prop::collection::vec((any::<bool>(), any::<u64>()), 0..200),
    ) {
        let h = Histogram::default();
        let mut count = 0u64;
        let mut sum = 0u128;
        let mut max = 0u64;
        for (snapshot, value) in ops {
            if snapshot {
                let s = h.snapshot();
                prop_assert_eq!(s.count, count);
                prop_assert_eq!(u128::from(s.sum), sum & u128::from(u64::MAX));
                prop_assert_eq!(s.max, max);
                let p99 = s.percentile(0.99);
                prop_assert!(p99 <= s.max);
                if count > 0 {
                    let (low, _) = bucket_bounds(bucket_index(p99));
                    prop_assert!(low <= s.max);
                }
            } else {
                h.record(value);
                count += 1;
                // The histogram's sum is a wrapping u64 by construction.
                sum += u128::from(value);
                max = max.max(value);
            }
        }
        let end = h.snapshot();
        prop_assert_eq!(end.count, count);
        prop_assert_eq!(u128::from(end.sum), sum & u128::from(u64::MAX));
    }

    /// Registry lookups under arbitrary name sets stay consistent: the
    /// same name always resolves to the same underlying metric.
    #[test]
    fn lookups_are_stable_per_name(
        names in prop::collection::vec(0u8..8, 1..32),
    ) {
        let registry = MetricsRegistry::new();
        let mut expected = [0u64; 8];
        for n in names {
            registry.counter(&format!("proptest.c{n}")).inc();
            expected[n as usize] += 1;
        }
        for (n, &want) in expected.iter().enumerate() {
            prop_assert_eq!(registry.counter(&format!("proptest.c{n}")).get(), want);
        }
    }
}
