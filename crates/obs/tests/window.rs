//! Windowed metrics under an injected clock: bucket rotation and expiry
//! must be deterministic, and every windowed readout — count, sum, max,
//! and each percentile — must equal a brute-force recomputation from the
//! raw timestamped events.

use lash_obs::window::{
    ManualClock, WindowClock, WindowConfig, WindowedCounter, WindowedHistogram,
};
use lash_obs::{Histogram, MetricsRegistry};
use proptest::prelude::*;

const CONFIG: WindowConfig = WindowConfig {
    bucket_width_us: 100,
    buckets: 8,
};

fn manual_pair() -> (WindowClock, ManualClock) {
    WindowClock::manual()
}

/// The set of epochs a readout at `now` covers: the current epoch and the
/// `buckets - 1` before it.
fn in_window(event_us: u64, now_us: u64) -> bool {
    let width = CONFIG.bucket_width_us;
    let (event_epoch, now_epoch) = (event_us / width, now_us / width);
    event_epoch <= now_epoch && now_epoch - event_epoch < CONFIG.buckets as u64
}

#[test]
fn expired_buckets_drop_out_as_the_clock_advances() {
    let (clock, hands) = manual_pair();
    let h = WindowedHistogram::new(CONFIG, clock);
    for i in 0..8u64 {
        hands.set(i * 100); // one observation per epoch
        h.record(1 << i);
    }
    assert_eq!(h.snapshot().count, 8);
    // Each further epoch expires exactly the oldest observation.
    for i in 0..8u64 {
        hands.set((8 + i) * 100);
        let s = h.snapshot();
        assert_eq!(s.count, 7 - i, "at epoch {}", 8 + i);
        if s.count > 0 {
            // The surviving max is the newest surviving observation.
            assert_eq!(s.max, 1 << 7);
        }
    }
    assert_eq!(h.snapshot().count, 0);
}

#[test]
fn registry_window_stats_report_counters_and_histograms() {
    let registry = MetricsRegistry::new();
    let (clock, hands) = manual_pair();
    registry.set_window_clock(clock);
    let requests = registry.windowed_counter("test.requests");
    let latency = registry.windowed_histogram("test.latency_us");
    hands.set(500);
    requests.add(3);
    latency.record(200);
    latency.record(1_000);
    let stats = registry.window_stats();
    let req = stats.iter().find(|w| w.name == "test.requests").unwrap();
    assert_eq!(req.count, 3);
    assert_eq!(req.p99, 0);
    let lat = stats.iter().find(|w| w.name == "test.latency_us").unwrap();
    assert_eq!(lat.count, 2);
    assert_eq!(lat.sum, 1_200);
    assert_eq!(lat.max, 1_000);
    assert_eq!(lat.p99, 1_000);
    // Same handle, same clock: expiry shows up in the registry readout.
    hands.advance(lat.window_us * 2);
    let stats = registry.window_stats();
    assert_eq!(
        stats
            .iter()
            .find(|w| w.name == "test.requests")
            .unwrap()
            .count,
        0
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Windowed percentiles and rates vs brute force: replay arbitrary
    /// timestamped events into a windowed histogram + counter, then at an
    /// arbitrary readout instant rebuild a plain histogram from exactly
    /// the raw events still inside the window — every statistic must
    /// match exactly (same log2 buckets on both sides).
    #[test]
    fn windowed_readout_matches_brute_force(
        steps in prop::collection::vec((0u64..250, 0u64..100_000), 1..120),
        extra_wait in 0u64..1_000,
    ) {
        let (clock, hands) = manual_pair();
        let h = WindowedHistogram::new(CONFIG, clock.clone());
        let c = WindowedCounter::new(CONFIG, clock);
        let mut raw: Vec<(u64, u64)> = Vec::new();
        let mut now = 0u64;
        for (advance, value) in steps {
            now += advance;
            hands.set(now);
            h.record(value);
            c.inc();
            raw.push((now, value));
        }
        now += extra_wait;
        hands.set(now);

        let brute = Histogram::default();
        let mut expected_count = 0u64;
        for &(ts, value) in &raw {
            if in_window(ts, now) {
                brute.record(value);
                expected_count += 1;
            }
        }
        let expect = brute.snapshot();
        let got = h.snapshot();
        prop_assert_eq!(c.total(), expected_count);
        prop_assert_eq!(got.count, expect.count);
        prop_assert_eq!(got.sum, expect.sum);
        prop_assert_eq!(got.max, expect.max);
        for q in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            prop_assert_eq!(got.percentile(q), expect.percentile(q));
        }
        prop_assert_eq!(&got.buckets[..], &expect.buckets[..]);
    }
}
