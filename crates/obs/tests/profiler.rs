//! The span-stack sampling profiler against a synthetic workload with a
//! known hot span: when one thread sits inside `prof.hot` for the whole
//! sampling interval, at least half of all samples must land on a path
//! containing it. Sampling is driven manually (`sample_once`) so the test
//! is deterministic — no timer, no Hz, no sleeps racing the sampler.
//!
//! One test function on purpose: samples aggregate process-globally, so
//! parallel `#[test]`s would see each other's spans.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lash_obs::profiler;

#[test]
fn samples_concentrate_under_the_hot_span() {
    let ready = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));

    // The hot worker: parks inside prof.hot_outer → prof.hot for the
    // whole test.
    let hot = {
        let (ready, stop) = (Arc::clone(&ready), Arc::clone(&stop));
        std::thread::spawn(move || {
            let _outer = lash_obs::span!("prof.hot_outer");
            let _inner = lash_obs::span!("prof.hot");
            ready.store(true, Ordering::Release);
            while !stop.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
        })
    };
    while !ready.load(Ordering::Acquire) {
        std::thread::yield_now();
    }

    profiler::reset();
    const PASSES: usize = 200;
    for _ in 0..PASSES {
        // A cold span that exists only part of the time: each pass spends
        // one short span on this thread, dropped before sampling.
        drop(lash_obs::span!("prof.cold"));
        profiler::sample_once();
    }
    stop.store(true, Ordering::Release);
    hot.join().expect("hot worker");

    let folded = profiler::folded();
    let total = profiler::samples_taken();
    assert!(total >= PASSES as u64, "hot thread sampled every pass");
    let hot_samples: u64 = folded
        .lines()
        .filter(|l| l.contains("prof.hot"))
        .filter_map(|l| l.rsplit_once(' ')?.1.parse::<u64>().ok())
        .sum();
    assert!(
        hot_samples * 2 >= total,
        "hot span holds {hot_samples} of {total} samples; folded:\n{folded}"
    );
    // The full call path is attributed, parent before child.
    assert!(
        folded.contains("prof.hot_outer;prof.hot "),
        "folded output names the nested path:\n{folded}"
    );

    // Reset empties the aggregate.
    profiler::reset();
    assert_eq!(profiler::samples_taken(), 0);
    assert_eq!(profiler::folded(), "");
}
