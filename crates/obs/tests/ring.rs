//! Flight-recorder ring buffer under concurrency: snapshots taken while
//! writers race must never contain torn lines, and once writers quiesce
//! the ring must hold exactly the newest `capacity` lines in order.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use lash_obs::ring::EventRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Writers push self-describing lines (`w<writer>:<seq>:<payload>`)
    /// while a reader snapshots continuously. Every observed line must be
    /// one a writer actually pushed, whole.
    #[test]
    fn concurrent_snapshots_see_no_torn_lines(
        capacity in 1usize..32,
        writers in 1usize..5,
        per_writer in 1usize..200,
    ) {
        let ring = Arc::new(EventRing::new(capacity));
        let done = Arc::new(AtomicBool::new(false));
        let mut torn: Vec<String> = Vec::new();
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = Arc::clone(&ring);
                scope.spawn(move || {
                    for seq in 0..per_writer {
                        // Payload length varies per line so a torn splice
                        // of two lines cannot masquerade as a valid one.
                        let pad = "x".repeat(seq % 23);
                        ring.push(format!("w{w}:{seq}:{pad}"));
                    }
                });
            }
            let reader = {
                let ring = Arc::clone(&ring);
                let done = Arc::clone(&done);
                scope.spawn(move || {
                    let mut bad = Vec::new();
                    while !done.load(Ordering::Acquire) {
                        for line in ring.snapshot() {
                            if !line_is_wellformed(&line) {
                                bad.push(line);
                            }
                        }
                    }
                    bad
                })
            };
            // Writers are the scope's other threads; wait for them by
            // re-joining via a sentinel: the scope joins all threads at
            // the end, so signal the reader once pushes are accounted for.
            while ring.pushed() < (writers * per_writer) as u64 {
                std::hint::spin_loop();
            }
            done.store(true, Ordering::Release);
            torn = reader.join().expect("reader");
        });
        prop_assert!(torn.is_empty(), "torn lines observed: {torn:?}");

        // Quiesced: exactly the newest min(total, capacity) lines remain,
        // in push order (tickets are the global order, so per-writer
        // sequences must be increasing in the snapshot).
        let total = writers * per_writer;
        let snapshot = ring.snapshot();
        prop_assert_eq!(snapshot.len(), total.min(capacity));
        for w in 0..writers {
            let seqs: Vec<usize> = snapshot
                .iter()
                .filter_map(|l| parse_line(l).filter(|(lw, _)| *lw == w).map(|(_, s)| s))
                .collect();
            // Newest-N: eviction only ever removes the oldest tickets, and
            // a writer's own pushes are ordered, so its survivors must be
            // exactly the tail of its sequence (always including its very
            // last push, if anything of its survived at all).
            let expected_tail: Vec<usize> =
                (per_writer - seqs.len().min(per_writer)..per_writer).collect();
            prop_assert_eq!(
                &seqs, &expected_tail,
                "writer {} survivors are not its newest suffix", w
            );
        }
    }
}

fn parse_line(line: &str) -> Option<(usize, usize)> {
    let mut parts = line.splitn(3, ':');
    let w = parts.next()?.strip_prefix('w')?.parse().ok()?;
    let seq: usize = parts.next()?.parse().ok()?;
    let pad = parts.next()?;
    (pad.len() == seq % 23 && pad.bytes().all(|b| b == b'x')).then_some((w, seq))
}

fn line_is_wellformed(line: &str) -> bool {
    parse_line(line).is_some()
}

#[test]
fn newest_n_semantics_single_threaded() {
    let ring = EventRing::new(8);
    for i in 0..100u32 {
        ring.push(format!("{i}"));
    }
    let got: Vec<String> = ring.snapshot();
    let want: Vec<String> = (92..100).map(|i| i.to_string()).collect();
    assert_eq!(got, want);
}
