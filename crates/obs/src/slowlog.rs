//! The slow-op log's threshold table: which span names get promoted to
//! `slow_op` events, and at what duration.
//!
//! A threshold can be set per span name ([`SlowLog::set_threshold`]) or
//! as a catch-all default ([`SlowLog::set_default`], also seeded from
//! `LASH_OBS_SLOW_US`); per-name entries win. The hot-path question —
//! "does this span name have a threshold?" — is answered through a
//! single relaxed atomic load when no threshold is configured at all,
//! so an idle slow-op log costs nothing on the span path.
//!
//! The promotion itself (diffing counters, emitting the `slow_op` line)
//! lives on `MetricsRegistry`, which owns the counters and the sink;
//! this module only decides *whether* a span is slow.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::RwLock;

/// Counter snapshot taken when a span with a slow-op threshold starts,
/// diffed against live values if the span ends over threshold.
pub(crate) struct SlowCapture {
    pub(crate) threshold_us: u64,
    pub(crate) counters: Vec<(String, u64)>,
}

/// At most this many counter deltas are attached to a `slow_op` event;
/// the busiest registries have dozens of counters and the log must stay
/// one readable line.
pub(crate) const SLOW_OP_MAX_DELTAS: usize = 24;

/// The threshold table: per-name overrides, an optional default, and a
/// fast "anything configured at all?" gate.
pub(crate) struct SlowLog {
    thresholds: RwLock<BTreeMap<String, u64>>,
    /// Default threshold in µs; `u64::MAX` means unset.
    default_us: AtomicU64,
    /// Fast gate: true when any threshold (default or per-name) is set.
    enabled: AtomicBool,
}

impl SlowLog {
    /// An empty table: no thresholds, nothing promoted.
    pub(crate) fn new() -> SlowLog {
        SlowLog {
            thresholds: RwLock::default(),
            default_us: AtomicU64::new(u64::MAX),
            enabled: AtomicBool::new(false),
        }
    }

    /// Sets (or with `None` clears) the default threshold applied to
    /// span names without a per-name entry.
    pub(crate) fn set_default(&self, threshold_us: Option<u64>) {
        self.default_us
            .store(threshold_us.unwrap_or(u64::MAX), Ordering::Relaxed);
        self.update_enabled();
    }

    /// Sets (or with `None` clears) the threshold for one span name.
    pub(crate) fn set_threshold(&self, name: &str, threshold_us: Option<u64>) {
        let mut map = self.thresholds.write().expect("slowlog lock");
        match threshold_us {
            Some(t) => {
                map.insert(name.to_string(), t);
            }
            None => {
                map.remove(name);
            }
        }
        drop(map);
        self.update_enabled();
    }

    fn update_enabled(&self) {
        let enabled = self.default_us.load(Ordering::Relaxed) != u64::MAX
            || !self.thresholds.read().expect("slowlog lock").is_empty();
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The effective threshold for `name`, if any.
    pub(crate) fn threshold_of(&self, name: &str) -> Option<u64> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(&t) = self.thresholds.read().expect("slowlog lock").get(name) {
            return Some(t);
        }
        match self.default_us.load(Ordering::Relaxed) {
            u64::MAX => None,
            t => Some(t),
        }
    }
}
