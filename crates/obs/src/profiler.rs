//! Span-stack sampling profiler: where is the time going, *right now*?
//!
//! Every live [`crate::Span`] pushes its name onto a per-thread lock-free
//! stack (two relaxed atomics per push/pop — no unwinding, no frame
//! pointers, no symbols). A background sampler wakes at a configurable Hz,
//! walks every registered thread's stack, and tallies the span-name call
//! path it sees (`serve.batch;query.request;query.support`). The
//! aggregate dumps as folded-stacks text — one `path count` line per
//! distinct path — which is exactly the input format of
//! `flamegraph.pl` / speedscope, and what the serve protocol's `Profile`
//! admin request returns.
//!
//! Because only span boundaries are visible, resolution is the span tree,
//! not native frames: a path's count is "samples that landed while this
//! span path was active". That is the right granularity here — the mining
//! and serving layers are already annotated span-by-phase, so ≥50% of
//! samples landing under `mine.pass` *is* the profile statement we want.
//!
//! The sampler starts from [`start_from_env`] ([`PROFILE_HZ_ENV`], default
//! [`DEFAULT_HZ`] Hz, `0` disables); tests drive [`sample_once`] directly
//! for determinism.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

/// Environment variable naming the sampling frequency in Hz. Unset means
/// [`DEFAULT_HZ`] *when a component opts in* via [`start_from_env`]; `0`
/// disables sampling.
pub const PROFILE_HZ_ENV: &str = "LASH_OBS_PROFILE_HZ";

/// Default sampling frequency (Hz) when [`PROFILE_HZ_ENV`] is unset.
/// Prime, so the sampler does not phase-lock with millisecond-aligned
/// periodic work.
pub const DEFAULT_HZ: u64 = 97;

/// Spans nested deeper than this stop being recorded on the profiler
/// stack (the trace layer keeps working; only sampled paths truncate).
pub const MAX_DEPTH: usize = 64;

/// Highest accepted sampling frequency.
pub const MAX_HZ: u64 = 1_000;

/// One thread's span-name stack, shared with the sampler. The owning
/// thread pushes/pops interned name ids; the sampler reads `depth` with
/// `Acquire` and then the slots, giving a consistent-enough snapshot (a
/// torn read mid-push can only mis-attribute one sample by one frame).
struct ThreadStack {
    depth: AtomicUsize,
    slots: [AtomicU32; MAX_DEPTH],
}

impl ThreadStack {
    fn new() -> Arc<ThreadStack> {
        Arc::new(ThreadStack {
            depth: AtomicUsize::new(0),
            slots: std::array::from_fn(|_| AtomicU32::new(0)),
        })
    }
}

thread_local! {
    static LOCAL: RefCell<Option<Arc<ThreadStack>>> = const { RefCell::new(None) };
}

/// Every thread that ever pushed a span, kept weakly so exited threads
/// drop out; pruned on each sampling pass.
static THREADS: Mutex<Vec<Weak<ThreadStack>>> = Mutex::new(Vec::new());

/// Interned span names: id → name. Ids are dense indexes into the list.
static NAMES: RwLock<Vec<String>> = RwLock::new(Vec::new());
static NAME_IDS: RwLock<BTreeMap<String, u32>> = RwLock::new(BTreeMap::new());

/// Aggregated samples: span-id path → times seen.
static SAMPLES: Mutex<BTreeMap<Vec<u32>, u64>> = Mutex::new(BTreeMap::new());

/// Total sampling passes taken (including ones that saw no active spans).
static PASSES: AtomicU64 = AtomicU64::new(0);

/// Samples recorded (one per thread with a non-empty stack, per pass).
static SAMPLES_TAKEN: AtomicU64 = AtomicU64::new(0);

static STARTED: AtomicBool = AtomicBool::new(false);
static CONFIGURED_HZ: AtomicU64 = AtomicU64::new(0);

fn intern(name: &str) -> u32 {
    if let Some(&id) = NAME_IDS.read().expect("profiler intern lock").get(name) {
        return id;
    }
    let mut ids = NAME_IDS.write().expect("profiler intern lock");
    if let Some(&id) = ids.get(name) {
        return id;
    }
    let mut names = NAMES.write().expect("profiler intern lock");
    let id = names.len() as u32;
    names.push(name.to_string());
    ids.insert(name.to_string(), id);
    id
}

fn with_stack<R>(f: impl FnOnce(&Arc<ThreadStack>) -> R) -> R {
    LOCAL.with(|local| {
        let mut slot = local.borrow_mut();
        let stack = slot.get_or_insert_with(|| {
            let stack = ThreadStack::new();
            THREADS
                .lock()
                .expect("profiler thread list lock")
                .push(Arc::downgrade(&stack));
            stack
        });
        f(stack)
    })
}

/// Pushes a span name onto this thread's profiler stack. Called by
/// [`crate::MetricsRegistry::span`]; spans beyond [`MAX_DEPTH`] are
/// counted in depth but not recorded.
pub(crate) fn push(name: &str) {
    let id = intern(name);
    with_stack(|stack| {
        let depth = stack.depth.load(Ordering::Relaxed);
        if depth < MAX_DEPTH {
            stack.slots[depth].store(id, Ordering::Relaxed);
        }
        // Release-publish the new depth after the slot write so the
        // sampler never reads an unwritten slot within the claimed depth.
        stack.depth.store(depth + 1, Ordering::Release);
    });
}

/// Pops this thread's profiler stack (saturating — a mismatched trace
/// guard drop cannot underflow it).
pub(crate) fn pop() {
    with_stack(|stack| {
        let depth = stack.depth.load(Ordering::Relaxed);
        if depth > 0 {
            stack.depth.store(depth - 1, Ordering::Release);
        }
    });
}

/// Takes one sampling pass over every registered thread: each thread with
/// at least one live span contributes one sample to its current span
/// path. Returns how many samples this pass recorded. The sampler thread
/// calls this on its tick; deterministic tests call it directly.
pub fn sample_once() -> usize {
    let stacks: Vec<Arc<ThreadStack>> = {
        let mut threads = THREADS.lock().expect("profiler thread list lock");
        threads.retain(|weak| weak.strong_count() > 0);
        threads.iter().filter_map(Weak::upgrade).collect()
    };
    let mut recorded = 0usize;
    let mut samples = SAMPLES.lock().expect("profiler samples lock");
    for stack in stacks {
        let depth = stack.depth.load(Ordering::Acquire).min(MAX_DEPTH);
        if depth == 0 {
            continue;
        }
        let path: Vec<u32> = stack.slots[..depth]
            .iter()
            .map(|slot| slot.load(Ordering::Relaxed))
            .collect();
        *samples.entry(path).or_insert(0) += 1;
        recorded += 1;
    }
    drop(samples);
    PASSES.fetch_add(1, Ordering::Relaxed);
    SAMPLES_TAKEN.fetch_add(recorded as u64, Ordering::Relaxed);
    recorded
}

/// Total samples recorded since process start (or the last [`reset`]).
pub fn samples_taken() -> u64 {
    SAMPLES_TAKEN.load(Ordering::Relaxed)
}

/// Clears the aggregated samples and the sample counter (profiling a
/// specific workload phase: reset, run, dump).
pub fn reset() {
    SAMPLES.lock().expect("profiler samples lock").clear();
    SAMPLES_TAKEN.store(0, Ordering::Relaxed);
    PASSES.store(0, Ordering::Relaxed);
}

/// The aggregated profile as folded-stacks text: one
/// `root;child;leaf count` line per distinct sampled span path, sorted by
/// path — feed it straight to `flamegraph.pl` or speedscope, or render it
/// with [`crate::admin_view::render_profile`].
pub fn folded() -> String {
    let names = NAMES.read().expect("profiler intern lock");
    let samples = SAMPLES.lock().expect("profiler samples lock");
    let mut out = String::new();
    for (path, count) in samples.iter() {
        let mut first = true;
        for &id in path {
            if !first {
                out.push(';');
            }
            first = false;
            match names.get(id as usize) {
                Some(name) => out.push_str(name),
                None => out.push('?'),
            }
        }
        out.push(' ');
        out.push_str(&count.to_string());
        out.push('\n');
    }
    out
}

/// The Hz the background sampler is running at (0 when not started).
pub fn configured_hz() -> u64 {
    CONFIGURED_HZ.load(Ordering::Relaxed)
}

/// Starts the background sampler at `hz` (clamped to 1..=[`MAX_HZ`]).
/// Idempotent: the first call wins and returns `true`; later calls (and
/// `hz == 0`) are no-ops returning `false`. The sampler thread is a
/// daemon — it never blocks process exit beyond its tick.
pub fn start(hz: u64) -> bool {
    if hz == 0 {
        return false;
    }
    let hz = hz.clamp(1, MAX_HZ);
    if STARTED.swap(true, Ordering::AcqRel) {
        return false;
    }
    CONFIGURED_HZ.store(hz, Ordering::Relaxed);
    let tick = std::time::Duration::from_micros(1_000_000 / hz);
    std::thread::Builder::new()
        .name("lash-obs-profiler".to_string())
        .spawn(move || loop {
            std::thread::sleep(tick);
            sample_once();
        })
        .map(|_| true)
        .unwrap_or_else(|e| {
            eprintln!("lash-obs: profiler thread failed to start: {e}");
            false
        })
}

/// Starts the sampler at the frequency named by [`PROFILE_HZ_ENV`]
/// (default [`DEFAULT_HZ`]; `0` disables). Returns the effective Hz, 0
/// when disabled. This is the daemon's opt-in entry point — libraries do
/// not start sampling on their own.
pub fn start_from_env() -> u64 {
    let hz = std::env::var(PROFILE_HZ_ENV)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(DEFAULT_HZ);
    if hz == 0 {
        return 0;
    }
    start(hz);
    configured_hz()
}
