//! The flight recorder's storage: a fixed-size ring of the last N rendered
//! event lines, always on, written by any thread, snapshotted on demand.
//!
//! ## Algorithm
//!
//! Writers reserve a slot with one `fetch_add` on a global ticket counter
//! (the lock-free part: reservation never blocks and two writers never
//! contend for the same slot), then store the line into the slot behind a
//! per-slot `Mutex`. A reader taking a snapshot locks slots one at a time
//! and keeps entries whose stored ticket is recent enough; a slot being
//! overwritten concurrently simply shows up as either its old or its new
//! line — never a torn mix, because the `(ticket, line)` pair swaps under
//! the slot lock as one unit.
//!
//! The per-slot locks are uncontended unless two writers are `capacity`
//! tickets apart at the same instant, so a push is ~one atomic RMW plus an
//! uncontended lock and a `String` move. This crate forbids `unsafe`, which
//! rules out the classic seqlock-over-byte-buffer design; the slot-mutex
//! variant keeps the hot path allocation-free for the caller (the line is
//! moved in, not copied).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct Slot {
    /// Ticket of the entry held in `line`, or `u64::MAX` when empty.
    ticket: u64,
    line: String,
}

/// A bounded multi-writer ring of rendered event lines. See the module
/// docs for the concurrency story.
pub struct EventRing {
    slots: Vec<Mutex<Slot>>,
    next_ticket: AtomicU64,
}

/// Default capacity of the global registry's ring (overridable via
/// `LASH_OBS_RING_CAPACITY`).
pub const DEFAULT_CAPACITY: usize = 512;

impl EventRing {
    /// A ring holding the most recent `capacity` lines (min 1).
    pub fn new(capacity: usize) -> EventRing {
        let capacity = capacity.max(1);
        EventRing {
            slots: (0..capacity)
                .map(|_| {
                    Mutex::new(Slot {
                        ticket: u64::MAX,
                        line: String::new(),
                    })
                })
                .collect(),
            next_ticket: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total lines ever pushed (≥ lines currently held).
    pub fn pushed(&self) -> u64 {
        self.next_ticket.load(Ordering::Relaxed)
    }

    /// Appends one line, evicting the oldest once full.
    pub fn push(&self, line: String) {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let mut slot = slot.lock().unwrap_or_else(|e| e.into_inner());
        // A slower writer holding an older ticket for this slot must not
        // clobber a newer entry that already lapped it.
        if slot.ticket == u64::MAX || slot.ticket < ticket {
            slot.ticket = ticket;
            slot.line = line;
        }
    }

    /// The lines currently held, oldest first. Lines pushed concurrently
    /// with the snapshot may or may not be included, but every returned
    /// line is intact.
    pub fn snapshot(&self) -> Vec<String> {
        let mut entries: Vec<(u64, String)> = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let slot = slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.ticket != u64::MAX {
                entries.push((slot.ticket, slot.line.clone()));
            }
        }
        entries.sort_unstable_by_key(|(ticket, _)| *ticket);
        entries.into_iter().map(|(_, line)| line).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_n_in_order() {
        let ring = EventRing::new(4);
        assert!(ring.snapshot().is_empty());
        for i in 0..10 {
            ring.push(format!("line-{i}"));
        }
        assert_eq!(ring.pushed(), 10);
        assert_eq!(
            ring.snapshot(),
            vec!["line-6", "line-7", "line-8", "line-9"]
        );
    }

    #[test]
    fn capacity_floor_is_one() {
        let ring = EventRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push("a".into());
        ring.push("b".into());
        assert_eq!(ring.snapshot(), vec!["b"]);
    }
}
