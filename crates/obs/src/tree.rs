//! Span-forest reconstruction and rendering: turns the flat JSONL event
//! stream back into per-trace trees and renders them as the indented
//! `obs trace-view` listing, with total/self wall time per span and the
//! hottest root-to-leaf path flagged.

use crate::trace::TraceCtx;
use crate::validate::ParsedEvent;
use std::collections::BTreeMap;

/// One span in a reconstructed trace tree.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// Span name (`mine.job`, `mapreduce.map_task`, ...).
    pub name: String,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (0 for the root).
    pub parent_id: u64,
    /// Emission timestamp (span *end*, since spans emit on drop).
    pub ts_us: u64,
    /// Total wall time of the span.
    pub dur_us: u64,
    /// Child indices into [`Trace::nodes`].
    pub children: Vec<usize>,
}

/// One trace: every span that shared a `trace_id`, linked into a tree.
#[derive(Clone, Debug)]
pub struct Trace {
    /// The shared trace id.
    pub trace_id: u64,
    /// All spans, in emission order. Tree edges are index-based.
    pub nodes: Vec<SpanNode>,
    /// Indices of parentless spans (exactly one for a valid stream).
    pub roots: Vec<usize>,
}

impl Trace {
    /// Wall time not covered by a span's children. Saturates at zero:
    /// parallel children (e.g. map tasks under a phase span) can sum past
    /// their parent.
    pub fn self_us(&self, node: usize) -> u64 {
        let n = &self.nodes[node];
        let children: u64 = n.children.iter().map(|&c| self.nodes[c].dur_us).sum();
        n.dur_us.saturating_sub(children)
    }

    /// The root-to-leaf path that follows the longest-duration child at
    /// every step — where the wall clock actually went.
    pub fn hottest_path(&self) -> Vec<usize> {
        let Some(&start) = self.roots.iter().max_by_key(|&&r| self.nodes[r].dur_us) else {
            return Vec::new();
        };
        let mut path = vec![start];
        let mut at = start;
        while let Some(&next) = self.nodes[at]
            .children
            .iter()
            .max_by_key(|&&c| self.nodes[c].dur_us)
        {
            path.push(next);
            at = next;
        }
        path
    }
}

/// Groups span events by trace and links parents to children. Traces are
/// returned in first-appearance order; within a trace, children are
/// ordered by timestamp (ties by emission order). Spans whose parent is
/// missing from the stream are kept as extra roots rather than dropped,
/// so the renderer still shows everything on a malformed stream.
pub fn build_forest(events: &[ParsedEvent]) -> Vec<Trace> {
    let mut order: Vec<u64> = Vec::new();
    let mut traces: BTreeMap<u64, Trace> = BTreeMap::new();
    for event in events {
        let (Some(ctx), "span") = (event.ctx, event.event.as_str()) else {
            continue;
        };
        let trace = traces.entry(ctx.trace_id).or_insert_with(|| {
            order.push(ctx.trace_id);
            Trace {
                trace_id: ctx.trace_id,
                nodes: Vec::new(),
                roots: Vec::new(),
            }
        });
        trace.nodes.push(SpanNode {
            name: event.name.clone(),
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
            ts_us: event.ts_us,
            dur_us: event.dur_us.unwrap_or(0),
            children: Vec::new(),
        });
    }
    for trace in traces.values_mut() {
        let by_id: BTreeMap<u64, usize> = trace
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.span_id, i))
            .collect();
        for i in 0..trace.nodes.len() {
            let parent_id = trace.nodes[i].parent_id;
            match by_id.get(&parent_id).copied() {
                Some(p) if parent_id != 0 && p != i => trace.nodes[p].children.push(i),
                _ => trace.roots.push(i),
            }
        }
        let keys: Vec<(u64, u64)> = trace.nodes.iter().map(|n| (n.ts_us, n.span_id)).collect();
        for node in 0..trace.nodes.len() {
            trace.nodes[node].children.sort_by_key(|&c| keys[c]);
        }
        trace.roots.sort_by_key(|&r| keys[r]);
    }
    order
        .into_iter()
        .map(|id| traces.remove(&id).expect("trace"))
        .collect()
}

/// Renders `µs` as a human-scaled duration, right-aligned to 10 columns.
fn fmt_us(us: u64) -> String {
    let text = if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    };
    format!("{text:>10}")
}

/// Renders one trace as an indented tree:
///
/// ```text
/// trace 4be1… · 4 spans · root mine.job
/// mine.job                                total   152.30ms  self     1.20ms  ◆
/// └─ mapreduce.job                        total   130.00ms  self    10.00ms  ◆
///    ├─ mapreduce.map                     total    80.00ms  self    80.00ms  ◆
///    └─ mapreduce.reduce                  total    40.00ms  self    40.00ms
/// ```
///
/// `◆` flags the hottest path (see [`Trace::hottest_path`]).
pub fn render_trace(trace: &Trace) -> String {
    let mut out = String::new();
    let root_name = trace
        .roots
        .first()
        .map(|&r| trace.nodes[r].name.as_str())
        .unwrap_or("<empty>");
    out.push_str(&format!(
        "trace {} · {} spans · root {}\n",
        TraceCtx::format_id(trace.trace_id),
        trace.nodes.len(),
        root_name,
    ));
    let hot: Vec<bool> = {
        let mut hot = vec![false; trace.nodes.len()];
        for i in trace.hottest_path() {
            hot[i] = true;
        }
        hot
    };
    for (i, &root) in trace.roots.iter().enumerate() {
        if i > 0 {
            out.push_str("(extra root — malformed stream?)\n");
        }
        render_node(trace, root, "", "", &hot, &mut out);
    }
    out
}

fn render_node(
    trace: &Trace,
    node: usize,
    lead: &str,
    child_lead: &str,
    hot: &[bool],
    out: &mut String,
) {
    let n = &trace.nodes[node];
    let label = format!("{lead}{}", n.name);
    out.push_str(&format!(
        "{label:<40} total {}  self {}{}\n",
        fmt_us(n.dur_us),
        fmt_us(trace.self_us(node)),
        if hot[node] { "  ◆" } else { "" },
    ));
    for (i, &child) in n.children.iter().enumerate() {
        let last = i + 1 == n.children.len();
        let (branch, cont) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        render_node(
            trace,
            child,
            &format!("{child_lead}{branch}"),
            &format!("{child_lead}{cont}"),
            hot,
            out,
        );
    }
}

/// Renders every trace in `traces`, largest (most spans) first, separated
/// by blank lines. `limit` caps how many traces are rendered (0 = all).
pub fn render_forest(traces: &[Trace], limit: usize) -> String {
    let mut order: Vec<&Trace> = traces.iter().collect();
    order.sort_by_key(|t| std::cmp::Reverse(t.nodes.len()));
    if limit > 0 {
        order.truncate(limit);
    }
    let mut out = String::new();
    for (i, trace) in order.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&render_trace(trace));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, trace: u64, id: u64, parent: u64, ts: u64, dur: u64) -> ParsedEvent {
        ParsedEvent {
            event: "span".to_string(),
            name: name.to_string(),
            ts_us: ts,
            dur_us: Some(dur),
            ctx: Some(TraceCtx {
                trace_id: trace,
                span_id: id,
                parent_id: parent,
            }),
        }
    }

    fn sample() -> Vec<ParsedEvent> {
        vec![
            span("map", 7, 2, 1, 10, 80),
            span("reduce", 7, 3, 1, 20, 40),
            span("job", 7, 1, 0, 30, 150),
            // A second, smaller trace.
            span("seal", 9, 4, 0, 40, 5),
        ]
    }

    #[test]
    fn builds_linked_forest_with_self_times() {
        let forest = build_forest(&sample());
        assert_eq!(forest.len(), 2);
        let t = &forest[0];
        assert_eq!(t.trace_id, 7);
        assert_eq!(t.roots.len(), 1);
        let root = t.roots[0];
        assert_eq!(t.nodes[root].name, "job");
        assert_eq!(t.nodes[root].children.len(), 2);
        assert_eq!(t.self_us(root), 150 - 80 - 40);
        // Children ordered by timestamp: map before reduce.
        let first = t.nodes[root].children[0];
        assert_eq!(t.nodes[first].name, "map");
        // Hottest path descends into map.
        let hot: Vec<&str> = t
            .hottest_path()
            .into_iter()
            .map(|i| t.nodes[i].name.as_str())
            .collect();
        assert_eq!(hot, ["job", "map"]);
    }

    #[test]
    fn self_time_saturates_for_parallel_children() {
        let events = vec![
            span("a", 1, 2, 1, 10, 60),
            span("b", 1, 3, 1, 10, 60),
            span("phase", 1, 1, 0, 20, 70), // children overlap: 120 > 70
        ];
        let t = &build_forest(&events)[0];
        assert_eq!(t.self_us(t.roots[0]), 0);
    }

    #[test]
    fn renders_tree_shape_and_flags_hot_path() {
        let forest = build_forest(&sample());
        let text = render_trace(&forest[0]);
        assert!(text.contains("· 3 spans · root job"), "{text}");
        assert!(text.contains("├─ map"), "{text}");
        assert!(text.contains("└─ reduce"), "{text}");
        // job and map are on the hottest path; reduce is not.
        let hot_lines: Vec<&str> = text.lines().filter(|l| l.ends_with('◆')).collect();
        assert_eq!(hot_lines.len(), 2, "{text}");
        assert!(hot_lines.iter().any(|l| l.contains("job")));
        assert!(hot_lines.iter().any(|l| l.contains("map")));
        // Forest rendering puts the bigger trace first and respects limit.
        let all = render_forest(&forest, 0);
        assert!(all.contains("root job") && all.contains("root seal"));
        let top = render_forest(&forest, 1);
        assert!(top.contains("root job") && !top.contains("root seal"));
    }

    #[test]
    fn orphan_spans_become_extra_roots() {
        let events = vec![
            span("orphan", 1, 5, 99, 10, 5),
            span("root", 1, 1, 0, 20, 50),
        ];
        let t = &build_forest(&events)[0];
        assert_eq!(t.roots.len(), 2);
        let text = render_trace(t);
        assert!(text.contains("orphan"), "{text}");
        assert!(text.contains("malformed"), "{text}");
    }
}
