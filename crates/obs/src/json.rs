//! Minimal JSON support: the escaper the event emitter uses, and a small
//! recursive-descent parser so tests and the CI validator can prove every
//! emitted line is well-formed without pulling in `serde` (the build
//! environment is offline).

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// and control characters).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object, or `None`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one JSON document. Errors carry the byte offset of the problem.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Value::Number)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not reassembled; they only
                            // appear if a writer emits them, which ours
                            // never does.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control character at byte {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_event_shaped_objects() {
        let v = parse(r#"{"ts_us":123,"event":"span","name":"a.b","dur_us":4,"ok":true}"#)
            .expect("valid");
        assert_eq!(v.get("ts_us").unwrap().as_f64(), Some(123.0));
        assert_eq!(v.get("event").unwrap().as_str(), Some("span"));
        assert_eq!(v.get("dur_us").unwrap(), &Value::Number(4.0));
        assert_eq!(v.get("ok").unwrap(), &Value::Bool(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let mut encoded = String::from("\"");
        escape_into(&mut encoded, original);
        encoded.push('"');
        assert_eq!(parse(&encoded).unwrap(), Value::String(original.into()));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} trailing",
            "\"unterminated",
            "{'single':1}",
            "nul",
            "1e999",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,-2.5,null,{"b":[]}],"c":" "}"#).unwrap();
        let Value::Array(items) = v.get("a").unwrap() else {
            panic!("array expected");
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[1], Value::Number(-2.5));
    }
}
