//! Validation of the JSONL event stream: per-line schema checks plus
//! stream-level referential integrity of the trace graph. Shared by the
//! `obs-validate` binary and the `obs validate` subcommand, and usable
//! directly from tests via [`validate_lines`].
//!
//! ## Checks
//!
//! Per line:
//! * parses as a JSON object with numeric `ts_us`, string `event` and
//!   `name`;
//! * `span` and `slow_op` events carry a non-negative numeric `dur_us`;
//! * `trace_id` / `span_id` / `parent_id`, when present, are well-formed
//!   hex ids, appear together sensibly (`span_id` requires `trace_id`),
//!   and spans always carry a context.
//!
//! Per stream (referential integrity):
//! * no two `span` events share a `span_id` within a trace;
//! * every `parent_id` resolves to a `span` emitted in the same trace;
//! * every trace containing spans has exactly one root (no `parent_id`).
//!
//! The stream-level graph checks assume a *complete* stream. A flight-
//! recorder ring dump (or a daemon's `RecentEvents` admin reply) is a
//! window onto a longer stream — parents and roots may have scrolled out —
//! so those are checked with [`validate_str_schema_only`], which keeps
//! every per-line check but skips the graph.

use crate::json::{self, Value};
use crate::trace::TraceCtx;
use std::collections::BTreeMap;

/// One parsed and schema-checked event line, reduced to the bits the
/// stream-level checks and the [`crate::tree`] builder need.
#[derive(Clone, Debug)]
pub struct ParsedEvent {
    /// The `event` classifier (`span`, `slow_op`, `error`, ...).
    pub event: String,
    /// The `name` of the span or event source.
    pub name: String,
    /// Wall-clock timestamp in microseconds.
    pub ts_us: u64,
    /// `dur_us`, for events that carry one.
    pub dur_us: Option<u64>,
    /// Trace context, for events that carry one (`parent_id` 0 = root).
    pub ctx: Option<TraceCtx>,
}

fn req_str(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing or non-string \"{key}\""))
}

fn opt_id(v: &Value, key: &str) -> Result<Option<u64>, String> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::String(s)) => TraceCtx::parse_id(s)
            .map(Some)
            .ok_or_else(|| format!("\"{key}\" is not a hex id: {s:?}")),
        Some(_) => Err(format!("\"{key}\" must be a hex-string id")),
    }
}

/// Parses and schema-checks one line. Returns the reduced event, or a
/// message describing the first violation.
pub fn validate_line(line: &str) -> Result<ParsedEvent, String> {
    let v = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let ts_us = v
        .get("ts_us")
        .and_then(Value::as_f64)
        .ok_or("missing or non-numeric \"ts_us\"")?;
    if ts_us < 0.0 {
        return Err("negative \"ts_us\"".to_string());
    }
    let event = req_str(&v, "event")?;
    let name = req_str(&v, "name")?;
    let dur_us = match v.get("dur_us") {
        None => None,
        Some(d) => {
            let d = d.as_f64().ok_or("non-numeric \"dur_us\"")?;
            if d < 0.0 {
                return Err("negative \"dur_us\"".to_string());
            }
            Some(d as u64)
        }
    };
    if (event == "span" || event == "slow_op") && dur_us.is_none() {
        return Err(format!("\"{event}\" event without \"dur_us\""));
    }

    let trace_id = opt_id(&v, "trace_id")?;
    let span_id = opt_id(&v, "span_id")?;
    let parent_id = opt_id(&v, "parent_id")?;
    let ctx = match (trace_id, span_id) {
        (Some(trace_id), Some(span_id)) => Some(TraceCtx {
            trace_id,
            span_id,
            parent_id: parent_id.unwrap_or(0),
        }),
        (None, None) => {
            if parent_id.is_some() {
                return Err("\"parent_id\" without \"trace_id\"/\"span_id\"".to_string());
            }
            None
        }
        _ => {
            return Err("\"trace_id\" and \"span_id\" must appear together".to_string());
        }
    };
    if event == "span" && ctx.is_none() {
        return Err("\"span\" event without trace context".to_string());
    }
    if event == "admin" {
        match v.get("kind").and_then(Value::as_str) {
            Some(kind) if !kind.is_empty() => {}
            _ => return Err("\"admin\" event without a string \"kind\"".to_string()),
        }
    }
    Ok(ParsedEvent {
        event,
        name,
        ts_us: ts_us as u64,
        dur_us,
        ctx,
    })
}

/// Aggregate results of a stream validation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Total event lines checked.
    pub events: u64,
    /// Lines with `event == "span"`.
    pub spans: u64,
    /// Lines with `event == "slow_op"`.
    pub slow_ops: u64,
    /// Lines with `event == "admin"` (admin-lane requests answered).
    pub admins: u64,
    /// Distinct traces seen (events carrying a `trace_id`).
    pub traces: u64,
}

#[derive(Default)]
struct TraceCheck {
    /// span_id → first line number that declared it.
    spans: BTreeMap<u64, usize>,
    /// (line, parent_id) references awaiting resolution.
    parents: Vec<(usize, u64)>,
    roots: u64,
}

/// Validates a whole stream: every line must pass [`validate_line`], and
/// the trace graph must be referentially intact. `lines` yields
/// `(line_number, line)` pairs (1-based numbers make for useful errors);
/// blank lines are the caller's to skip. Returns the parsed events and
/// stats, or the first violation found.
pub fn validate_lines<'a>(
    lines: impl IntoIterator<Item = (usize, &'a str)>,
) -> Result<(Vec<ParsedEvent>, StreamStats), String> {
    validate_lines_with(lines, true)
}

/// [`validate_lines`] with the stream-level graph checks made optional:
/// pass `check_graph = false` for *windowed* streams (flight-recorder
/// dumps, `RecentEvents` admin replies) where parents and roots may have
/// scrolled out of the ring. Per-line schema checks always run.
pub fn validate_lines_with<'a>(
    lines: impl IntoIterator<Item = (usize, &'a str)>,
    check_graph: bool,
) -> Result<(Vec<ParsedEvent>, StreamStats), String> {
    let mut stats = StreamStats::default();
    let mut events = Vec::new();
    let mut traces: BTreeMap<u64, TraceCheck> = BTreeMap::new();
    for (number, line) in lines {
        let parsed = validate_line(line).map_err(|e| format!("line {number}: {e}"))?;
        stats.events += 1;
        match parsed.event.as_str() {
            "span" => stats.spans += 1,
            "slow_op" => stats.slow_ops += 1,
            "admin" => stats.admins += 1,
            _ => {}
        }
        if let Some(ctx) = parsed.ctx {
            let check = traces.entry(ctx.trace_id).or_default();
            if parsed.event == "span" {
                if let Some(first) = check.spans.insert(ctx.span_id, number) {
                    return Err(format!(
                        "line {number}: duplicate span id {} in trace {} (first on line {first})",
                        TraceCtx::format_id(ctx.span_id),
                        TraceCtx::format_id(ctx.trace_id),
                    ));
                }
                if ctx.parent_id == 0 {
                    check.roots += 1;
                } else {
                    check.parents.push((number, ctx.parent_id));
                }
            }
        }
        events.push(parsed);
    }
    stats.traces = traces.len() as u64;
    if !check_graph {
        return Ok((events, stats));
    }
    for (trace_id, check) in &traces {
        for (number, parent_id) in &check.parents {
            if !check.spans.contains_key(parent_id) {
                return Err(format!(
                    "line {number}: parent span {} was never emitted in trace {}",
                    TraceCtx::format_id(*parent_id),
                    TraceCtx::format_id(*trace_id),
                ));
            }
        }
        if !check.spans.is_empty() && check.roots != 1 {
            return Err(format!(
                "trace {} has {} root spans (want exactly 1)",
                TraceCtx::format_id(*trace_id),
                check.roots,
            ));
        }
    }
    Ok((events, stats))
}

/// [`validate_lines`] over a string buffer, skipping blank lines.
pub fn validate_str(input: &str) -> Result<(Vec<ParsedEvent>, StreamStats), String> {
    validate_lines(numbered_lines(input))
}

/// Schema-only validation over a string buffer: every per-line check, no
/// trace-graph integrity — for ring dumps and `RecentEvents` scrapes,
/// which are windows onto a longer stream.
pub fn validate_str_schema_only(input: &str) -> Result<(Vec<ParsedEvent>, StreamStats), String> {
    validate_lines_with(numbered_lines(input), false)
}

fn numbered_lines(input: &str) -> impl Iterator<Item = (usize, &str)> {
    input
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| (i + 1, l))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(event: &str, name: &str, ids: &str, dur: Option<u64>) -> String {
        let dur = dur.map(|d| format!(",\"dur_us\":{d}")).unwrap_or_default();
        format!("{{\"ts_us\":1,\"event\":\"{event}\",\"name\":\"{name}\"{ids}{dur}}}")
    }

    fn ids(trace: &str, span: &str, parent: Option<&str>) -> String {
        let parent = parent
            .map(|p| format!(",\"parent_id\":\"{p}\""))
            .unwrap_or_default();
        format!(",\"trace_id\":\"{trace}\",\"span_id\":\"{span}\"{parent}")
    }

    #[test]
    fn accepts_a_wellformed_tree() {
        let input = [
            line("span", "child", &ids("a1", "2", Some("1")), Some(5)),
            line("span", "child2", &ids("a1", "3", Some("1")), Some(6)),
            line("slow_op", "child2", &ids("a1", "3", Some("1")), Some(6)),
            line("span", "root", &ids("a1", "1", None), Some(20)),
            line("event", "index.swap", "", None),
        ]
        .join("\n");
        let (events, stats) = validate_str(&input).expect("valid stream");
        assert_eq!(events.len(), 5);
        assert_eq!(
            stats,
            StreamStats {
                events: 5,
                spans: 3,
                slow_ops: 1,
                admins: 0,
                traces: 1
            }
        );
    }

    #[test]
    fn admin_events_require_a_kind_and_are_counted() {
        let err = validate_line("{\"ts_us\":1,\"event\":\"admin\",\"name\":\"serve.admin\"}")
            .unwrap_err();
        assert!(err.contains("kind"), "{err}");
        let input =
            "{\"ts_us\":1,\"event\":\"admin\",\"name\":\"serve.admin\",\"kind\":\"health\"}";
        let (_, stats) = validate_str(input).expect("valid admin event");
        assert_eq!(stats.admins, 1);
    }

    #[test]
    fn schema_only_mode_accepts_a_truncated_window() {
        // A child span whose parent scrolled out of the ring: the full
        // graph check rejects it, the windowed check accepts it.
        let input = line("span", "orphan", &ids("a1", "2", Some("99")), Some(5));
        assert!(validate_str(&input).is_err());
        let (events, stats) = validate_str_schema_only(&input).expect("schema-only accepts");
        assert_eq!(events.len(), 1);
        assert_eq!(stats.spans, 1);
        // Schema violations still fail.
        assert!(validate_str_schema_only("{\"event\":\"span\"}").is_err());
    }

    #[test]
    fn rejects_unresolved_parent() {
        let input = [
            line("span", "orphan", &ids("a1", "2", Some("99")), Some(5)),
            line("span", "root", &ids("a1", "1", None), Some(20)),
        ]
        .join("\n");
        let err = validate_str(&input).unwrap_err();
        assert!(err.contains("never emitted"), "{err}");
    }

    #[test]
    fn rejects_duplicate_span_ids() {
        let input = [
            line("span", "a", &ids("a1", "1", None), Some(5)),
            line("span", "b", &ids("a1", "1", None), Some(5)),
        ]
        .join("\n");
        let err = validate_str(&input).unwrap_err();
        assert!(err.contains("duplicate span id"), "{err}");
    }

    #[test]
    fn rejects_multiple_roots_in_one_trace() {
        let input = [
            line("span", "a", &ids("a1", "1", None), Some(5)),
            line("span", "b", &ids("a1", "2", None), Some(5)),
        ]
        .join("\n");
        let err = validate_str(&input).unwrap_err();
        assert!(err.contains("root spans"), "{err}");
    }

    #[test]
    fn rejects_schema_violations() {
        for (bad, want) in [
            ("{\"event\":\"span\"}", "ts_us"),
            ("{\"ts_us\":1,\"event\":\"span\"}", "name"),
            (
                "{\"ts_us\":1,\"event\":\"span\",\"name\":\"x\",\"trace_id\":\"a\",\"span_id\":\"1\"}",
                "dur_us",
            ),
            (
                "{\"ts_us\":1,\"event\":\"span\",\"name\":\"x\",\"dur_us\":1}",
                "trace context",
            ),
            (
                "{\"ts_us\":1,\"event\":\"e\",\"name\":\"x\",\"trace_id\":\"a\"}",
                "together",
            ),
            (
                "{\"ts_us\":1,\"event\":\"e\",\"name\":\"x\",\"dur_us\":-3}",
                "negative",
            ),
            (
                "{\"ts_us\":1,\"event\":\"e\",\"name\":\"x\",\"trace_id\":\"zz\",\"span_id\":\"1\"}",
                "hex id",
            ),
            ("not json", "JSON"),
        ] {
            let err = validate_line(bad).unwrap_err();
            assert!(err.contains(want), "for {bad}: {err}");
        }
    }
}
