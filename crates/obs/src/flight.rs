//! Flight-recorder dumps: when a typed error surfaces from a layer's
//! top-level operation (a corrupt shuffle run, a store decode failure, an
//! index that fails validation), the last-seconds event context from the
//! global registry's ring buffer is written to a JSONL file automatically,
//! so CI failures and daemon crashes come with their history attached.
//!
//! The dump fires **once per process** (a latch): a corruption that
//! cascades through retries would otherwise spray dozens of identical
//! dumps. Tests that intentionally force errors re-arm the latch with
//! [`rearm`]. The dump directory defaults to the system temp dir and can
//! be pinned with `LASH_OBS_FLIGHT_DIR` or [`set_dump_dir`].

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::FieldValue;

/// Environment variable naming the directory flight-recorder dumps are
/// written to. Unset: the system temp directory.
pub const FLIGHT_DIR_ENV: &str = "LASH_OBS_FLIGHT_DIR";

static ARMED: AtomicBool = AtomicBool::new(true);
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static LAST_DUMP: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Records that a typed error surfaced from `layer` (e.g.
/// `"mapreduce.job"`). Emits an `error` event — carrying the ambient trace
/// context, so the dump names the failing trace — and, if the once-per-
/// process latch is still armed, writes the ring buffer to a dump file.
///
/// `detail` is truncated to 240 bytes: error strings can embed whole
/// paths and payload fragments.
pub fn record_error(layer: &str, detail: &str) {
    let detail = truncate(detail, 240);
    crate::global().emit_event("error", layer, &[("detail", FieldValue::from(detail))]);
    if ARMED.swap(false, Ordering::SeqCst) {
        dump(layer);
    }
}

/// Re-arms the once-per-process dump latch. Test-support: suites that
/// force errors on purpose call this so a later genuine failure still
/// dumps, and so the dump under test is deterministically theirs. The
/// daemon also re-arms between lifecycle rounds, so each refresh round
/// gets its own first-error dump instead of round 1 consuming the latch
/// for the life of the process.
pub fn rearm() {
    ARMED.store(true, Ordering::SeqCst);
}

/// Dumps the ring unconditionally, ignoring (and consuming) the once-per-
/// process latch — the shutdown/panic-hook path, where "the last events
/// before exit" is the whole point and no later dump will come. Returns
/// the dump path if a file was written.
pub fn dump_now(trigger: &str) -> Option<PathBuf> {
    ARMED.store(false, Ordering::SeqCst);
    dump(trigger);
    last_dump()
}

/// Overrides the dump directory for this process (wins over
/// [`FLIGHT_DIR_ENV`]). Pass `None` to revert to the default.
pub fn set_dump_dir(dir: Option<PathBuf>) {
    *DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// The most recent dump written by this process, if any.
pub fn last_dump() -> Option<PathBuf> {
    LAST_DUMP.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

fn dump_dir() -> PathBuf {
    if let Some(dir) = DUMP_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone() {
        return dir;
    }
    match std::env::var_os(FLIGHT_DIR_ENV) {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

fn dump(trigger: &str) {
    let lines = crate::global().dump_recent();
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dump_dir().join(format!("lash-flight-{}-{}.jsonl", std::process::id(), seq));
    let mut out = String::with_capacity(lines.iter().map(|l| l.len() + 1).sum::<usize>() + 64);
    for line in &lines {
        out.push_str(line);
        out.push('\n');
    }
    let written = std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(out.as_bytes()).and_then(|()| f.flush()))
        .is_ok();
    if written {
        eprintln!(
            "lash-obs: flight recorder dumped {} events to {} (trigger: {trigger})",
            lines.len(),
            path.display()
        );
        *LAST_DUMP.lock().unwrap_or_else(|e| e.into_inner()) = Some(path);
    }
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        return s.to_string();
    }
    let mut end = max;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_respects_char_boundaries() {
        assert_eq!(truncate("short", 240), "short");
        let long = "é".repeat(200); // 400 bytes
        let t = truncate(&long, 241); // 241 splits a 2-byte char
        assert!(t.ends_with('…'));
        assert!(t.len() <= 244);
    }
}
