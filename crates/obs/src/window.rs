//! Sliding-window metrics: counters and log2 histograms that answer
//! "over the last N seconds", not "since the process started".
//!
//! ## Model
//!
//! A windowed metric is a fixed ring of time buckets, each one
//! [`WindowConfig::bucket_width_us`] wide. A write lands in the bucket of
//! the current *epoch* (`now / width`); the slot it maps to
//! (`epoch % buckets`) is lazily recycled when its stored epoch is stale —
//! one CAS winner clears the slot, everyone else proceeds with plain
//! relaxed adds, so the write path stays lock-free. A readout sums every
//! slot whose epoch is still inside the window, which makes expiry
//! automatic: data older than the window is either overwritten or ignored.
//!
//! ## Clocks
//!
//! Time is injected. Every handle carries a [`WindowClock`] — monotonic
//! (an `Instant` origin) in production, [`WindowClock::manual`] in tests —
//! and every operation also has an `_at(now_us, ...)` twin taking the
//! microsecond timestamp explicitly, so rotation and expiry are
//! deterministically testable without sleeping.
//!
//! ## Accuracy
//!
//! Windowed percentiles carry the same log2 quantization as the process-
//! lifetime [`crate::Histogram`] (a p99 is exact to within one power of
//! two, capped at the observed in-window max). The window itself is
//! bucket-granular: it covers the last `buckets` epochs *including the
//! partially-elapsed current one*, so the effective span breathes between
//! `(buckets-1)·width` and `buckets·width`. Concurrent rotation is
//! best-effort: a writer racing the slot recycler can lose its one
//! observation into the cleared slot — fine for metrics, pinned exact in
//! the single-threaded deterministic tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use crate::{bucket_index, HistogramSnapshot, NUM_BUCKETS};

/// Ring size of a default-configured window: 60 buckets.
pub const DEFAULT_WINDOW_BUCKETS: usize = 60;

/// Bucket width of a default-configured window: one second.
pub const DEFAULT_BUCKET_WIDTH_US: u64 = 1_000_000;

/// Shape of a windowed metric: how wide each time bucket is and how many
/// the ring holds. The default (60 × 1 s) answers "over the last minute".
#[derive(Clone, Copy, Debug)]
pub struct WindowConfig {
    /// Width of one time bucket in microseconds (clamped to ≥ 1).
    pub bucket_width_us: u64,
    /// Number of buckets in the ring (clamped to ≥ 2: one current, at
    /// least one settled).
    pub buckets: usize,
}

impl Default for WindowConfig {
    fn default() -> WindowConfig {
        WindowConfig {
            bucket_width_us: DEFAULT_BUCKET_WIDTH_US,
            buckets: DEFAULT_WINDOW_BUCKETS,
        }
    }
}

impl WindowConfig {
    fn width(&self) -> u64 {
        self.bucket_width_us.max(1)
    }

    fn len(&self) -> usize {
        self.buckets.max(2)
    }

    /// The full window span in microseconds (`buckets × width`).
    pub fn window_us(&self) -> u64 {
        self.width().saturating_mul(self.len() as u64)
    }
}

#[derive(Clone, Debug)]
enum ClockInner {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

/// The time source of a windowed metric. Cloning shares the underlying
/// clock: every handle cloned from a [`WindowClock::manual`] clock observes
/// the same [`ManualClock`] advances.
#[derive(Clone, Debug)]
pub struct WindowClock {
    inner: ClockInner,
}

impl Default for WindowClock {
    fn default() -> WindowClock {
        WindowClock::monotonic()
    }
}

impl WindowClock {
    /// A real clock: microseconds since this call.
    pub fn monotonic() -> WindowClock {
        WindowClock {
            inner: ClockInner::Monotonic(Instant::now()),
        }
    }

    /// A test clock starting at 0; advance it through the returned handle.
    pub fn manual() -> (WindowClock, ManualClock) {
        let cell = Arc::new(AtomicU64::new(0));
        (
            WindowClock {
                inner: ClockInner::Manual(Arc::clone(&cell)),
            },
            ManualClock { cell },
        )
    }

    /// The current time in microseconds.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            ClockInner::Monotonic(origin) => {
                origin.elapsed().as_micros().min(u64::MAX as u128) as u64
            }
            ClockInner::Manual(cell) => cell.load(Ordering::Relaxed),
        }
    }
}

/// The writable half of a [`WindowClock::manual`] pair.
#[derive(Clone, Debug)]
pub struct ManualClock {
    cell: Arc<AtomicU64>,
}

impl ManualClock {
    /// Sets the clock to an absolute microsecond timestamp.
    pub fn set(&self, now_us: u64) {
        self.cell.store(now_us, Ordering::Relaxed);
    }

    /// Advances the clock by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        self.cell.fetch_add(delta_us, Ordering::Relaxed);
    }

    /// The current reading.
    pub fn now_us(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One time bucket of a [`WindowedCounter`].
#[derive(Debug)]
struct CounterSlot {
    epoch: AtomicU64,
    count: AtomicU64,
}

#[derive(Debug)]
struct CounterInner {
    width_us: u64,
    slots: Box<[CounterSlot]>,
}

/// A counter whose readout covers only the last
/// [`WindowConfig::window_us`] microseconds. Writes are lock-free (one
/// epoch check plus a relaxed add; a stale slot costs one CAS to recycle).
#[derive(Clone, Debug)]
pub struct WindowedCounter {
    inner: Arc<CounterInner>,
    clock: WindowClock,
}

impl WindowedCounter {
    /// A windowed counter with the given shape and clock.
    pub fn new(config: WindowConfig, clock: WindowClock) -> WindowedCounter {
        WindowedCounter {
            inner: Arc::new(CounterInner {
                width_us: config.width(),
                slots: (0..config.len())
                    .map(|_| CounterSlot {
                        epoch: AtomicU64::new(0),
                        count: AtomicU64::new(0),
                    })
                    .collect(),
            }),
            clock,
        }
    }

    /// The full window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.inner.width_us * self.inner.slots.len() as u64
    }

    /// Adds `n` at the clock's current time.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_at(self.clock.now_us(), n);
    }

    /// Adds one at the clock's current time.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` at an explicit timestamp (the deterministic-test form).
    pub fn add_at(&self, now_us: u64, n: u64) {
        let epoch = now_us / self.inner.width_us;
        let slot = &self.inner.slots[(epoch % self.inner.slots.len() as u64) as usize];
        let seen = slot.epoch.load(Ordering::Acquire);
        if seen != epoch {
            // One winner recycles the slot for the new epoch; losers (and
            // the winner) then add normally. A concurrent reader may
            // transiently see the new epoch with the old count — a
            // one-readout blip, acceptable for metrics.
            if slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                slot.count.store(0, Ordering::Release);
            }
        }
        slot.count.fetch_add(n, Ordering::Relaxed);
    }

    /// The count over the window ending at the clock's current time.
    pub fn total(&self) -> u64 {
        self.total_at(self.clock.now_us())
    }

    /// The count over the window ending at `now_us`.
    pub fn total_at(&self, now_us: u64) -> u64 {
        let epoch = now_us / self.inner.width_us;
        let len = self.inner.slots.len() as u64;
        self.inner
            .slots
            .iter()
            .filter(|slot| {
                let e = slot.epoch.load(Ordering::Acquire);
                e <= epoch && epoch - e < len
            })
            .map(|slot| slot.count.load(Ordering::Relaxed))
            .sum()
    }
}

/// One time bucket of a [`WindowedHistogram`].
#[derive(Debug)]
struct HistogramSlot {
    epoch: AtomicU64,
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

#[derive(Debug)]
struct HistogramInner {
    width_us: u64,
    slots: Box<[HistogramSlot]>,
}

/// A log2 histogram whose snapshot covers only the last
/// [`WindowConfig::window_us`] microseconds, so its percentiles are "p99
/// over the last minute". Shares the bucket scheme (and
/// [`HistogramSnapshot`] readout) with the lifetime [`crate::Histogram`].
#[derive(Clone, Debug)]
pub struct WindowedHistogram {
    inner: Arc<HistogramInner>,
    clock: WindowClock,
}

impl WindowedHistogram {
    /// A windowed histogram with the given shape and clock.
    pub fn new(config: WindowConfig, clock: WindowClock) -> WindowedHistogram {
        WindowedHistogram {
            inner: Arc::new(HistogramInner {
                width_us: config.width(),
                slots: (0..config.len())
                    .map(|_| HistogramSlot {
                        epoch: AtomicU64::new(0),
                        buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                        sum: AtomicU64::new(0),
                        max: AtomicU64::new(0),
                    })
                    .collect(),
            }),
            clock,
        }
    }

    /// The full window span in microseconds.
    pub fn window_us(&self) -> u64 {
        self.inner.width_us * self.inner.slots.len() as u64
    }

    /// Records one observation at the clock's current time.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_at(self.clock.now_us(), value);
    }

    /// Records a duration in microseconds at the clock's current time.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one observation at an explicit timestamp.
    pub fn record_at(&self, now_us: u64, value: u64) {
        let epoch = now_us / self.inner.width_us;
        let slot = &self.inner.slots[(epoch % self.inner.slots.len() as u64) as usize];
        let seen = slot.epoch.load(Ordering::Acquire);
        if seen != epoch
            && slot
                .epoch
                .compare_exchange(seen, epoch, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        {
            for bucket in &slot.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            slot.sum.store(0, Ordering::Relaxed);
            slot.max.store(0, Ordering::Release);
        }
        slot.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(value, Ordering::Relaxed);
        slot.max.fetch_max(value, Ordering::Relaxed);
    }

    /// The observations inside the window ending at the clock's current
    /// time, as a [`HistogramSnapshot`] (percentiles included).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.snapshot_at(self.clock.now_us())
    }

    /// The observations inside the window ending at `now_us`.
    pub fn snapshot_at(&self, now_us: u64) -> HistogramSnapshot {
        let epoch = now_us / self.inner.width_us;
        let len = self.inner.slots.len() as u64;
        let mut buckets = [0u64; NUM_BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for slot in self.inner.slots.iter() {
            let e = slot.epoch.load(Ordering::Acquire);
            if e > epoch || epoch - e >= len {
                continue;
            }
            for (acc, bucket) in buckets.iter_mut().zip(slot.buckets.iter()) {
                *acc += bucket.load(Ordering::Relaxed);
            }
            sum += slot.sum.load(Ordering::Relaxed);
            max = max.max(slot.max.load(Ordering::Relaxed));
        }
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum,
            max,
            buckets,
        }
    }
}

/// One windowed metric's readout, ready for an admin reply or a `top`
/// view: rates come from `count / window_us`, latency percentiles from the
/// `p*` fields. Counters report `count` only (the `p*`/`max`/`sum` fields
/// stay 0).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WindowStat {
    /// The metric's registry name (`query.support_us`, `query.requests`).
    pub name: String,
    /// The window span the numbers cover, in microseconds.
    pub window_us: u64,
    /// Observations (or counted events) inside the window.
    pub count: u64,
    /// Sum of observed values inside the window (histograms only).
    pub sum: u64,
    /// In-window p50 (histograms only).
    pub p50: u64,
    /// In-window p95 (histograms only).
    pub p95: u64,
    /// In-window p99 (histograms only).
    pub p99: u64,
    /// Largest in-window observation (histograms only).
    pub max: u64,
}

impl WindowStat {
    /// Events per second over the window, using `active_us` (typically
    /// `min(window_us, process uptime)`) as the denominator so a freshly
    /// started process does not under-report its rate.
    pub fn rate_per_sec(&self, active_us: u64) -> f64 {
        let span = self.window_us.min(active_us.max(1)).max(1);
        self.count as f64 * 1_000_000.0 / span as f64
    }
}

/// The registry's windowed-metric table: named counters and histograms
/// sharing one clock and shape. Lookups mirror the lifetime metric maps
/// (read-locked probe, registered on first use).
pub(crate) struct WindowSet {
    clock: RwLock<WindowClock>,
    config: WindowConfig,
    counters: RwLock<std::collections::BTreeMap<String, WindowedCounter>>,
    histograms: RwLock<std::collections::BTreeMap<String, WindowedHistogram>>,
}

impl WindowSet {
    pub(crate) fn new() -> WindowSet {
        WindowSet {
            clock: RwLock::new(WindowClock::monotonic()),
            config: WindowConfig::default(),
            counters: RwLock::default(),
            histograms: RwLock::default(),
        }
    }

    pub(crate) fn set_clock(&self, clock: WindowClock) {
        *self.clock.write().expect("window clock lock") = clock;
    }

    fn clock(&self) -> WindowClock {
        self.clock.read().expect("window clock lock").clone()
    }

    pub(crate) fn counter(&self, name: &str) -> WindowedCounter {
        if let Some(c) = self.counters.read().expect("window map lock").get(name) {
            return c.clone();
        }
        let fresh = WindowedCounter::new(self.config, self.clock());
        self.counters
            .write()
            .expect("window map lock")
            .entry(name.to_string())
            .or_insert(fresh)
            .clone()
    }

    pub(crate) fn histogram(&self, name: &str) -> WindowedHistogram {
        if let Some(h) = self.histograms.read().expect("window map lock").get(name) {
            return h.clone();
        }
        let fresh = WindowedHistogram::new(self.config, self.clock());
        self.histograms
            .write()
            .expect("window map lock")
            .entry(name.to_string())
            .or_insert(fresh)
            .clone()
    }

    /// Every windowed metric's current readout, counters first then
    /// histograms, each group sorted by name.
    pub(crate) fn stats(&self) -> Vec<WindowStat> {
        let mut out = Vec::new();
        for (name, counter) in self.counters.read().expect("window map lock").iter() {
            out.push(WindowStat {
                name: name.clone(),
                window_us: counter.window_us(),
                count: counter.total(),
                ..WindowStat::default()
            });
        }
        for (name, histogram) in self.histograms.read().expect("window map lock").iter() {
            let s = histogram.snapshot();
            out.push(WindowStat {
                name: name.clone(),
                window_us: histogram.window_us(),
                count: s.count,
                sum: s.sum,
                p50: s.percentile(0.5),
                p95: s.percentile(0.95),
                p99: s.percentile(0.99),
                max: s.max,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_within_window_only() {
        let config = WindowConfig {
            bucket_width_us: 10,
            buckets: 4,
        };
        let (clock, hands) = WindowClock::manual();
        let c = WindowedCounter::new(config, clock);
        assert_eq!(c.window_us(), 40);
        c.add(3); // epoch 0
        hands.set(15);
        c.add(2); // epoch 1
        assert_eq!(c.total(), 5);
        // Window ending in epoch 4 covers epochs 1..=4: epoch 0 expired.
        hands.set(45);
        assert_eq!(c.total(), 2);
        // Epoch 5 reuses epoch 1's slot: the recycle drops the old 2.
        hands.set(52);
        c.add(7);
        assert_eq!(c.total(), 7);
    }

    #[test]
    fn histogram_window_rotates_and_percentiles_cap_at_max() {
        let config = WindowConfig {
            bucket_width_us: 100,
            buckets: 3,
        };
        let (clock, hands) = WindowClock::manual();
        let h = WindowedHistogram::new(config, clock);
        h.record(1_000); // epoch 0
        hands.set(150);
        h.record(10); // epoch 1
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 1_010);
        assert_eq!(s.max, 1_000);
        assert_eq!(s.percentile(0.99), 1_000);
        // Epoch 3: the window is epochs 1..=3, the 1_000 expired.
        hands.set(310);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.max, 10);
        // Far future: everything expired.
        hands.set(10_000);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn rate_uses_the_smaller_of_window_and_uptime() {
        let stat = WindowStat {
            window_us: 60_000_000,
            count: 120,
            ..WindowStat::default()
        };
        // A minute-old process: 120 events over 60 s.
        assert!((stat.rate_per_sec(120_000_000) - 2.0).abs() < 1e-9);
        // A 2-second-old process: the same 120 events happened in 2 s.
        assert!((stat.rate_per_sec(2_000_000) - 60.0).abs() < 1e-9);
    }
}
