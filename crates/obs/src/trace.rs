//! Trace context: the cheap `{trace_id, span_id, parent_id}` triple that
//! turns the flat JSONL event stream into a reconstructable span forest.
//!
//! ## Model
//!
//! Every *top-level operation* — a `mine`/`mine_sharded` run, a compaction
//! round, an ingest seal, a `QueryService` request — opens a **root span**,
//! which mints a fresh trace id. Spans opened while another span is active
//! on the same thread become **children** of it automatically: the active
//! context lives in a thread-local stack that [`crate::Span`] pushes on
//! creation and pops on drop, so ordinary nested scopes need no plumbing
//! at all.
//!
//! The one place plumbing *is* required is a thread boundary: worker
//! threads spawned by the MapReduce runtime do not inherit the parent
//! thread's stack. Code that fans out derives a child context up front
//! ([`TraceCtx::child`]) and has each worker [`enter`] it, which parents
//! the worker's spans under the originating phase.
//!
//! ## Encoding
//!
//! Ids are random-ish `u64`s, seeded per process from the pid and clock so
//! that several test binaries appending to one `LASH_OBS_JSONL` file never
//! collide. In JSON they are emitted as **hex strings** (`"a3f1…"`), not
//! numbers: the hand-rolled parser in [`crate::json`] reads numbers as
//! `f64`, which silently mangles integers above 2^53.
//!
//! `parent_id == 0` marks a root; the JSON line for a root simply omits
//! the `parent_id` key.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// The identity of one span within one trace. `Copy`, 24 bytes: cheap to
/// capture into closures and send across threads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    /// Identifies the whole operation (shared by every span in the tree).
    pub trace_id: u64,
    /// Identifies this span. Unique within the process, hence within the
    /// trace (a trace never spans processes).
    pub span_id: u64,
    /// The parent span's id, or 0 for a root span.
    pub parent_id: u64,
}

impl TraceCtx {
    /// A fresh root context: new trace id, no parent.
    pub fn root() -> TraceCtx {
        TraceCtx {
            trace_id: next_trace_id(),
            span_id: next_span_id(),
            parent_id: 0,
        }
    }

    /// A child context within the same trace, parented under `self`.
    pub fn child(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: next_span_id(),
            parent_id: self.span_id,
        }
    }

    /// Renders an id for the JSONL output: 16 lowercase hex digits.
    pub fn format_id(id: u64) -> String {
        format!("{id:016x}")
    }

    /// Parses an id rendered by [`TraceCtx::format_id`].
    pub fn parse_id(s: &str) -> Option<u64> {
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

/// Per-process seed mixed into trace ids so concurrent processes appending
/// to one JSONL file mint disjoint ids.
fn process_seed() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    *SEED.get_or_init(|| {
        let pid = std::process::id() as u64;
        let now = std::time::SystemTime::now()
            .duration_since(std::time::SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
            .as_nanos() as u64;
        // SplitMix64 finalizer: spreads pid/time bits over the whole word.
        let mut z = pid.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(now);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    })
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

fn next_trace_id() -> u64 {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    // Golden-ratio stride keeps sequential traces far apart in id space.
    let id = process_seed() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    if id == 0 {
        1
    } else {
        id
    }
}

fn next_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// The context active on this thread, if any: the innermost entered span.
pub fn current() -> Option<TraceCtx> {
    STACK.with(|s| s.borrow().last().copied())
}

/// A context for the next span: a child of the active one, or a fresh root
/// when nothing is active on this thread.
pub fn next_ctx() -> TraceCtx {
    match current() {
        Some(parent) => parent.child(),
        None => TraceCtx::root(),
    }
}

/// Makes `ctx` the active context on this thread until the returned guard
/// drops. This is the cross-thread propagation primitive: capture a
/// [`TraceCtx`] before spawning, `enter` it inside the worker.
pub fn enter(ctx: TraceCtx) -> EnterGuard {
    STACK.with(|s| s.borrow_mut().push(ctx));
    EnterGuard { ctx }
}

/// Reverts [`enter`] on drop. Guards must drop in LIFO order (the natural
/// scope order); a mismatched drop pops the mismatched tail.
pub struct EnterGuard {
    ctx: TraceCtx,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|c| c == &self.ctx) {
                stack.truncate(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_then_child_then_pop() {
        assert_eq!(current(), None);
        let root = TraceCtx::root();
        assert_eq!(root.parent_id, 0);
        let g1 = enter(root);
        assert_eq!(current(), Some(root));
        let child = next_ctx();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        let g2 = enter(child);
        assert_eq!(current(), Some(child));
        drop(g2);
        assert_eq!(current(), Some(root));
        drop(g1);
        assert_eq!(current(), None);
    }

    #[test]
    fn next_ctx_without_active_span_is_root() {
        let ctx = next_ctx();
        assert_eq!(ctx.parent_id, 0);
        let other = next_ctx();
        assert_ne!(ctx.trace_id, other.trace_id, "each root mints a new trace");
    }

    #[test]
    fn ids_roundtrip_hex() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            let s = TraceCtx::format_id(id);
            assert_eq!(s.len(), 16);
            assert_eq!(TraceCtx::parse_id(&s), Some(id));
        }
        assert_eq!(TraceCtx::parse_id(""), None);
        assert_eq!(TraceCtx::parse_id("zz"), None);
    }

    #[test]
    fn mismatched_guard_drop_truncates() {
        let a = TraceCtx::root();
        let b = TraceCtx::root();
        let ga = enter(a);
        let gb = enter(b);
        drop(ga); // wrong order: pops both a and the tail above it
        assert_eq!(current(), None);
        drop(gb); // already gone; must not panic
        assert_eq!(current(), None);
    }
}
