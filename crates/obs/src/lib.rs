//! # lash-obs
//!
//! The observability substrate of the LASH workspace: one
//! [`MetricsRegistry`] of named counters, gauges, and log2-bucketed latency
//! histograms, plus structured tracing ([`span!`]) that records scoped wall
//! time into histograms and emits JSON-lines events carrying a
//! [`trace::TraceCtx`] — so the stream reconstructs into per-operation span
//! trees (see the `obs trace-view` CLI). Three always-on diagnostics ride
//! on the same event pipeline:
//!
//! * every rendered event also lands in a fixed-size [`ring::EventRing`]
//!   (the **flight recorder**), dumped automatically when a typed error
//!   surfaces ([`flight::record_error`]) or on demand via
//!   [`MetricsRegistry::dump_recent`];
//! * spans exceeding a per-name threshold (config or `LASH_OBS_SLOW_US`)
//!   are promoted to `slow_op` events with live counter deltas (the
//!   **slow-op log**);
//! * the JSONL stream itself is checkable: [`validate`] enforces schema
//!   and referential integrity, [`tree`] rebuilds and renders the forest.
//!
//! ## Zero-dependency design
//!
//! The build environment has no access to crates.io, so — like the
//! `crates/devtools` shims — this crate is `std`-only: no `serde`, no
//! `tracing`, no `prometheus`. JSON is emitted by hand (and validated by
//! the small parser in [`json`]); the text exposition format is plain
//! string assembly. That keeps the crate safe to pull into every workspace
//! member, including `lash-mapreduce` at the bottom of the dependency
//! graph.
//!
//! ## Overhead expectations
//!
//! Every metric handle is an `Arc` around relaxed `AtomicU64`s:
//!
//! * [`Counter::add`] / [`Gauge::raise`] — one relaxed RMW (~1 ns
//!   uncontended). Hot paths hold a handle; they never look names up.
//! * [`Histogram::record`] — three relaxed RMWs (bucket, sum, max). No
//!   locks, no allocation: recording is safe on paths that run per
//!   partition or per spill.
//! * Name lookup ([`MetricsRegistry::counter`] etc.) — a read-locked map
//!   probe; done once per handle at setup, or per *scan/span* (not per
//!   record) on instrumented paths.
//! * Span / event emission — one JSON line is rendered per span end even
//!   with no sink installed (it feeds the flight-recorder ring): a small
//!   `String` build plus one uncontended ring-slot lock, ~1 µs. Spans are
//!   placed per operation/phase/task, never per record, so this is noise
//!   next to the work they measure. A [`FileSink`] (`LASH_OBS_JSONL`)
//!   adds buffered writes flushed at trace boundaries.
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated by layer (`mapreduce.spilled_bytes`,
//! `store.scan.blocks_pruned`, `query.support_us`); histograms recording
//! durations end in `_us` (microseconds). [`MetricsRegistry::render_text`]
//! rewrites dots to underscores for the Prometheus-style dump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin_view;
pub mod flight;
pub mod json;
pub mod profiler;
pub mod ring;
mod slowlog;
pub mod trace;
pub mod tree;
pub mod validate;
pub mod window;

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant, SystemTime};

use trace::TraceCtx;

/// Environment variable naming the JSON-lines event file the global
/// registry appends to (one event object per line). Unset: no events.
pub const JSONL_ENV: &str = "LASH_OBS_JSONL";

/// Environment variable holding the default slow-op threshold in
/// microseconds: any span at least this long is promoted to a `slow_op`
/// event. Unset: only names configured via
/// [`MetricsRegistry::set_slow_threshold`] are checked.
pub const SLOW_US_ENV: &str = "LASH_OBS_SLOW_US";

/// Environment variable overriding the flight-recorder ring capacity of
/// the global registry (default [`ring::DEFAULT_CAPACITY`]).
pub const RING_CAPACITY_ENV: &str = "LASH_OBS_RING_CAPACITY";

/// A monotonically increasing counter. Cloning shares the underlying
/// value; aggregating several counters means *summing* them.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level or high-water-mark metric. Unlike a [`Counter`], aggregating
/// gauges means taking the *maximum* (or last value), never the sum.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `n`.
    #[inline]
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raises the gauge to at least `n` (high-water-mark semantics).
    #[inline]
    pub fn raise(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds exact zeros, bucket
/// `i ≥ 1` the range `[2^(i-1), 2^i - 1]`, up to bucket 64 which tops out
/// at `u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `(low, high)` range of values bucket `i` covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1..=63 => (1u64 << (i - 1), (1u64 << i) - 1),
        _ => (1u64 << 63, u64::MAX),
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free fixed-bucket log2 histogram: 65 `AtomicU64` buckets (powers
/// of two) plus running sum and max. Recording is three relaxed atomic
/// RMWs; readout quantiles are bucket upper bounds (capped at the observed
/// max), so a reported p99 is exact to within one power of two.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the `_us` naming convention).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Takes a point-in-time copy for readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile readout.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q · count)`-th observation, capped at the observed
    /// max. Returns 0 when nothing was recorded.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

/// A value attached to a span or event field, rendered into the JSONL
/// output.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (JSON-escaped on output).
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => {
                out.push('"');
                json::escape_into(out, s);
                out.push('"');
            }
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        })+
    };
}
field_from! {
    u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64,
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Receives one rendered JSON event per call. Implementations must be
/// cheap and non-blocking-ish: they run inline on instrumented paths.
pub trait EventSink: Send + Sync {
    /// Consumes one event, rendered as a single-line JSON object (no
    /// trailing newline). Buffering sinks may defer the actual write
    /// until [`EventSink::flush`].
    fn emit(&self, line: &str);

    /// Forces buffered lines out. The registry calls this at trace
    /// boundaries (a root span ending, a standalone event) so whole
    /// traces become durable together. Default: no-op.
    fn flush(&self) {}
}

/// How many buffered bytes a [`FileSink`] accumulates before writing.
/// Kept a bit under 4 KiB so one flush is a single `write` syscall whose
/// appended block stays intact under concurrent `O_APPEND` writers.
const SINK_FLUSH_BYTES: usize = 3584;

struct FileSinkState {
    file: std::fs::File,
    buf: String,
    buffered_lines: u64,
}

impl FileSinkState {
    fn flush_locked(&mut self, dropped: &Counter) {
        if self.buf.is_empty() {
            return;
        }
        if self.file.write_all(self.buf.as_bytes()).is_err() {
            dropped.add(self.buffered_lines);
        }
        self.buf.clear();
        self.buffered_lines = 0;
    }
}

/// The default sink: appends events to a file, buffering lines behind a
/// mutex and writing whole batches with a single `write` call (so
/// concurrent processes appending to the same `O_APPEND` file do not
/// interleave bytes). Lines lost to write errors are counted on the
/// `obs.sink.dropped_lines` counter passed at construction instead of
/// vanishing silently.
pub struct FileSink {
    state: Mutex<FileSinkState>,
    dropped: Counter,
}

impl FileSink {
    /// Opens (creating if needed) `path` for appending, counting dropped
    /// lines on a detached counter.
    pub fn append(path: &std::path::Path) -> std::io::Result<FileSink> {
        FileSink::append_with_counter(path, Counter::default())
    }

    /// Opens `path` for appending; write failures add the number of lost
    /// lines to `dropped` (conventionally `obs.sink.dropped_lines`).
    pub fn append_with_counter(
        path: &std::path::Path,
        dropped: Counter,
    ) -> std::io::Result<FileSink> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileSink {
            state: Mutex::new(FileSinkState {
                file,
                buf: String::with_capacity(SINK_FLUSH_BYTES + 256),
                buffered_lines: 0,
            }),
            dropped,
        })
    }

    /// Lines lost to write errors so far.
    pub fn dropped_lines(&self) -> u64 {
        self.dropped.get()
    }
}

impl EventSink for FileSink {
    fn emit(&self, line: &str) {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        state.buf.push_str(line);
        state.buf.push('\n');
        state.buffered_lines += 1;
        if state.buf.len() >= SINK_FLUSH_BYTES {
            state.flush_locked(&self.dropped);
        }
    }

    fn flush(&self) {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .flush_locked(&self.dropped);
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The registry: named metrics, the optional event sink, the always-on
/// flight-recorder ring, and the slow-op threshold table. Handle lookups
/// are read-mostly (a `RwLock`-guarded map probe); the handles themselves
/// are lock-free.
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    sink_installed: AtomicBool,
    ring: ring::EventRing,
    slow: slowlog::SlowLog,
    windows: window::WindowSet,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::with_ring_capacity(ring::DEFAULT_CAPACITY)
    }
}

fn lookup<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(v) = map.read().expect("metrics map lock").get(name) {
        return v.clone();
    }
    map.write()
        .expect("metrics map lock")
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl MetricsRegistry {
    /// An empty registry with no sink and a default-capacity ring.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// An empty registry whose flight-recorder ring holds `capacity`
    /// events.
    pub fn with_ring_capacity(capacity: usize) -> MetricsRegistry {
        MetricsRegistry {
            counters: RwLock::default(),
            gauges: RwLock::default(),
            histograms: RwLock::default(),
            sink: RwLock::default(),
            sink_installed: AtomicBool::new(false),
            ring: ring::EventRing::new(capacity),
            slow: slowlog::SlowLog::new(),
            windows: window::WindowSet::new(),
        }
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lookup(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lookup(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        lookup(&self.histograms, name)
    }

    /// The sliding-window counter named `name` (default 60 × 1 s window),
    /// registering it on first use. Windowed metrics are a separate
    /// namespace from the lifetime metrics: `windowed_counter("x")` and
    /// `counter("x")` are unrelated handles, and hot paths typically feed
    /// both.
    pub fn windowed_counter(&self, name: &str) -> window::WindowedCounter {
        self.windows.counter(name)
    }

    /// The sliding-window histogram named `name` (default 60 × 1 s
    /// window), registering it on first use. Its snapshot answers "p99
    /// over the last minute" where [`MetricsRegistry::histogram`] answers
    /// "p99 since process start".
    pub fn windowed_histogram(&self, name: &str) -> window::WindowedHistogram {
        self.windows.histogram(name)
    }

    /// Every windowed metric's current readout (counters then histograms,
    /// each sorted by name) — the payload of the serve protocol's
    /// `Metrics` admin reply.
    pub fn window_stats(&self) -> Vec<window::WindowStat> {
        self.windows.stats()
    }

    /// Replaces the clock handed to windowed metrics registered *after*
    /// this call (handles already vended keep their clock). Tests inject a
    /// [`window::WindowClock::manual`] clock here before creating handles.
    pub fn set_window_clock(&self, clock: window::WindowClock) {
        self.windows.set_clock(clock);
    }

    /// Installs (or removes) the event sink, returning the previous one
    /// (so tests can restore it).
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) -> Option<Arc<dyn EventSink>> {
        self.sink_installed.store(sink.is_some(), Ordering::Release);
        std::mem::replace(&mut *self.sink.write().expect("sink lock"), sink)
    }

    /// True when a sink is installed (events will be written out; the
    /// flight-recorder ring records them regardless).
    pub fn sink_installed(&self) -> bool {
        self.sink_installed.load(Ordering::Acquire)
    }

    /// Flushes the installed sink's buffered lines, if any.
    pub fn flush_sink(&self) {
        if let Some(sink) = self.sink.read().expect("sink lock").as_ref() {
            sink.flush();
        }
    }

    /// The last events rendered by this registry (spans, standalone
    /// events, slow-ops), oldest first — the flight recorder's on-demand
    /// readout. Always populated, sink or no sink.
    pub fn dump_recent(&self) -> Vec<String> {
        self.ring.snapshot()
    }

    /// Sets (or with `None` clears) the default slow-op threshold: any
    /// span lasting at least `threshold_us` microseconds is promoted to a
    /// `slow_op` event. Per-name thresholds take precedence.
    pub fn set_slow_default(&self, threshold_us: Option<u64>) {
        self.slow.set_default(threshold_us);
    }

    /// Sets (or with `None` clears) the slow-op threshold for one span
    /// name, overriding the default for that name.
    pub fn set_slow_threshold(&self, name: &str, threshold_us: Option<u64>) {
        self.slow.set_threshold(name, threshold_us);
    }

    /// The effective slow-op threshold for `name`, if any.
    pub fn slow_threshold(&self, name: &str) -> Option<u64> {
        self.slow.threshold_of(name)
    }

    fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .read()
            .expect("metrics map lock")
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect()
    }

    /// Emits the `slow_op` event for a span that ended over threshold.
    /// `capture` (the counter values at span start) yields `d.<counter>`
    /// delta fields; spans observed after the fact have no capture and
    /// log without deltas.
    fn emit_slow_op(
        &self,
        name: &str,
        us: u64,
        threshold_us: u64,
        ctx: Option<TraceCtx>,
        capture: Option<&[(String, u64)]>,
    ) {
        self.counter("obs.slow_ops").inc();
        let mut fields: Vec<(String, FieldValue)> =
            vec![("threshold_us".to_string(), FieldValue::U64(threshold_us))];
        if let Some(start) = capture {
            let start: BTreeMap<&str, u64> = start.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            let mut truncated = false;
            for (name, counter) in self.counters.read().expect("metrics map lock").iter() {
                let now = counter.get();
                let delta = now - start.get(name.as_str()).copied().unwrap_or(0);
                if delta == 0 {
                    continue;
                }
                if fields.len() > slowlog::SLOW_OP_MAX_DELTAS {
                    truncated = true;
                    break;
                }
                fields.push((format!("d.{name}"), FieldValue::U64(delta)));
            }
            if truncated {
                fields.push(("deltas_truncated".to_string(), FieldValue::Bool(true)));
            }
        }
        self.emit_line("slow_op", name, Some(us), ctx, &fields);
    }

    /// Starts a scoped timer: on drop it records the elapsed microseconds
    /// into the histogram `<name>_us` and emits a `span` event carrying
    /// this span's trace context (a child of the span active on this
    /// thread, or a fresh trace root). Usually invoked through the
    /// [`span!`] macro.
    pub fn span<'r>(&'r self, name: &'r str, fields: Vec<(&'static str, FieldValue)>) -> Span<'r> {
        let ctx = trace::next_ctx();
        let guard = trace::enter(ctx);
        profiler::push(name);
        let slow = self
            .slow_threshold(name)
            .map(|threshold_us| slowlog::SlowCapture {
                threshold_us,
                counters: self.counters_snapshot(),
            });
        Span {
            registry: self,
            name,
            fields,
            ctx,
            slow,
            start: Instant::now(),
            _guard: guard,
        }
    }

    /// Records an already-measured span: `elapsed` goes into the histogram
    /// `<name>_us` and a `span` event is emitted as a *child* of the span
    /// active on this thread — or as the root of its own single-span
    /// trace when none is active, so every span line carries a trace
    /// context. The explicit-timing twin of [`span!`], for code that
    /// already holds the phase duration.
    pub fn observe_span(
        &self,
        name: &str,
        elapsed: Duration,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.observe_span_with(trace::current().map(|c| c.child()), name, elapsed, fields);
    }

    /// Like [`MetricsRegistry::observe_span`], but with an explicit trace
    /// context — the cross-thread form: a phase that fans work out to
    /// workers derives one child context up front, has each worker
    /// [`trace::enter`] it, and records the phase span under that same
    /// context once the workers join. `None` roots a fresh trace.
    pub fn observe_span_with(
        &self,
        ctx: Option<TraceCtx>,
        name: &str,
        elapsed: Duration,
        fields: &[(&'static str, FieldValue)],
    ) {
        let ctx = Some(ctx.unwrap_or_else(TraceCtx::root));
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.histogram(&format!("{name}_us")).record(us);
        self.emit_line("span", name, Some(us), ctx, fields);
        if let Some(threshold_us) = self.slow_threshold(name) {
            if us >= threshold_us {
                self.emit_slow_op(name, us, threshold_us, ctx, None);
            }
        }
    }

    /// Emits one non-span event (e.g. an index snapshot swap). `event`
    /// classifies the line; `name` identifies its source. The line always
    /// reaches the flight-recorder ring; it reaches the sink when one is
    /// installed, tagged with the active trace context if any.
    pub fn emit_event(&self, event: &str, name: &str, fields: &[(&'static str, FieldValue)]) {
        self.emit_line(event, name, None, trace::current(), fields);
    }

    /// Like [`MetricsRegistry::emit_event`], but under an explicit trace
    /// context — for components that captured the context on one thread
    /// (e.g. a map task's emitter) and report on another, or after the
    /// originating span has ended.
    pub fn emit_event_with(
        &self,
        ctx: Option<TraceCtx>,
        event: &str,
        name: &str,
        fields: &[(&'static str, FieldValue)],
    ) {
        self.emit_line(event, name, None, ctx, fields);
    }

    fn emit_line<K: AsRef<str>>(
        &self,
        event: &str,
        name: &str,
        dur_us: Option<u64>,
        ctx: Option<TraceCtx>,
        fields: &[(K, FieldValue)],
    ) {
        let ts_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let mut line = String::with_capacity(160);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"event\":\"");
        json::escape_into(&mut line, event);
        line.push_str("\",\"name\":\"");
        json::escape_into(&mut line, name);
        line.push('"');
        if let Some(ctx) = &ctx {
            line.push_str(",\"trace_id\":\"");
            line.push_str(&TraceCtx::format_id(ctx.trace_id));
            line.push_str("\",\"span_id\":\"");
            line.push_str(&TraceCtx::format_id(ctx.span_id));
            line.push('"');
            if ctx.parent_id != 0 {
                line.push_str(",\"parent_id\":\"");
                line.push_str(&TraceCtx::format_id(ctx.parent_id));
                line.push('"');
            }
        }
        if let Some(us) = dur_us {
            line.push_str(",\"dur_us\":");
            line.push_str(&us.to_string());
        }
        for (key, value) in fields {
            line.push_str(",\"");
            json::escape_into(&mut line, key.as_ref());
            line.push_str("\":");
            value.write_json(&mut line);
        }
        line.push('}');
        if self.sink_installed() {
            if let Some(sink) = self.sink.read().expect("sink lock").as_ref() {
                sink.emit(&line);
                // Flush at trace boundaries so whole traces become durable
                // together: a root span ending, an event outside any trace,
                // or an error event (a dump may be imminent).
                let at_boundary = match (&ctx, event) {
                    (_, "error") => true,
                    (Some(c), "span") => c.parent_id == 0,
                    (None, _) => true,
                    _ => false,
                };
                if at_boundary {
                    sink.flush();
                }
            }
        }
        self.ring.push(line);
    }

    /// Renders every metric as Prometheus-style text exposition: counters
    /// and gauges as single samples, histograms as summaries with
    /// `quantile="0.5" / "0.95" / "0.99"` lines plus `_max`, `_sum`,
    /// `_count`, and cumulative `_bucket{le="..."}` lines (one per
    /// occupied power-of-two bucket, closed by `le="+Inf"`). Dots in
    /// metric names become underscores.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self.counters.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counter.get()
            ));
        }
        for (name, gauge) in self.gauges.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauge.get()));
        }
        for (name, histogram) in self.histograms.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            let s = histogram.snapshot();
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    s.percentile(q)
                ));
            }
            let last_occupied = s.buckets.iter().rposition(|&c| c != 0);
            let mut cumulative = 0u64;
            for i in 0..=last_occupied.unwrap_or(0).min(NUM_BUCKETS - 2) {
                cumulative += s.buckets[i];
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    bucket_bounds(i).1
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count));
            out.push_str(&format!("{name}_max {}\n", s.max));
            out.push_str(&format!("{name}_sum {}\n", s.sum));
            out.push_str(&format!("{name}_count {}\n", s.count));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else (most
/// importantly the dots of the layer scheme) becomes an underscore.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// A scoped timer created by [`MetricsRegistry::span`] / [`span!`]. While
/// alive its [`trace::TraceCtx`] is the active context on the creating
/// thread (nested spans become its children). On drop it records the
/// elapsed microseconds into the histogram `<name>_us`, emits a `span`
/// event carrying the context, and — if the span crossed its slow-op
/// threshold — a `slow_op` event with counter deltas since span start.
pub struct Span<'r> {
    registry: &'r MetricsRegistry,
    name: &'r str,
    fields: Vec<(&'static str, FieldValue)>,
    ctx: TraceCtx,
    slow: Option<slowlog::SlowCapture>,
    start: Instant,
    _guard: trace::EnterGuard,
}

impl Span<'_> {
    /// This span's trace context (e.g. to pass to worker threads).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        profiler::pop();
        let us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let fields = std::mem::take(&mut self.fields);
        self.registry
            .histogram(&format!("{}_us", self.name))
            .record(us);
        self.registry
            .emit_line("span", self.name, Some(us), Some(self.ctx), &fields);
        if let Some(slow) = self.slow.take() {
            if us >= slow.threshold_us {
                self.registry.emit_slow_op(
                    self.name,
                    us,
                    slow.threshold_us,
                    Some(self.ctx),
                    Some(&slow.counters),
                );
            }
        }
    }
}

/// Starts a scoped timer on the [`global`] registry: the guard records the
/// enclosed scope's wall time into the histogram `<name>_us` on drop and
/// emits a `span` JSONL event carrying the fields and the span's trace
/// context (child of the enclosing span, or a new trace root).
///
/// ```
/// {
///     let _span = lash_obs::span!("reduce.merge", shard = 3u64);
///     // ... merge work ...
/// } // records reduce.merge_us and emits {"event":"span","name":"reduce.merge","shard":3,...}
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::global().span(
            $name,
            ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// The process-wide registry. On first use, a [`FileSink`] is installed
/// when [`JSONL_ENV`] names a writable path, the default slow-op
/// threshold is read from [`SLOW_US_ENV`], and the flight-recorder ring
/// is sized from [`RING_CAPACITY_ENV`].
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(|| {
        let capacity =
            env_u64(RING_CAPACITY_ENV).map_or(ring::DEFAULT_CAPACITY, |c| c.max(1) as usize);
        let registry = MetricsRegistry::with_ring_capacity(capacity);
        registry.set_slow_default(env_u64(SLOW_US_ENV));
        if let Some(path) = std::env::var_os(JSONL_ENV) {
            if !path.is_empty() {
                let path = std::path::PathBuf::from(path);
                match FileSink::append_with_counter(
                    &path,
                    registry.counter("obs.sink.dropped_lines"),
                ) {
                    Ok(sink) => {
                        registry.set_sink(Some(Arc::new(sink)));
                    }
                    Err(e) => eprintln!("lash-obs: cannot open {}: {e}", path.display()),
                }
            }
        }
        registry
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "{v} outside its bucket");
        }
    }

    #[test]
    fn counter_and_gauge_semantics() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.counter");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        // The same name yields the same underlying value.
        assert_eq!(r.counter("t.counter").get(), 6);
        let g = r.gauge("t.gauge");
        g.raise(10);
        g.raise(4);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn percentiles_read_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        // p50 lands in the bucket of 2..=3; p99 is capped at the max.
        assert_eq!(s.percentile(0.5), 3);
        assert_eq!(s.percentile(0.99), 100);
        assert_eq!(Histogram::default().snapshot().percentile(0.5), 0);
    }

    #[test]
    fn render_text_exposes_quantiles() {
        let r = MetricsRegistry::new();
        r.counter("layer.things").add(7);
        r.gauge("layer.level").raise(3);
        r.histogram("layer.latency_us").record(9);
        let text = r.render_text();
        assert!(text.contains("# TYPE layer_things counter\nlayer_things 7\n"));
        assert!(text.contains("# TYPE layer_level gauge\nlayer_level 3\n"));
        assert!(text.contains("layer_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("layer_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("layer_latency_us_count 1"));
        assert!(text.contains("layer_latency_us_max 9"));
    }

    #[test]
    fn render_text_bucket_lines_are_cumulative() {
        // Pins the exposition format of the _bucket lines: cumulative
        // counts, `le` = the bucket's inclusive upper bound, closed by
        // `+Inf`, only up to the last occupied bucket.
        let r = MetricsRegistry::new();
        let h = r.histogram("layer.latency_us");
        h.record(0); // bucket 0 (le="0")
        h.record(1); // bucket 1 (le="1")
        h.record(3); // bucket 2 (le="3")
        h.record(3); // bucket 2
        h.record(9); // bucket 4 (le="15")
        let text = r.render_text();
        let expected = "layer_latency_us_bucket{le=\"0\"} 1\n\
                        layer_latency_us_bucket{le=\"1\"} 2\n\
                        layer_latency_us_bucket{le=\"3\"} 4\n\
                        layer_latency_us_bucket{le=\"7\"} 4\n\
                        layer_latency_us_bucket{le=\"15\"} 5\n\
                        layer_latency_us_bucket{le=\"+Inf\"} 5\n";
        assert!(
            text.contains(expected),
            "bucket lines missing or misformatted in:\n{text}"
        );
        // An empty histogram renders just the +Inf line.
        let r = MetricsRegistry::new();
        r.histogram("quiet_us");
        let text = r.render_text();
        assert!(text.contains("quiet_us_bucket{le=\"0\"} 0\nquiet_us_bucket{le=\"+Inf\"} 0\n"));
    }

    #[derive(Default)]
    struct Capture(Mutex<Vec<String>>);
    impl EventSink for Capture {
        fn emit(&self, line: &str) {
            self.0.lock().unwrap().push(line.to_string());
        }
    }

    #[test]
    fn spans_record_and_emit_valid_json() {
        let r = MetricsRegistry::new();
        let capture = Arc::new(Capture::default());
        r.set_sink(Some(capture.clone()));
        drop(r.span("test.region", vec![("shard", FieldValue::from(3u64))]));
        r.emit_event("swap", "index.swap", &[("queries_served", 12u64.into())]);
        assert_eq!(r.histogram("test.region_us").snapshot().count, 1);
        let lines = capture.0.lock().unwrap();
        assert_eq!(lines.len(), 2);
        for line in lines.iter() {
            let v = json::parse(line).expect("valid JSON event");
            assert!(v.get("ts_us").and_then(json::Value::as_f64).is_some());
            assert!(v.get("event").and_then(json::Value::as_str).is_some());
            assert!(v.get("name").and_then(json::Value::as_str).is_some());
        }
        assert_eq!(
            json::parse(&lines[0]).unwrap().get("shard").unwrap(),
            &json::Value::Number(3.0)
        );
        // The span line carries a root trace context as hex strings.
        let span_line = json::parse(&lines[0]).unwrap();
        let trace_id = span_line.get("trace_id").and_then(json::Value::as_str);
        assert!(trace_id.is_some_and(|s| TraceCtx::parse_id(s).is_some()));
        assert!(span_line
            .get("span_id")
            .and_then(json::Value::as_str)
            .is_some());
        assert!(
            span_line.get("parent_id").is_none(),
            "root span has no parent"
        );
    }

    #[test]
    fn nested_spans_share_a_trace() {
        let r = MetricsRegistry::new();
        let capture = Arc::new(Capture::default());
        r.set_sink(Some(capture.clone()));
        {
            let outer = r.span("test.outer", vec![]);
            let _ = &outer;
            drop(r.span("test.inner", vec![]));
            r.observe_span(
                "test.observed",
                Duration::from_micros(7),
                &[("k", 1u64.into())],
            );
        }
        let lines = capture.0.lock().unwrap();
        assert_eq!(lines.len(), 3); // inner, observed, outer (drop order)
        let parsed: Vec<_> = lines.iter().map(|l| json::parse(l).unwrap()).collect();
        let outer = &parsed[2];
        let outer_trace = outer.get("trace_id").and_then(json::Value::as_str).unwrap();
        let outer_span = outer.get("span_id").and_then(json::Value::as_str).unwrap();
        for child in &parsed[..2] {
            assert_eq!(
                child.get("trace_id").and_then(json::Value::as_str),
                Some(outer_trace)
            );
            assert_eq!(
                child.get("parent_id").and_then(json::Value::as_str),
                Some(outer_span)
            );
        }
    }

    #[test]
    fn ring_records_events_without_a_sink() {
        let r = MetricsRegistry::with_ring_capacity(8);
        assert!(r.dump_recent().is_empty());
        drop(r.span("test.ringed", vec![]));
        r.emit_event("note", "test.note", &[]);
        let recent = r.dump_recent();
        assert_eq!(recent.len(), 2);
        assert!(recent[0].contains("\"name\":\"test.ringed\""));
        assert!(recent[1].contains("\"name\":\"test.note\""));
    }

    #[test]
    fn slow_ops_promote_with_counter_deltas() {
        let r = MetricsRegistry::new();
        let capture = Arc::new(Capture::default());
        r.set_sink(Some(capture.clone()));
        r.set_slow_threshold("test.slow", Some(0)); // everything is slow
        assert_eq!(r.slow_threshold("test.slow"), Some(0));
        assert_eq!(r.slow_threshold("test.other"), None);
        let work = r.counter("test.work_done");
        {
            let _span = r.span("test.slow", vec![]);
            work.add(41);
        }
        drop(r.span("test.other", vec![])); // under no threshold: no slow_op
        let lines = capture.0.lock().unwrap();
        let slow: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"event\":\"slow_op\""))
            .collect();
        assert_eq!(slow.len(), 1);
        let v = json::parse(slow[0]).unwrap();
        assert_eq!(
            v.get("name").and_then(json::Value::as_str),
            Some("test.slow")
        );
        assert_eq!(
            v.get("d.test.work_done").and_then(json::Value::as_f64),
            Some(41.0)
        );
        assert!(v.get("trace_id").is_some());
        assert_eq!(r.counter("obs.slow_ops").get(), 1);
        // Default threshold applies to any name; clearing disables.
        r.set_slow_default(Some(0));
        assert_eq!(r.slow_threshold("anything"), Some(0));
        r.set_slow_default(None);
        r.set_slow_threshold("test.slow", None);
        assert_eq!(r.slow_threshold("test.slow"), None);
    }

    #[test]
    fn file_sink_buffers_and_flushes() {
        let dir = std::env::temp_dir().join(format!("lash-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let _ = std::fs::remove_file(&path);
        let r = MetricsRegistry::new();
        let sink = FileSink::append_with_counter(&path, r.counter("obs.sink.dropped_lines"))
            .expect("open sink");
        sink.emit("{\"a\":1}");
        // Small lines stay buffered until an explicit flush.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        sink.flush();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"a\":1}\n");
        // Crossing the threshold flushes without being asked.
        let big = format!("{{\"pad\":\"{}\"}}", "x".repeat(2 * SINK_FLUSH_BYTES));
        sink.emit(&big);
        assert!(std::fs::metadata(&path).unwrap().len() > SINK_FLUSH_BYTES as u64);
        assert_eq!(sink.dropped_lines(), 0);
        drop(sink);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn file_sink_counts_dropped_lines() {
        // /dev/full accepts the open but fails every write with ENOSPC.
        let path = std::path::Path::new("/dev/full");
        if !path.exists() {
            return;
        }
        let r = MetricsRegistry::new();
        let counter = r.counter("obs.sink.dropped_lines");
        let sink = FileSink::append_with_counter(path, counter.clone()).expect("open /dev/full");
        sink.emit("{\"a\":1}");
        sink.emit("{\"b\":2}");
        sink.flush();
        assert_eq!(sink.dropped_lines(), 2);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn field_values_escape_strings() {
        let mut out = String::new();
        FieldValue::from("a\"b\\c\nd").write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        FieldValue::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}
