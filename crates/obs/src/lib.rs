//! # lash-obs
//!
//! The observability substrate of the LASH workspace: one
//! [`MetricsRegistry`] of named counters, gauges, and log2-bucketed latency
//! histograms, plus lightweight structured tracing ([`span!`]) that records
//! scoped wall time into histograms and optionally emits JSON-lines events
//! to a pluggable [`EventSink`].
//!
//! ## Zero-dependency design
//!
//! The build environment has no access to crates.io, so — like the
//! `crates/devtools` shims — this crate is `std`-only: no `serde`, no
//! `tracing`, no `prometheus`. JSON is emitted by hand (and validated by
//! the small parser in [`json`]); the text exposition format is plain
//! string assembly. That keeps the crate safe to pull into every workspace
//! member, including `lash-mapreduce` at the bottom of the dependency
//! graph.
//!
//! ## Overhead expectations
//!
//! Every metric handle is an `Arc` around relaxed `AtomicU64`s:
//!
//! * [`Counter::add`] / [`Gauge::raise`] — one relaxed RMW (~1 ns
//!   uncontended). Hot paths hold a handle; they never look names up.
//! * [`Histogram::record`] — three relaxed RMWs (bucket, sum, max). No
//!   locks, no allocation: recording is safe on paths that run per
//!   partition or per spill.
//! * Name lookup ([`MetricsRegistry::counter`] etc.) — a read-locked map
//!   probe; done once per handle at setup, or per *scan/span* (not per
//!   record) on instrumented paths.
//! * JSONL emission — only when a sink is installed (`LASH_OBS_JSONL`);
//!   with no sink a span costs two `Instant::now` calls plus one histogram
//!   record.
//!
//! ## Naming scheme
//!
//! Metric names are dot-separated by layer (`mapreduce.spilled_bytes`,
//! `store.scan.blocks_pruned`, `query.support_us`); histograms recording
//! durations end in `_us` (microseconds). [`MetricsRegistry::render_text`]
//! rewrites dots to underscores for the Prometheus-style dump.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::{Duration, Instant, SystemTime};

/// Environment variable naming the JSON-lines event file the global
/// registry appends to (one event object per line). Unset: no events.
pub const JSONL_ENV: &str = "LASH_OBS_JSONL";

/// A monotonically increasing counter. Cloning shares the underlying
/// value; aggregating several counters means *summing* them.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if n != 0 {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A level or high-water-mark metric. Unlike a [`Counter`], aggregating
/// gauges means taking the *maximum* (or last value), never the sum.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// Sets the gauge to `n`.
    #[inline]
    pub fn set(&self, n: u64) {
        self.value.store(n, Ordering::Relaxed);
    }

    /// Raises the gauge to at least `n` (high-water-mark semantics).
    #[inline]
    pub fn raise(&self, n: u64) {
        self.value.fetch_max(n, Ordering::Relaxed);
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Bucket count of a [`Histogram`]: bucket 0 holds exact zeros, bucket
/// `i ≥ 1` the range `[2^(i-1), 2^i - 1]`, up to bucket 64 which tops out
/// at `u64::MAX`.
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive `(low, high)` range of values bucket `i` covers.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        1..=63 => (1u64 << (i - 1), (1u64 << i) - 1),
        _ => (1u64 << 63, u64::MAX),
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

/// A lock-free fixed-bucket log2 histogram: 65 `AtomicU64` buckets (powers
/// of two) plus running sum and max. Recording is three relaxed atomic
/// RMWs; readout quantiles are bucket upper bounds (capped at the observed
/// max), so a reported p99 is exact to within one power of two.
#[derive(Clone, Debug)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        self.inner.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(value, Ordering::Relaxed);
        self.inner.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration in microseconds (the `_us` naming convention).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Takes a point-in-time copy for readout.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; NUM_BUCKETS] =
            std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.inner.sum.load(Ordering::Relaxed),
            max: self.inner.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A point-in-time copy of a [`Histogram`], with quantile readout.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket observation counts (see [`bucket_bounds`]).
    pub buckets: [u64; NUM_BUCKETS],
}

impl HistogramSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q · count)`-th observation, capped at the observed
    /// max. Returns 0 when nothing was recorded.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bounds(i).1.min(self.max);
            }
        }
        self.max
    }
}

/// A value attached to a span or event field, rendered into the JSONL
/// output.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values render as `null`).
    F64(f64),
    /// A boolean.
    Bool(bool),
    /// A string (JSON-escaped on output).
    Str(String),
}

impl FieldValue {
    fn write_json(&self, out: &mut String) {
        match self {
            FieldValue::U64(v) => out.push_str(&v.to_string()),
            FieldValue::I64(v) => out.push_str(&v.to_string()),
            FieldValue::F64(v) if v.is_finite() => out.push_str(&v.to_string()),
            FieldValue::F64(_) => out.push_str("null"),
            FieldValue::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            FieldValue::Str(s) => {
                out.push('"');
                json::escape_into(out, s);
                out.push('"');
            }
        }
    }
}

macro_rules! field_from {
    ($($ty:ty => $variant:ident as $conv:ty),+ $(,)?) => {
        $(impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        })+
    };
}
field_from! {
    u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
    i64 => I64 as i64, i32 => I64 as i64,
    f64 => F64 as f64,
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// Receives one rendered JSON event per call. Implementations must be
/// cheap and non-blocking-ish: they run inline on instrumented paths.
pub trait EventSink: Send + Sync {
    /// Consumes one event, rendered as a single-line JSON object (no
    /// trailing newline).
    fn emit(&self, line: &str);
}

/// The default sink: appends events to a file, one line per event, each
/// line written with a single `write` call so concurrent processes
/// appending to the same `O_APPEND` file do not interleave bytes.
pub struct FileSink {
    file: Mutex<std::fs::File>,
}

impl FileSink {
    /// Opens (creating if needed) `path` for appending.
    pub fn append(path: &std::path::Path) -> std::io::Result<FileSink> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(FileSink {
            file: Mutex::new(file),
        })
    }
}

impl EventSink for FileSink {
    fn emit(&self, line: &str) {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        if let Ok(mut file) = self.file.lock() {
            let _ = file.write_all(&buf);
        }
    }
}

/// The registry: named metrics plus the optional event sink. Handle
/// lookups are read-mostly (a `RwLock`-guarded map probe); the handles
/// themselves are lock-free.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Counter>>,
    gauges: RwLock<BTreeMap<String, Gauge>>,
    histograms: RwLock<BTreeMap<String, Histogram>>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    sink_installed: AtomicBool,
}

fn lookup<T: Clone + Default>(map: &RwLock<BTreeMap<String, T>>, name: &str) -> T {
    if let Some(v) = map.read().expect("metrics map lock").get(name) {
        return v.clone();
    }
    map.write()
        .expect("metrics map lock")
        .entry(name.to_string())
        .or_default()
        .clone()
}

impl MetricsRegistry {
    /// An empty registry with no sink.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Counter {
        lookup(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        lookup(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        lookup(&self.histograms, name)
    }

    /// Installs (or removes) the event sink.
    pub fn set_sink(&self, sink: Option<Arc<dyn EventSink>>) {
        self.sink_installed.store(sink.is_some(), Ordering::Release);
        *self.sink.write().expect("sink lock") = sink;
    }

    /// True when a sink is installed (events will be emitted).
    pub fn sink_installed(&self) -> bool {
        self.sink_installed.load(Ordering::Acquire)
    }

    /// Starts a scoped timer: on drop it records the elapsed microseconds
    /// into the histogram `<name>_us` and emits a `span` event. Usually
    /// invoked through the [`span!`] macro.
    pub fn span<'r>(&'r self, name: &'r str, fields: Vec<(&'static str, FieldValue)>) -> Span<'r> {
        Span {
            registry: self,
            name,
            fields,
            start: Instant::now(),
        }
    }

    /// Records an already-measured span: `elapsed` goes into the histogram
    /// `<name>_us`, and — when a sink is installed — a `span` event with
    /// `dur_us` plus `fields` is emitted. The explicit-timing twin of
    /// [`span!`], for code that already holds the phase duration.
    pub fn observe_span(
        &self,
        name: &str,
        elapsed: Duration,
        fields: &[(&'static str, FieldValue)],
    ) {
        let us = elapsed.as_micros().min(u64::MAX as u128) as u64;
        self.histogram(&format!("{name}_us")).record(us);
        if self.sink_installed() {
            self.emit_line("span", name, Some(us), fields);
        }
    }

    /// Emits one non-span event (e.g. an index snapshot swap) when a sink
    /// is installed. `event` classifies the line; `name` identifies its
    /// source.
    pub fn emit_event(&self, event: &str, name: &str, fields: &[(&'static str, FieldValue)]) {
        if self.sink_installed() {
            self.emit_line(event, name, None, fields);
        }
    }

    fn emit_line(
        &self,
        event: &str,
        name: &str,
        dur_us: Option<u64>,
        fields: &[(&'static str, FieldValue)],
    ) {
        let sink = match self.sink.read().expect("sink lock").as_ref() {
            Some(sink) => Arc::clone(sink),
            None => return,
        };
        let ts_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let mut line = String::with_capacity(96);
        line.push_str("{\"ts_us\":");
        line.push_str(&ts_us.to_string());
        line.push_str(",\"event\":\"");
        json::escape_into(&mut line, event);
        line.push_str("\",\"name\":\"");
        json::escape_into(&mut line, name);
        line.push('"');
        if let Some(us) = dur_us {
            line.push_str(",\"dur_us\":");
            line.push_str(&us.to_string());
        }
        for (key, value) in fields {
            line.push_str(",\"");
            json::escape_into(&mut line, key);
            line.push_str("\":");
            value.write_json(&mut line);
        }
        line.push('}');
        sink.emit(&line);
    }

    /// Renders every metric as Prometheus-style text exposition: counters
    /// and gauges as single samples, histograms as summaries with
    /// `quantile="0.5" / "0.95" / "0.99"` lines plus `_max`, `_sum`, and
    /// `_count`. Dots in metric names become underscores.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, counter) in self.counters.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            out.push_str(&format!(
                "# TYPE {name} counter\n{name} {}\n",
                counter.get()
            ));
        }
        for (name, gauge) in self.gauges.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", gauge.get()));
        }
        for (name, histogram) in self.histograms.read().expect("metrics map lock").iter() {
            let name = sanitize_name(name);
            let s = histogram.snapshot();
            out.push_str(&format!("# TYPE {name} summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.95", 0.95), ("0.99", 0.99)] {
                out.push_str(&format!(
                    "{name}{{quantile=\"{label}\"}} {}\n",
                    s.percentile(q)
                ));
            }
            out.push_str(&format!("{name}_max {}\n", s.max));
            out.push_str(&format!("{name}_sum {}\n", s.sum));
            out.push_str(&format!("{name}_count {}\n", s.count));
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else (most
/// importantly the dots of the layer scheme) becomes an underscore.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// A scoped timer created by [`MetricsRegistry::span`] / [`span!`]. On
/// drop it records the elapsed microseconds into the histogram
/// `<name>_us` and emits a `span` event when a sink is installed.
pub struct Span<'r> {
    registry: &'r MetricsRegistry,
    name: &'r str,
    fields: Vec<(&'static str, FieldValue)>,
    start: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let fields = std::mem::take(&mut self.fields);
        self.registry
            .observe_span(self.name, self.start.elapsed(), &fields);
    }
}

/// Starts a scoped timer on the [`global`] registry: the guard records the
/// enclosed scope's wall time into the histogram `<name>_us` on drop and,
/// with a sink installed, emits a `span` JSONL event carrying the fields.
///
/// ```
/// {
///     let _span = lash_obs::span!("reduce.merge", shard = 3u64);
///     // ... merge work ...
/// } // records reduce.merge_us and emits {"event":"span","name":"reduce.merge","shard":3,...}
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::global().span(
            $name,
            ::std::vec![$((stringify!($key), $crate::FieldValue::from($value))),+],
        )
    };
}

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry. On first use, a [`FileSink`] is installed
/// when [`JSONL_ENV`] names a writable path.
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(|| {
        let registry = MetricsRegistry::new();
        if let Some(path) = std::env::var_os(JSONL_ENV) {
            if !path.is_empty() {
                let path = std::path::PathBuf::from(path);
                match FileSink::append(&path) {
                    Ok(sink) => registry.set_sink(Some(Arc::new(sink))),
                    Err(e) => eprintln!("lash-obs: cannot open {}: {e}", path.display()),
                }
            }
        }
        registry
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX / 2, u64::MAX] {
            let (low, high) = bucket_bounds(bucket_index(v));
            assert!(low <= v && v <= high, "{v} outside its bucket");
        }
    }

    #[test]
    fn counter_and_gauge_semantics() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.counter");
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        // The same name yields the same underlying value.
        assert_eq!(r.counter("t.counter").get(), 6);
        let g = r.gauge("t.gauge");
        g.raise(10);
        g.raise(4);
        assert_eq!(g.get(), 10);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn percentiles_read_bucket_upper_bounds() {
        let h = Histogram::default();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        // p50 lands in the bucket of 2..=3; p99 is capped at the max.
        assert_eq!(s.percentile(0.5), 3);
        assert_eq!(s.percentile(0.99), 100);
        assert_eq!(Histogram::default().snapshot().percentile(0.5), 0);
    }

    #[test]
    fn render_text_exposes_quantiles() {
        let r = MetricsRegistry::new();
        r.counter("layer.things").add(7);
        r.gauge("layer.level").raise(3);
        r.histogram("layer.latency_us").record(9);
        let text = r.render_text();
        assert!(text.contains("# TYPE layer_things counter\nlayer_things 7\n"));
        assert!(text.contains("# TYPE layer_level gauge\nlayer_level 3\n"));
        assert!(text.contains("layer_latency_us{quantile=\"0.5\"}"));
        assert!(text.contains("layer_latency_us{quantile=\"0.99\"}"));
        assert!(text.contains("layer_latency_us_count 1"));
        assert!(text.contains("layer_latency_us_max 9"));
    }

    #[test]
    fn spans_record_and_emit_valid_json() {
        #[derive(Default)]
        struct Capture(Mutex<Vec<String>>);
        impl EventSink for Capture {
            fn emit(&self, line: &str) {
                self.0.lock().unwrap().push(line.to_string());
            }
        }
        let r = MetricsRegistry::new();
        let capture = Arc::new(Capture::default());
        r.set_sink(Some(capture.clone()));
        drop(r.span("test.region", vec![("shard", FieldValue::from(3u64))]));
        r.emit_event("swap", "index.swap", &[("queries_served", 12u64.into())]);
        assert_eq!(r.histogram("test.region_us").snapshot().count, 1);
        let lines = capture.0.lock().unwrap();
        assert_eq!(lines.len(), 2);
        for line in lines.iter() {
            let v = json::parse(line).expect("valid JSON event");
            assert!(v.get("ts_us").and_then(json::Value::as_f64).is_some());
            assert!(v.get("event").and_then(json::Value::as_str).is_some());
            assert!(v.get("name").and_then(json::Value::as_str).is_some());
        }
        assert_eq!(
            json::parse(&lines[0]).unwrap().get("shard").unwrap(),
            &json::Value::Number(3.0)
        );
    }

    #[test]
    fn field_values_escape_strings() {
        let mut out = String::new();
        FieldValue::from("a\"b\\c\nd").write_json(&mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");
        let mut out = String::new();
        FieldValue::F64(f64::NAN).write_json(&mut out);
        assert_eq!(out, "null");
    }
}
