//! Rendering for the operational CLI: the one-screen `obs top` view and
//! the `obs profile-view` folded-stacks table. Pure string → string so the
//! views are unit-testable without a daemon; the `obs` binary (in
//! `lash-serve`, which owns the network client) does the polling.

use crate::window::WindowStat;

/// Everything one `top` refresh needs, as scraped from a daemon's
/// `Health`, `Metrics`, and `Profile` admin replies.
#[derive(Clone, Debug, Default)]
pub struct TopSnapshot {
    /// Lifecycle phase (`serving`, `compact`, `mine`, ...).
    pub phase: String,
    /// Health key/value gauges (`uptime_us`, `queue_depth`, ...).
    pub health: Vec<(String, u64)>,
    /// Windowed metric readouts (rates and in-window percentiles).
    pub windows: Vec<WindowStat>,
    /// Folded-stacks profile text (empty when the profiler is off).
    pub profile_folded: String,
    /// Samples behind the profile.
    pub profile_samples: u64,
}

impl TopSnapshot {
    fn health_value(&self, key: &str) -> Option<u64> {
        self.health.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
    }

    fn uptime_us(&self) -> u64 {
        self.health_value("uptime_us").unwrap_or(u64::MAX)
    }
}

fn fmt_duration(us: u64) -> String {
    if us >= 3_600_000_000 {
        format!("{:.1}h", us as f64 / 3_600_000_000.0)
    } else if us >= 60_000_000 {
        format!("{:.1}m", us as f64 / 60_000_000.0)
    } else if us >= 1_000_000 {
        format!("{:.1}s", us as f64 / 1_000_000.0)
    } else if us >= 1_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{us}us")
    }
}

/// Parses folded-stacks text into `(path, count)` rows sorted by count
/// descending (ties by path). Malformed lines are skipped.
pub fn parse_folded(folded: &str) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = folded
        .lines()
        .filter_map(|line| {
            let (path, count) = line.rsplit_once(' ')?;
            let count: u64 = count.parse().ok()?;
            if path.is_empty() {
                return None;
            }
            Some((path.to_string(), count))
        })
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows
}

/// Renders the one-screen `obs top` view: phase + health line, windowed
/// rates and percentiles per metric, queue state, hottest profile paths.
pub fn render_top(snap: &TopSnapshot) -> String {
    let mut out = String::new();
    let uptime = snap.health_value("uptime_us").unwrap_or(0);
    out.push_str(&format!(
        "lash-serve  phase={}  up={}\n",
        if snap.phase.is_empty() {
            "?"
        } else {
            &snap.phase
        },
        fmt_duration(uptime),
    ));

    let mut health_line = String::new();
    for key in [
        "round",
        "snapshot_generation",
        "snapshot_age_us",
        "store_generations",
        "store_sequences",
        "queue_depth",
        "inflight",
        "workers",
        "throttle_wait_us",
    ] {
        if let Some(v) = snap.health_value(key) {
            if !health_line.is_empty() {
                health_line.push_str("  ");
            }
            if let Some(stem) = key.strip_suffix("_us") {
                health_line.push_str(&format!("{stem}={}", fmt_duration(v)));
            } else {
                health_line.push_str(&format!("{key}={v}"));
            }
        }
    }
    if !health_line.is_empty() {
        out.push_str(&health_line);
        out.push('\n');
    }

    let uptime = snap.uptime_us();
    let (counters, histograms): (Vec<&WindowStat>, Vec<&WindowStat>) = snap
        .windows
        .iter()
        .partition(|w| w.max == 0 && w.p99 == 0 && w.sum == 0 && !w.name.ends_with("_us"));
    if !counters.is_empty() {
        out.push_str("\nrates (windowed)\n");
        for w in &counters {
            out.push_str(&format!(
                "  {:<28} {:>10.1}/s  ({} in {})\n",
                w.name,
                w.rate_per_sec(uptime),
                w.count,
                fmt_duration(w.window_us),
            ));
        }
    }
    if !histograms.is_empty() {
        out.push_str("\nlatency (windowed)\n");
        out.push_str(&format!(
            "  {:<28} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            "name", "rate/s", "p50", "p95", "p99", "max"
        ));
        for w in &histograms {
            out.push_str(&format!(
                "  {:<28} {:>10.1} {:>9} {:>9} {:>9} {:>9}\n",
                w.name,
                w.rate_per_sec(uptime),
                fmt_duration(w.p50),
                fmt_duration(w.p95),
                fmt_duration(w.p99),
                fmt_duration(w.max),
            ));
        }
    }

    let rows = parse_folded(&snap.profile_folded);
    if !rows.is_empty() {
        let total: u64 = rows.iter().map(|(_, c)| *c).sum::<u64>().max(1);
        out.push_str(&format!(
            "\nhot span paths ({} samples)\n",
            snap.profile_samples
        ));
        for (path, count) in rows.iter().take(8) {
            out.push_str(&format!(
                "  {:>5.1}%  {path}\n",
                *count as f64 * 100.0 / total as f64
            ));
        }
    } else if snap.profile_samples == 0 {
        out.push_str("\nprofiler: no samples (off, or nothing running)\n");
    }
    out
}

/// Renders folded-stacks text as a ranked table with percentage bars —
/// the `obs profile-view` output.
pub fn render_profile(folded: &str) -> String {
    let rows = parse_folded(folded);
    if rows.is_empty() {
        return "no samples\n".to_string();
    }
    let total: u64 = rows.iter().map(|(_, c)| *c).sum::<u64>().max(1);
    let mut out = format!("{total} samples, {} distinct paths\n", rows.len());
    for (path, count) in &rows {
        let pct = *count as f64 * 100.0 / total as f64;
        let bar_len = (pct / 4.0).round() as usize;
        out.push_str(&format!(
            "{:>6.1}% {:>8}  {:<25} {path}\n",
            pct,
            count,
            "#".repeat(bar_len.min(25)),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_folded_ranks_by_count() {
        let rows = parse_folded("a;b 3\nc 10\nbad-line\na 3\n");
        assert_eq!(
            rows,
            vec![
                ("c".to_string(), 10),
                ("a".to_string(), 3),
                ("a;b".to_string(), 3),
            ]
        );
    }

    #[test]
    fn render_top_shows_phase_rates_and_hot_paths() {
        let snap = TopSnapshot {
            phase: "serving".to_string(),
            health: vec![
                ("uptime_us".to_string(), 5_000_000),
                ("queue_depth".to_string(), 2),
            ],
            windows: vec![
                WindowStat {
                    name: "query.requests".to_string(),
                    window_us: 60_000_000,
                    count: 50,
                    ..WindowStat::default()
                },
                WindowStat {
                    name: "query.support_us".to_string(),
                    window_us: 60_000_000,
                    count: 50,
                    sum: 5_000,
                    p50: 64,
                    p95: 128,
                    p99: 256,
                    max: 300,
                },
            ],
            profile_folded: "serve.batch;query.request 9\nserve.refresh 1\n".to_string(),
            profile_samples: 10,
        };
        let view = render_top(&snap);
        assert!(view.contains("phase=serving"));
        assert!(view.contains("queue_depth=2"));
        assert!(view.contains("query.requests"));
        assert!(view.contains("query.support_us"));
        assert!(view.contains("90.0%"));
        assert!(view.contains("serve.batch;query.request"));
    }

    #[test]
    fn render_profile_handles_empty() {
        assert_eq!(render_profile(""), "no samples\n");
        let view = render_profile("a;b 1\n");
        assert!(view.contains("100.0%"));
        assert!(view.contains("a;b"));
    }
}
