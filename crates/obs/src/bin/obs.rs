//! The `obs` CLI: offline tooling over `LASH_OBS_JSONL` event streams.
//!
//! ```text
//! obs trace-view <events.jsonl> [--trace <hex-id>] [--all | --top <n>]
//! obs validate   <events.jsonl>
//! ```
//!
//! `trace-view` rebuilds the span forest and renders each trace as an
//! indented tree with total and self wall time per span, flagging the
//! hottest root-to-leaf path with `◆`. By default only the largest trace
//! (most spans) is shown; `--top <n>` shows the n largest, `--all` every
//! one, `--trace <hex-id>` exactly one. `validate` runs the same checks
//! as the `obs-validate` binary.

use lash_obs::trace::TraceCtx;
use lash_obs::{tree, validate};

fn usage() -> ! {
    eprintln!(
        "usage: obs trace-view <events.jsonl> [--trace <hex-id>] [--all | --top <n>]\n\
                obs validate   <events.jsonl>"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_events(path: &str) -> Vec<validate::ParsedEvent> {
    match validate::validate_str(&read(path)) {
        Ok((events, _)) => events,
        Err(e) => {
            eprintln!("obs: {path}: {e}");
            eprintln!("obs: (run `obs validate {path}` for the full check)");
            std::process::exit(1);
        }
    }
}

fn trace_view(args: &[String]) {
    let mut path = None;
    let mut pick: Option<u64> = None;
    let mut limit = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let id = it.next().unwrap_or_else(|| usage());
                match TraceCtx::parse_id(id) {
                    Some(id) => pick = Some(id),
                    None => {
                        eprintln!("obs: --trace wants a hex id, got {id:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--all" => limit = 0,
            "--top" => {
                limit = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg.clone()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let forest = tree::build_forest(&parse_events(&path));
    if forest.is_empty() {
        eprintln!("obs: {path} holds no spans");
        std::process::exit(1);
    }
    let rendered = match pick {
        Some(id) => match forest.iter().find(|t| t.trace_id == id) {
            Some(trace) => tree::render_trace(trace),
            None => {
                eprintln!(
                    "obs: no trace {} in {path} ({} traces present)",
                    TraceCtx::format_id(id),
                    forest.len()
                );
                std::process::exit(1);
            }
        },
        None => tree::render_forest(&forest, limit),
    };
    // Written through `write!`, not `print!`: a downstream `head` closing
    // the pipe early must not turn into a panic.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if write!(out, "{rendered}").is_err() {
        return;
    }
    if pick.is_none() && limit != 0 && forest.len() > limit {
        let _ = writeln!(
            out,
            "({} more trace(s) — use --all, --top <n>, or --trace <hex-id>)",
            forest.len() - limit
        );
    }
}

fn validate_cmd(args: &[String]) {
    let [path] = args else { usage() };
    match validate::validate_str(&read(path)) {
        Ok((_, stats)) if stats.events > 0 => println!(
            "obs: {} events OK ({} spans, {} slow-ops, {} traces) in {path}",
            stats.events, stats.spans, stats.slow_ops, stats.traces
        ),
        Ok(_) => {
            eprintln!(
                "obs: {path} holds no events — was {} set?",
                lash_obs::JSONL_ENV
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("obs: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "trace-view" => trace_view(rest),
        Some((cmd, rest)) if cmd == "validate" => validate_cmd(rest),
        _ => usage(),
    }
}
