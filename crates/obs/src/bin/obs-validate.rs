//! Validates a `LASH_OBS_JSONL` event file: every non-empty line must
//! parse as a JSON object carrying the required keys (`ts_us` as a number,
//! `event` and `name` as strings), and `span` events must carry a numeric
//! `dur_us`. CI's `obs` leg runs the whole test suite with the sink
//! enabled and pipes the result through this tool, so instrumentation
//! cannot silently rot into unparseable output.
//!
//! Usage: `obs-validate <events.jsonl>` — exits non-zero on the first
//! malformed line (or an empty file).

use lash_obs::json::{self, Value};

fn validate_line(line: &str) -> Result<&'static str, String> {
    let value = json::parse(line).map_err(|e| format!("not valid JSON: {e}"))?;
    if !matches!(value, Value::Object(_)) {
        return Err("event is not a JSON object".to_string());
    }
    match value.get("ts_us").and_then(Value::as_f64) {
        Some(ts) if ts >= 0.0 => {}
        _ => return Err("missing numeric \"ts_us\"".to_string()),
    }
    let event = value
        .get("event")
        .and_then(Value::as_str)
        .ok_or_else(|| "missing string \"event\"".to_string())?;
    if value.get("name").and_then(Value::as_str).is_none() {
        return Err("missing string \"name\"".to_string());
    }
    if event == "span" && value.get("dur_us").and_then(Value::as_f64).is_none() {
        return Err("span event without numeric \"dur_us\"".to_string());
    }
    Ok(if event == "span" { "span" } else { "other" })
}

fn main() {
    let path = match std::env::args().nth(1) {
        Some(path) => path,
        None => {
            eprintln!("usage: obs-validate <events.jsonl>");
            std::process::exit(2);
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let mut events = 0u64;
    let mut spans = 0u64;
    for (i, line) in contents.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match validate_line(line) {
            Ok(kind) => {
                events += 1;
                if kind == "span" {
                    spans += 1;
                }
            }
            Err(e) => {
                eprintln!("obs-validate: {path}:{}: {e}\n  {line}", i + 1);
                std::process::exit(1);
            }
        }
    }
    if events == 0 {
        eprintln!(
            "obs-validate: {path} holds no events — was {} set?",
            lash_obs::JSONL_ENV
        );
        std::process::exit(1);
    }
    println!("obs-validate: {events} events OK ({spans} spans) in {path}");
}

#[cfg(test)]
mod tests {
    use super::validate_line;

    #[test]
    fn accepts_well_formed_events() {
        assert_eq!(
            validate_line(r#"{"ts_us":1,"event":"span","name":"a.b","dur_us":2}"#),
            Ok("span")
        );
        assert_eq!(
            validate_line(r#"{"ts_us":1,"event":"swap","name":"index.swap","queries_served":9}"#),
            Ok("other")
        );
    }

    #[test]
    fn rejects_missing_keys_and_bad_json() {
        assert!(validate_line("not json").is_err());
        assert!(validate_line(r#"{"event":"span","name":"a"}"#).is_err());
        assert!(validate_line(r#"{"ts_us":1,"name":"a"}"#).is_err());
        assert!(validate_line(r#"{"ts_us":1,"event":"span","name":"a"}"#).is_err());
        assert!(validate_line(r#"[1,2,3]"#).is_err());
    }
}
