//! Validates a `LASH_OBS_JSONL` event file: per-line schema (numeric
//! `ts_us`, string `event`/`name`, `dur_us` on spans, well-formed trace
//! ids) plus stream-level referential integrity — every `parent_id`
//! resolves to a span emitted in the same trace, no duplicate span ids,
//! exactly one root per trace. CI's `obs` leg runs the whole test suite
//! with the sink enabled and pipes the result through this tool, so
//! instrumentation cannot silently rot into unparseable output or a
//! broken span graph. The checks live in [`lash_obs::validate`]; the
//! `obs validate` subcommand runs the same ones.
//!
//! Usage: `obs-validate [--schema-only] <events.jsonl>` — exits non-zero
//! on the first violation (or an empty file). `--schema-only` skips the
//! trace-graph checks: use it on *windowed* streams — flight-recorder
//! dumps and `RecentEvents` admin scrapes — where parent spans may have
//! scrolled out of the ring.

fn main() {
    let mut schema_only = false;
    let mut path = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--schema-only" => schema_only = true,
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg),
            _ => {
                eprintln!("usage: obs-validate [--schema-only] <events.jsonl>");
                std::process::exit(2);
            }
        }
    }
    let path = match path {
        Some(path) => path,
        None => {
            eprintln!("usage: obs-validate [--schema-only] <events.jsonl>");
            std::process::exit(2);
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let result = if schema_only {
        lash_obs::validate::validate_str_schema_only(&contents)
    } else {
        lash_obs::validate::validate_str(&contents)
    };
    let (_, stats) = match result {
        Ok(result) => result,
        Err(e) => {
            eprintln!("obs-validate: {path}: {e}");
            std::process::exit(1);
        }
    };
    if stats.events == 0 {
        eprintln!(
            "obs-validate: {path} holds no events — was {} set?",
            lash_obs::JSONL_ENV
        );
        std::process::exit(1);
    }
    println!(
        "obs-validate: {} events OK ({} spans, {} slow-ops, {} admins, {} traces) in {path}",
        stats.events, stats.spans, stats.slow_ops, stats.admins, stats.traces
    );
}
