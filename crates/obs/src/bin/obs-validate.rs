//! Validates a `LASH_OBS_JSONL` event file: per-line schema (numeric
//! `ts_us`, string `event`/`name`, `dur_us` on spans, well-formed trace
//! ids) plus stream-level referential integrity — every `parent_id`
//! resolves to a span emitted in the same trace, no duplicate span ids,
//! exactly one root per trace. CI's `obs` leg runs the whole test suite
//! with the sink enabled and pipes the result through this tool, so
//! instrumentation cannot silently rot into unparseable output or a
//! broken span graph. The checks live in [`lash_obs::validate`]; the
//! `obs validate` subcommand runs the same ones.
//!
//! Usage: `obs-validate <events.jsonl>` — exits non-zero on the first
//! violation (or an empty file).

fn main() {
    let path = match std::env::args().nth(1) {
        Some(path) => path,
        None => {
            eprintln!("usage: obs-validate <events.jsonl>");
            std::process::exit(2);
        }
    };
    let contents = match std::fs::read_to_string(&path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs-validate: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let (_, stats) = match lash_obs::validate::validate_str(&contents) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("obs-validate: {path}: {e}");
            std::process::exit(1);
        }
    };
    if stats.events == 0 {
        eprintln!(
            "obs-validate: {path} holds no events — was {} set?",
            lash_obs::JSONL_ENV
        );
        std::process::exit(1);
    }
    println!(
        "obs-validate: {} events OK ({} spans, {} slow-ops, {} traces) in {path}",
        stats.events, stats.spans, stats.slow_ops, stats.traces
    );
}
