//! The corpus reader: cold open, streaming shard scans chained across
//! generations, parallel multi-shard scans, header-only f-lists, and the
//! bridge into the distributed mining jobs.
//!
//! A [`CorpusReader`] is a **snapshot**: it is pinned to the manifest
//! version it opened and resolves every segment path through its own copy
//! of the generation list, so generations sealed (or compacted) later are
//! invisible until the corpus is re-opened. See [`crate::generations`] for
//! the sealing protocol.

use std::fs::File;
use std::io::{BufReader, Seek};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use lash_core::distributed::lash_job::{Lash, LashResult};
use lash_core::error::Error as CoreError;
use lash_core::flist::FList;
use lash_core::params::GsmParams;
use lash_core::sequence::{SequenceDatabase, ShardedCorpus};
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame;

use crate::format::{self, BlockHeader, GenerationMeta, Manifest, RankOrder};
use crate::generations::{read_manifest, read_required_frame};
use crate::{Result, StoreError};

/// Environment variable selecting the engine behind the push-style
/// [`ShardedCorpus`] scans (the mining path): `mmap` (the default) opens
/// segments as zero-copy memory maps, verifies every checksum once at
/// open, and decodes ahead on a background thread; `buffered` keeps the
/// classic streaming `BufReader` scan. The pull-style [`ShardScan`] API is
/// always buffered (compaction's merge consumes it incrementally).
///
/// A set-but-unrecognized value panics — the variable exists so CI can pin
/// a scan engine, and a typo silently changing the engine under test would
/// defeat that.
pub const SCAN_MODE_ENV: &str = "LASH_SCAN_MODE";

/// Which engine drives a push-style shard scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScanMode {
    Mmap,
    Buffered,
}

/// Reads [`SCAN_MODE_ENV`]; unset or empty means mmap.
fn scan_mode_from_env() -> ScanMode {
    match std::env::var(SCAN_MODE_ENV) {
        Err(_) => ScanMode::Mmap,
        Ok(value) => match value.trim() {
            "" | "mmap" => ScanMode::Mmap,
            "buffered" => ScanMode::Buffered,
            other => panic!(
                "{SCAN_MODE_ENV}={other:?} is not a scan mode: expected \"mmap\" or \"buffered\""
            ),
        },
    }
}

/// The item space a scan delivers sequences in. Blocks are stored in
/// whichever space their codec uses (ids through v3, ranks in v4); the
/// decoder maps to the requested space, which is a no-op when they already
/// agree — the point of rank-space segments: a mine job asking for ranks
/// over a v4 corpus gets the stored bytes untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanSpace {
    /// Vocabulary item ids — what every pre-v4 consumer expects.
    Items,
    /// Corpus frequency ranks (the mine job's working encoding); requires
    /// the corpus rank order.
    Ranks,
}

/// A corpus opened cold from its manifest: vocabulary, hierarchy,
/// partitioning, and the generation list are restored without touching any
/// segment file.
pub struct CorpusReader {
    dir: PathBuf,
    manifest: Manifest,
    vocab: Vocabulary,
    /// Mapped-segment cache, one entry per scanned shard: every segment
    /// checksum is verified once, at the shard's first mapped scan, and
    /// later scans reuse the validated maps with no further hashing or
    /// syscalls — a mining run re-scans each shard once per level, so the
    /// validation pass amortizes to zero. Safe to cache because the reader
    /// is pinned to its manifest snapshot (segment files are immutable once
    /// sealed).
    mapped: Mutex<std::collections::HashMap<usize, Arc<Vec<MappedSegment>>>>,
    /// Pins this snapshot's generations in the process-wide registry
    /// ([`crate::pins`]): compaction defers deleting replaced directories
    /// until the last pinned reader — and with it the mapped-segment cache
    /// above — drops. Declared last so it releases after every cached map.
    _pins: crate::pins::PinGuard,
}

impl CorpusReader {
    /// Opens the corpus at `dir` by reading and validating its manifest.
    ///
    /// Manifests written by a different (usually newer) format version are
    /// rejected with [`StoreError::UnsupportedVersion`] rather than
    /// misparsed.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (manifest, vocab) = read_manifest(&dir).inspect_err(|e| {
            lash_obs::flight::record_error("store.open", &e.to_string());
        })?;
        // Pin the snapshot's generation set: from here on a compaction that
        // replaces these generations defers their deletes to this reader's
        // drop, so scans stay valid for the snapshot's whole lifetime.
        let pins = crate::pins::pin(&dir, manifest.generations.iter().map(|g| g.id));
        let obs = lash_obs::global();
        obs.gauge("store.generations")
            .set(manifest.generations.len() as u64);
        obs.gauge("store.sequences").set(manifest.num_sequences);
        Ok(CorpusReader {
            dir,
            manifest,
            vocab,
            mapped: Mutex::new(std::collections::HashMap::new()),
            _pins: pins,
        })
    }

    /// The corpus directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The manifest snapshot this reader is pinned to.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The interned vocabulary and hierarchy the corpus was written with.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Total number of sequences.
    pub fn len(&self) -> u64 {
        self.manifest.num_sequences
    }

    /// True if the corpus holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.manifest.num_sequences == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.manifest.partitioning.num_shards() as usize
    }

    /// Number of sealed generations in this snapshot.
    pub fn num_generations(&self) -> usize {
        self.manifest.generations.len()
    }

    /// The corpus rank↔id mapping (`Some` once the corpus holds any
    /// rank-coded v4 generation): the write-once descending-frequency item
    /// order its segments are encoded in.
    pub fn rank_order(&self) -> Option<&RankOrder> {
        self.manifest.rank_order.as_deref()
    }

    /// The sealed generations of this snapshot, in sequence-id order.
    pub fn generations(&self) -> &[GenerationMeta] {
        &self.manifest.generations
    }

    /// The segment files holding `shard`, one per generation, in
    /// generation order.
    fn segment_paths(&self, shard: usize) -> Vec<PathBuf> {
        self.manifest
            .generations
            .iter()
            .map(|g| {
                self.dir
                    .join(format::generation_dir_name(g.id))
                    .join(format::shard_file_name(shard as u32))
            })
            .collect()
    }

    /// The shard's mapped (and open-time-validated) segments, reused across
    /// scans: the first mapped scan of a shard pays for the mmap and the
    /// checksum walk; every later one starts decoding immediately.
    fn mapped_segments(&self, shard: usize) -> Result<Arc<Vec<MappedSegment>>> {
        if let Some(segments) = self.mapped.lock().expect("mapped cache lock").get(&shard) {
            return Ok(Arc::clone(segments));
        }
        // Open outside the lock so slow first-time validation of one shard
        // never blocks scans of already-cached shards.
        let mut segments = Vec::new();
        for path in self.segment_paths(shard) {
            segments.push(MappedSegment::open(&path, shard as u32)?);
        }
        let segments = Arc::new(segments);
        self.mapped
            .lock()
            .expect("mapped cache lock")
            .insert(shard, Arc::clone(&segments));
        Ok(segments)
    }

    /// Opens a streaming scan over one shard, transparently chaining the
    /// shard's blocks across all generations.
    pub fn scan_shard(&self, shard: usize) -> Result<ShardScan<'static>> {
        Ok(ShardScan::open_chain(
            self.segment_paths(shard),
            shard as u32,
            self.vocab.len() as u32,
            None,
            self.manifest.rank_order.clone(),
            ScanSpace::Items,
        ))
    }

    /// Opens a streaming scan over one shard that decodes only blocks whose
    /// header passes `filter`; rejected blocks' payloads are seeked over
    /// without being read. With per-block G1 sketches this turns a full
    /// shard scan into a few header reads on long-tail shards.
    pub fn scan_shard_filtered<'f>(
        &self,
        shard: usize,
        filter: BlockFilter<'f>,
    ) -> Result<ShardScan<'f>> {
        Ok(ShardScan::open_chain(
            self.segment_paths(shard),
            shard as u32,
            self.vocab.len() as u32,
            Some(filter),
            self.manifest.rank_order.clone(),
            ScanSpace::Items,
        ))
    }

    /// Iterates every sequence of the corpus, shard by shard (storage
    /// order, not id order — use [`CorpusReader::to_database`] for id
    /// order).
    pub fn scan(&self) -> CorpusScan<'_> {
        CorpusScan {
            reader: self,
            shard: 0,
            current: None,
        }
    }

    /// Shards whose sequence-id ranges overlap `ids`, per the manifest —
    /// with range partitioning this prunes scans to a handful of segments.
    pub fn shards_overlapping(&self, ids: Range<u64>) -> Vec<usize> {
        self.manifest
            .shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.sequences > 0 && s.min_seq < ids.end && s.max_seq >= ids.start)
            .map(|(i, _)| i)
            .collect()
    }

    /// Scans all shards in parallel with up to `parallelism` threads,
    /// applying `f` to each shard's stream. Results come back in shard
    /// order; the first error wins.
    pub fn par_scan<T, F>(&self, parallelism: usize, f: F) -> Result<Vec<T>>
    where
        T: Send,
        F: Fn(usize, ShardScan<'static>) -> Result<T> + Sync,
    {
        let n = self.num_shards();
        let slots: Vec<Mutex<Option<Result<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = parallelism.clamp(1, n.max(1));
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= n {
                        break;
                    }
                    let result = self.scan_shard(shard).and_then(|scan| f(shard, scan));
                    *slots[shard].lock().expect("scan slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("scan slot lock")
                    .expect("every shard visited")
            })
            .collect()
    }

    /// Materializes the corpus as an in-memory [`SequenceDatabase`] in
    /// original append order (sequence id order), scanning shards in
    /// parallel.
    pub fn to_database(&self) -> Result<SequenceDatabase> {
        let total = self.len() as usize;
        let per_shard = self.par_scan(available_threads(), |_, scan| {
            let mut seqs = Vec::new();
            for record in scan {
                seqs.push(record?);
            }
            Ok(seqs)
        })?;
        let mut slots: Vec<Option<Vec<ItemId>>> = vec![None; total];
        for seqs in per_shard {
            for (id, items) in seqs {
                let slot = slots
                    .get_mut(id as usize)
                    .ok_or_else(|| StoreError::Corrupt(format!("sequence id {id} out of range")))?;
                if slot.replace(items).is_some() {
                    return Err(StoreError::Corrupt(format!("duplicate sequence id {id}")));
                }
            }
        }
        let mut db = SequenceDatabase::with_capacity(total, self.manifest.total_items as usize);
        for (id, slot) in slots.into_iter().enumerate() {
            let items =
                slot.ok_or_else(|| StoreError::Corrupt(format!("missing sequence id {id}")))?;
            db.push(&items);
        }
        Ok(db)
    }

    /// Iterates the block headers of one shard — across all generations —
    /// without decoding (or even reading) any payload; payload frames are
    /// seeked over. The iterator cross-checks each generation's block count
    /// against the manifest, so a truncated segment surfaces as an error
    /// even though no payload is read.
    pub fn block_headers(&self, shard: usize) -> Result<BlockHeaders> {
        if shard >= self.num_shards() {
            return Err(StoreError::Corrupt(format!("no shard {shard} in manifest")));
        }
        let segments: Vec<(PathBuf, u64)> = self
            .manifest
            .generations
            .iter()
            .map(|g| {
                (
                    self.dir
                        .join(format::generation_dir_name(g.id))
                        .join(format::shard_file_name(shard as u32)),
                    g.shards[shard].blocks,
                )
            })
            .collect();
        Ok(BlockHeaders {
            shard: shard as u32,
            pending: segments.into_iter(),
            current: None,
            done: false,
        })
    }

    /// Assembles the generalized f-list from block headers alone.
    ///
    /// Returns `Ok(None)` when the corpus was written without sketches; the
    /// caller then falls back to a full scan (`compute_flist_sharded`).
    /// With sketches this reads only header frames — no payload is decoded,
    /// which on a large corpus is the difference between touching a few
    /// kilobytes of headers and every byte of the store. The per-generation
    /// sketches need no special handling: counts are additive, so chaining
    /// headers across generations merges them into one corpus-wide f-list.
    pub fn flist(&self) -> Result<Option<FList>> {
        if !self.manifest.sketches {
            return Ok(None);
        }
        let vocab_len = self.vocab.len() as u32;
        let partial = self.par_scan_headers(|header, doc_freq: &mut Vec<u64>| {
            for &(item, count) in &header.sketch {
                if item >= vocab_len {
                    return Err(StoreError::Corrupt(format!(
                        "sketch item {item} outside vocabulary"
                    )));
                }
                doc_freq[item as usize] += count as u64;
            }
            Ok(())
        })?;
        let mut doc_freq = vec![0u64; self.vocab.len()];
        for shard_freq in partial {
            for (i, f) in shard_freq.into_iter().enumerate() {
                doc_freq[i] += f;
            }
        }
        let flist = FList::from_counts(
            &self.vocab,
            doc_freq
                .into_iter()
                .enumerate()
                .map(|(i, f)| (ItemId::from_u32(i as u32), f)),
        )
        .map_err(|e| StoreError::Corrupt(format!("sketch f-list: {e}")))?;
        Ok(Some(flist))
    }

    /// Folds every block header of every shard, in parallel, into one
    /// accumulator per shard.
    fn par_scan_headers<F>(&self, fold: F) -> Result<Vec<Vec<u64>>>
    where
        F: Fn(&BlockHeader, &mut Vec<u64>) -> Result<()> + Sync,
    {
        let vocab_len = self.vocab.len();
        let n = self.num_shards();
        let slots: Vec<Mutex<Option<Result<Vec<u64>>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..n.max(1).min(available_threads()) {
                scope.spawn(|| loop {
                    let shard = cursor.fetch_add(1, Ordering::Relaxed);
                    if shard >= n {
                        break;
                    }
                    let result = (|| {
                        let mut acc = vec![0u64; vocab_len];
                        for header in self.block_headers(shard)? {
                            fold(&header?, &mut acc)?;
                        }
                        Ok(acc)
                    })();
                    *slots[shard].lock().expect("header slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("header slot lock")
                    .expect("every shard visited")
            })
            .collect()
    }

    /// Runs the full LASH pipeline from storage: the f-list comes from
    /// block headers when available (header-only preprocessing), and both
    /// distributed jobs stream shards via the [`ShardedCorpus`] impl — one
    /// map task per shard.
    pub fn mine(&self, lash: &Lash, params: &GsmParams) -> lash_core::error::Result<LashResult> {
        // A hierarchy-ignoring run discards any hierarchy-closed f-list, so
        // skip the header pass entirely in that mode.
        let flist = if lash.config().ignore_hierarchy {
            None
        } else {
            self.flist()
                .map_err(|e| CoreError::Engine(format!("store f-list: {e}")))?
        };
        lash.mine_sharded(self, &self.vocab, params, flist)
    }

    /// Drives `f` over every sequence of `shard` through the zero-copy
    /// mapped engine: segments are memory-mapped with every checksum
    /// verified once — at the shard's **first** mapped scan; repeat scans
    /// reuse the reader's validated maps — then one background thread
    /// decodes the next block into a double-buffered batch while `f`
    /// consumes the current one (inline, without the thread, when the host
    /// has a single hardware thread and overlap is impossible).
    /// `store.scan.prefetch_hits` counts blocks that were already decoded
    /// when the consumer asked; `prefetch_stalls` counts waits.
    pub fn scan_shard_mapped(&self, shard: usize, f: &mut dyn FnMut(u64, &[ItemId])) -> Result<()> {
        self.scan_shard_mapped_inner(shard, None, ScanSpace::Items, f)
    }

    fn scan_shard_mapped_inner(
        &self,
        shard: usize,
        filter: Option<&dyn Fn(&BlockHeader) -> bool>,
        space: ScanSpace,
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> Result<()> {
        let vocab_len = self.vocab.len() as u32;
        let rank = self.manifest.rank_order.as_deref();
        let segments = self.mapped_segments(shard)?;
        // Headers all came out of the open-time validation walk, so the
        // whole scan's block list is known (and filtered) up front.
        let mut blocks_pruned = 0u64;
        let mut selected: Vec<(usize, usize)> = Vec::new();
        for (si, seg) in segments.iter().enumerate() {
            for (bi, (header, _)) in seg.blocks.iter().enumerate() {
                if filter.is_none_or(|flt| flt(header)) {
                    selected.push((si, bi));
                } else {
                    blocks_pruned += 1;
                }
            }
        }
        let mut blocks_decoded = 0u64;
        let mut prefetch_hits = 0u64;
        let mut prefetch_stalls = 0u64;
        let mut error: Option<StoreError> = None;
        if available_threads() == 1 || selected.len() < 2 {
            // Nothing to overlap with: a lone hardware thread (or a lone
            // block) would turn the decode-ahead handoff into pure context
            // switching, so decode inline off the maps instead.
            let mut scratch = DecodeScratch::default();
            let mut batch = SequenceBatch::default();
            for &(si, bi) in &selected {
                match decode_block_into(
                    &segments[si].blocks[bi].0,
                    segments[si].payload(bi),
                    vocab_len,
                    &mut batch,
                    &mut scratch,
                    space,
                    rank,
                ) {
                    Ok(()) => {
                        blocks_decoded += 1;
                        for (id, items) in batch.iter() {
                            f(id, items);
                        }
                    }
                    Err(e) => {
                        error = Some(e);
                        break;
                    }
                }
            }
        } else {
            use std::sync::mpsc::{channel, sync_channel, TryRecvError};
            // Two batches circulate: one being consumed, one being decoded
            // ahead. The full channel's capacity of 1 plus the batch held by
            // the decoder bounds memory at two decoded blocks.
            let (full_tx, full_rx) = sync_channel::<Result<SequenceBatch>>(1);
            let (empty_tx, empty_rx) = channel::<SequenceBatch>();
            for _ in 0..2 {
                empty_tx
                    .send(SequenceBatch::default())
                    .expect("receiver alive");
            }
            let segments = &segments;
            let selected = &selected;
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let mut scratch = DecodeScratch::default();
                    for &(si, bi) in selected {
                        // The consumer dropping its sender (done or errored)
                        // ends the prefetch.
                        let Ok(mut batch) = empty_rx.recv() else {
                            break;
                        };
                        let result = decode_block_into(
                            &segments[si].blocks[bi].0,
                            segments[si].payload(bi),
                            vocab_len,
                            &mut batch,
                            &mut scratch,
                            space,
                            rank,
                        )
                        .map(|()| batch);
                        let failed = result.is_err();
                        if full_tx.send(result).is_err() || failed {
                            break;
                        }
                    }
                });
                loop {
                    let next = match full_rx.try_recv() {
                        Ok(next) => {
                            prefetch_hits += 1;
                            next
                        }
                        Err(TryRecvError::Empty) => {
                            prefetch_stalls += 1;
                            match full_rx.recv() {
                                Ok(next) => next,
                                Err(_) => break,
                            }
                        }
                        Err(TryRecvError::Disconnected) => break,
                    };
                    match next {
                        Ok(batch) => {
                            blocks_decoded += 1;
                            for (id, items) in batch.iter() {
                                f(id, items);
                            }
                            // A failed recycle only means the decoder already
                            // finished and dropped its receiver — the full
                            // channel may still hold its final block, so keep
                            // draining; the loop ends on its disconnect.
                            let _ = empty_tx.send(batch);
                        }
                        Err(e) => {
                            error = Some(e);
                            break;
                        }
                    }
                }
                // Unblocks a decoder still waiting for an empty batch.
                drop(empty_tx);
            });
        }
        let obs = lash_obs::global();
        if blocks_decoded != 0 {
            obs.counter("store.scan.blocks_decoded").add(blocks_decoded);
        }
        if blocks_pruned != 0 {
            obs.counter("store.scan.blocks_pruned").add(blocks_pruned);
        }
        if prefetch_hits != 0 {
            obs.counter("store.scan.prefetch_hits").add(prefetch_hits);
        }
        if prefetch_stalls != 0 {
            obs.counter("store.scan.prefetch_stalls")
                .add(prefetch_stalls);
        }
        match error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Drives `f` over every record of a scan, one decoded block (batch) at a
/// time — the shared-arena delivery that replaces per-record allocation and
/// per-record scan-state churn on the mining hot path.
fn drive_batched(
    mut scan: ShardScan<'_>,
    f: &mut dyn FnMut(u64, &[ItemId]),
) -> lash_core::error::Result<()> {
    let engine = |e: StoreError| CoreError::Engine(format!("store scan: {e}"));
    while let Some(batch) = scan.next_batch().map_err(engine)? {
        for (id, items) in batch.iter() {
            f(id, items);
        }
    }
    Ok(())
}

/// The per-vocabulary-item truth table of a relevance predicate, hoisted
/// per scan: `relevant` is a fixed predicate (the mine job's frequent-item
/// test, a rank lookup per call), but the same items recur in every block's
/// sketch — so evaluate it once per vocabulary item instead of once per
/// (block, sketch entry). Out-of-vocabulary sketch items are treated as
/// irrelevant; the header f-list path rejects them as corruption
/// separately.
fn relevance_table(vocab_len: u32, relevant: &(dyn Fn(ItemId) -> bool + Sync)) -> Vec<bool> {
    (0..vocab_len)
        .map(|item| relevant(ItemId::from_u32(item)))
        .collect()
}

impl ShardedCorpus for CorpusReader {
    fn num_shards(&self) -> usize {
        CorpusReader::num_shards(self)
    }

    fn num_sequences(&self) -> u64 {
        self.manifest.num_sequences
    }

    fn rank_order(&self) -> Option<&[u32]> {
        self.manifest.rank_order.as_deref().map(|r| r.item_of())
    }

    fn scan_shard(
        &self,
        shard: usize,
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> lash_core::error::Result<()> {
        let _scan_span = lash_obs::span!("store.scan.shard", shard = shard);
        let engine = |e: StoreError| {
            lash_obs::flight::record_error("store.scan", &e.to_string());
            CoreError::Engine(format!("store scan: {e}"))
        };
        match scan_mode_from_env() {
            ScanMode::Mmap => self
                .scan_shard_mapped_inner(shard, None, ScanSpace::Items, f)
                .map_err(engine),
            ScanMode::Buffered => {
                let scan = CorpusReader::scan_shard(self, shard).map_err(engine)?;
                drive_batched(scan, f)
            }
        }
    }

    fn scan_shard_pruned(
        &self,
        shard: usize,
        relevant: &(dyn Fn(ItemId) -> bool + Sync),
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> lash_core::error::Result<()> {
        // Without sketches no block can be proven irrelevant.
        if !self.manifest.sketches {
            return ShardedCorpus::scan_shard(self, shard, f);
        }
        let _scan_span = lash_obs::span!("store.scan.shard", shard = shard, pruned = true);
        let engine = |e: StoreError| {
            lash_obs::flight::record_error("store.scan", &e.to_string());
            CoreError::Engine(format!("store scan: {e}"))
        };
        let relevant_item = relevance_table(self.vocab.len() as u32, relevant);
        // The sketch lists every item of the block's G1 closures, so a block
        // with no relevant sketch item holds no relevant sequence.
        let filter = |header: &BlockHeader| {
            header
                .sketch
                .iter()
                .any(|&(item, _)| relevant_item.get(item as usize).copied().unwrap_or(false))
        };
        match scan_mode_from_env() {
            ScanMode::Mmap => self
                .scan_shard_mapped_inner(shard, Some(&filter), ScanSpace::Items, f)
                .map_err(engine),
            ScanMode::Buffered => {
                let scan = self.scan_shard_filtered(shard, &filter).map_err(engine)?;
                drive_batched(scan, f)
            }
        }
    }

    fn scan_shard_ranked(
        &self,
        shard: usize,
        relevant: &(dyn Fn(ItemId) -> bool + Sync),
        f: &mut dyn FnMut(u64, &[ItemId]),
    ) -> lash_core::error::Result<()> {
        let _scan_span = lash_obs::span!("store.scan.shard", shard = shard, ranked = true);
        let engine = |e: StoreError| {
            lash_obs::flight::record_error("store.scan", &e.to_string());
            CoreError::Engine(format!("store scan: {e}"))
        };
        if self.manifest.rank_order.is_none() {
            return Err(CoreError::Engine(
                "ranked scan requires a rank-ordered (v4) corpus".into(),
            ));
        }
        // `relevant` stays an id-space predicate — sketches are id-space —
        // while delivery is rank-space: for v4 blocks the stored bytes pass
        // through untouched, which is the map-phase no-op this scan exists
        // for.
        let relevant_item = if self.manifest.sketches {
            relevance_table(self.vocab.len() as u32, relevant)
        } else {
            Vec::new()
        };
        let filter = |header: &BlockHeader| {
            header
                .sketch
                .iter()
                .any(|&(item, _)| relevant_item.get(item as usize).copied().unwrap_or(false))
        };
        let filter: Option<&(dyn Fn(&BlockHeader) -> bool + Sync)> = if self.manifest.sketches {
            Some(&filter)
        } else {
            None
        };
        match scan_mode_from_env() {
            ScanMode::Mmap => self
                .scan_shard_mapped_inner(
                    shard,
                    filter.map(|flt| flt as &dyn Fn(&BlockHeader) -> bool),
                    ScanSpace::Ranks,
                    f,
                )
                .map_err(engine),
            ScanMode::Buffered => {
                let scan = ShardScan::open_chain(
                    self.segment_paths(shard),
                    shard as u32,
                    self.vocab.len() as u32,
                    filter,
                    self.manifest.rank_order.clone(),
                    ScanSpace::Ranks,
                );
                drive_batched(scan, f)
            }
        }
    }
}

/// One decoded block of sequences: ids plus a shared item arena with
/// offsets, so a whole block's records are delivered without a single
/// per-record allocation.
#[derive(Debug, Default)]
pub struct SequenceBatch {
    ids: Vec<u64>,
    items: Vec<ItemId>,
    offsets: Vec<u32>,
}

impl SequenceBatch {
    fn clear(&mut self) {
        self.ids.clear();
        self.items.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Number of sequences in the batch.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if the batch holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The `i`-th sequence: its corpus-wide id and its items (a slice of
    /// the shared arena).
    pub fn get(&self, i: usize) -> (u64, &[ItemId]) {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        (self.ids[i], &self.items[lo..hi])
    }

    /// Iterates the batch's sequences.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[ItemId])> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// The shared item arena (all sequences back to back).
    pub fn arena(&self) -> &[ItemId] {
        &self.items
    }
}

/// Reusable columns for group-varint block decoding, owned by the scan so
/// no allocation recurs per block.
#[derive(Debug, Default)]
struct DecodeScratch {
    id_deltas: Vec<u64>,
    lens: Vec<u32>,
    flat: Vec<u32>,
}

/// Decodes every record of one block payload into `batch`, dispatching on
/// the block's payload codec and mapping items into `space` (see
/// [`ScanSpace`]; `rank` is the corpus rank order, required whenever the
/// block's stored space differs from the requested one).
fn decode_block_into(
    header: &BlockHeader,
    payload: &[u8],
    vocab_len: u32,
    batch: &mut SequenceBatch,
    scratch: &mut DecodeScratch,
    space: ScanSpace,
    rank: Option<&RankOrder>,
) -> Result<()> {
    // Every record costs at least two payload bytes (id delta + length) and
    // every item at least one, in both codecs — so a header whose claimed
    // counts cannot fit the payload is corruption, rejected *before* any
    // count-sized allocation. Without this, a checksum-valid but hostile
    // header claiming u64::MAX items would panic or OOM the reserve/resize
    // calls below instead of returning a typed error.
    let min_bytes = (2 * header.records as u64).saturating_add(header.items);
    if min_bytes > payload.len() as u64 {
        return Err(StoreError::Corrupt(format!(
            "block header claims {} records / {} items, payload holds {} bytes",
            header.records,
            header.items,
            payload.len()
        )));
    }
    batch.clear();
    batch.ids.reserve(header.records as usize);
    batch.items.reserve(header.items as usize);
    match header.codec {
        format::PayloadCodec::Varint => decode_varint_block(header, payload, vocab_len, batch)?,
        format::PayloadCodec::GroupVarint | format::PayloadCodec::GroupVarintRank => {
            decode_gv_block(header, payload, vocab_len, batch, scratch)?
        }
    }
    // Both spaces are permutations of `0..vocab_len`, so the codecs' range
    // checks above hold for either; only a space mismatch costs a mapping
    // pass. A v4 block scanned for ranks — the mine path — is a no-op here.
    let block_ranked = header.codec == format::PayloadCodec::GroupVarintRank;
    let want_ranked = space == ScanSpace::Ranks;
    if block_ranked != want_ranked {
        let Some(rank) = rank else {
            return Err(StoreError::Corrupt(
                "rank mapping required but the corpus has no rank order".into(),
            ));
        };
        let table = if block_ranked {
            rank.item_of()
        } else {
            rank.rank_of()
        };
        if table.len() != vocab_len as usize {
            return Err(StoreError::Corrupt(format!(
                "rank order covers {} items, vocabulary has {vocab_len}",
                table.len()
            )));
        }
        for item in &mut batch.items {
            *item = ItemId::from_u32(table[item.index()]);
        }
    }
    Ok(())
}

/// The format-v2 record-stream decode: one varint token at a time.
fn decode_varint_block(
    header: &BlockHeader,
    payload: &[u8],
    vocab_len: u32,
    batch: &mut SequenceBatch,
) -> Result<()> {
    let mut pos = 0usize;
    let mut prev_seq = header.first_seq;
    for rec in 0..header.records {
        let (delta, next) = format::decode_record(payload, pos, vocab_len, &mut batch.items)?;
        pos = next;
        let id = prev_seq
            .checked_add(delta)
            .ok_or_else(|| StoreError::Corrupt("sequence id delta overflows".into()))?;
        if id > header.last_seq {
            return Err(StoreError::Corrupt(format!(
                "sequence id {id} beyond block's last id {}",
                header.last_seq
            )));
        }
        prev_seq = id;
        batch.ids.push(id);
        batch.offsets.push(batch.items.len() as u32);
        if rec + 1 == header.records {
            if pos != payload.len() {
                return Err(StoreError::Corrupt(
                    "trailing bytes in block payload".into(),
                ));
            }
            if id != header.last_seq {
                return Err(StoreError::Corrupt(
                    "block's last sequence id does not match its header".into(),
                ));
            }
        }
    }
    Ok(())
}

/// The format-v3 columnar decode: the whole block's items come out of one
/// uninterrupted group-varint kernel run instead of per-token parsing —
/// the scan-bandwidth lever this format exists for.
fn decode_gv_block(
    header: &BlockHeader,
    payload: &[u8],
    vocab_len: u32,
    batch: &mut SequenceBatch,
    scratch: &mut DecodeScratch,
) -> Result<()> {
    let records = header.records as usize;
    let items = usize::try_from(header.items)
        .map_err(|_| StoreError::Corrupt("block item count overflows".into()))?;
    let consumed = format::decode_gv_payload(
        payload,
        records,
        items,
        &mut scratch.id_deltas,
        &mut scratch.lens,
        &mut scratch.flat,
    )?;
    if consumed != payload.len() {
        return Err(StoreError::Corrupt(
            "trailing bytes in block payload".into(),
        ));
    }
    // Ids: prefix-sum the delta column, re-checking the header invariants
    // the v2 path enforces.
    let mut prev_seq = header.first_seq;
    for (rec, &delta) in scratch.id_deltas.iter().enumerate() {
        let id = prev_seq
            .checked_add(delta)
            .ok_or_else(|| StoreError::Corrupt("sequence id delta overflows".into()))?;
        if id > header.last_seq {
            return Err(StoreError::Corrupt(format!(
                "sequence id {id} beyond block's last id {}",
                header.last_seq
            )));
        }
        prev_seq = id;
        batch.ids.push(id);
        if rec + 1 == records && id != header.last_seq {
            return Err(StoreError::Corrupt(
                "block's last sequence id does not match its header".into(),
            ));
        }
    }
    // Offsets: prefix-sum the lengths column; it must tile the item arena
    // exactly.
    let mut offset = 0u64;
    for &len in &scratch.lens {
        offset += len as u64;
        if offset > items as u64 {
            return Err(StoreError::Corrupt(
                "record lengths overrun block item count".into(),
            ));
        }
        batch.offsets.push(offset as u32);
    }
    if offset != items as u64 {
        return Err(StoreError::Corrupt(
            "record lengths do not sum to block item count".into(),
        ));
    }
    // Items: bulk range-check (a vectorizable max-scan, one branch total),
    // then one memcpy-shaped extend into the shared arena.
    let max_item = scratch.flat.iter().fold(0u32, |m, &v| m.max(v));
    if max_item >= vocab_len && !scratch.flat.is_empty() {
        return Err(StoreError::Corrupt(format!(
            "item id {max_item} outside vocabulary of {vocab_len}"
        )));
    }
    batch
        .items
        .extend(scratch.flat.iter().map(|&v| ItemId::from_u32(v)));
    Ok(())
}

/// A predicate over block headers deciding whether a block's payload is
/// worth decoding; see [`CorpusReader::scan_shard_filtered`].
pub type BlockFilter<'f> = &'f (dyn Fn(&BlockHeader) -> bool + Sync);

/// A positioned reader over one generation's segment file for one shard:
/// yields raw blocks (header + payload) in storage order, optionally
/// seeking over filtered-out payloads. Header and payload bytes land in
/// grow-only reusable buffers, so a scan over thousands of blocks performs
/// a handful of allocations total.
pub(crate) struct SegmentScan {
    file: BufReader<File>,
    file_len: u64,
    /// The segment's format version (2 to 4), which governs block-header
    /// parsing (v3+ headers open with a payload-codec tag) and the frame
    /// checksum flavor of block frames (wide for v3+).
    version: u32,
    checksum: lash_encoding::FrameChecksum,
    header_buf: Vec<u8>,
    payload_buf: Vec<u8>,
    payload_len: usize,
}

impl SegmentScan {
    /// Opens `path` and validates its segment header against `shard`.
    pub(crate) fn open(path: &Path, shard: u32) -> Result<Self> {
        let handle = File::open(path)?;
        let file_len = handle.metadata()?.len();
        let mut file = BufReader::new(handle);
        // The header read seeds the buffer later block-header frames reuse.
        let mut header_buf = Vec::new();
        let len = read_required_frame(&mut file, &mut header_buf, "segment header")?;
        let version = format::decode_segment_header(&header_buf[..len], shard)?;
        Ok(SegmentScan {
            file,
            file_len,
            version,
            checksum: format::frame_checksum_for_version(version),
            header_buf,
            payload_buf: Vec::new(),
            payload_len: 0,
        })
    }

    /// The payload of the block most recently returned by
    /// [`SegmentScan::next_block`].
    fn payload(&self) -> &[u8] {
        &self.payload_buf[..self.payload_len]
    }

    /// Seeks past the next frame (a rejected block's payload) without
    /// reading it, verifying the seek stays inside the file so truncation
    /// is still detected.
    fn skip_payload(&mut self) -> Result<()> {
        let Some(skip) = frame::read_frame_len(&mut self.file)? else {
            return Err(StoreError::Corrupt("missing block payload frame".into()));
        };
        self.file.seek_relative(skip as i64)?;
        if self.file.stream_position()? > self.file_len {
            return Err(StoreError::Corrupt(
                "segment truncated inside a block payload".into(),
            ));
        }
        Ok(())
    }

    /// Reads the next block whose header passes `filter` (counting skipped
    /// blocks into `pruned`); `None` at clean end-of-segment. The payload
    /// is left in the reusable buffer ([`SegmentScan::payload`]).
    fn next_block(
        &mut self,
        filter: Option<BlockFilter<'_>>,
        pruned: &mut u64,
    ) -> Result<Option<BlockHeader>> {
        loop {
            let Some(header_len) =
                frame::read_frame_into(&mut self.file, &mut self.header_buf, self.checksum)?
            else {
                return Ok(None);
            };
            let header = format::decode_block_header(&self.header_buf[..header_len], self.version)?;
            if let Some(filter) = filter {
                if !filter(&header) {
                    self.skip_payload()?;
                    *pruned += 1;
                    continue;
                }
            }
            let Some(payload_len) =
                frame::read_frame_into(&mut self.file, &mut self.payload_buf, self.checksum)?
            else {
                return Err(StoreError::Corrupt("missing block payload frame".into()));
            };
            self.payload_len = payload_len;
            return Ok(Some(header));
        }
    }
}

/// One generation's segment file for one shard as a zero-copy view: the
/// whole file is memory-mapped (heap-loaded on platforms without mmap) and
/// **every frame checksum is verified once here, at open** — after that,
/// block payloads are consumed as borrowed windows into the map with no
/// further hashing, copying, or syscalls. The per-block headers come out of
/// the same validation walk for free, so filtering happens before any
/// decode work is scheduled.
struct MappedSegment {
    frames: frame::MappedFrames,
    /// Every block: decoded header plus its payload's byte range in the map.
    blocks: Vec<(BlockHeader, Range<usize>)>,
}

impl MappedSegment {
    fn open(path: &Path, shard: u32) -> Result<Self> {
        let frames = frame::MappedFrames::open(path)?;
        let bytes = frames.bytes();
        let corrupt =
            |e: lash_encoding::DecodeError| StoreError::Corrupt(format!("mapped segment: {e}"));
        // The segment header frame always uses the classic checksum so it
        // can be parsed before the version is known.
        let (header, mut pos) = frame::decode_frame(bytes).map_err(corrupt)?;
        let version = format::decode_segment_header(header, shard)?;
        let checksum = format::frame_checksum_for_version(version);
        let mut blocks = Vec::new();
        while pos < bytes.len() {
            let (header_bytes, consumed) =
                frame::decode_frame_with(&bytes[pos..], checksum).map_err(corrupt)?;
            let block_header = format::decode_block_header(header_bytes, version)?;
            pos += consumed;
            let (payload, consumed) = frame::decode_frame_with(&bytes[pos..], checksum)
                .map_err(|_| StoreError::Corrupt("missing block payload frame".into()))?;
            // The payload sits at the end of its frame, just before the
            // 4-byte checksum trailer.
            let start = pos + consumed - 4 - payload.len();
            blocks.push((block_header, start..start + payload.len()));
            pos += consumed;
        }
        Ok(MappedSegment { frames, blocks })
    }

    /// The payload window of block `i`.
    fn payload(&self, i: usize) -> &[u8] {
        &self.frames.bytes()[self.blocks[i].1.clone()]
    }
}

/// A streaming scan over one shard, yielding `(sequence id, items)` in
/// storage order and transparently chaining the shard's segment files
/// across generations (oldest first, so ids stay ascending). Blocks are
/// read, checksum-verified, and decoded **one block at a time into a shared
/// batch** (item arena + offsets), so memory stays bounded by one block and
/// no per-record allocation happens. An optional block filter can skip
/// whole blocks — their payload frames are seeked over, never read.
pub struct ShardScan<'f> {
    shard: u32,
    vocab_len: u32,
    filter: Option<BlockFilter<'f>>,
    /// The corpus rank order (when it has one), for mapping between stored
    /// and requested item spaces.
    rank: Option<Arc<RankOrder>>,
    /// The item space sequences are delivered in.
    space: ScanSpace,
    /// Segment files not yet opened, in generation order.
    pending: std::vec::IntoIter<PathBuf>,
    current: Option<SegmentScan>,
    batch: SequenceBatch,
    scratch: DecodeScratch,
    /// Cursor into `batch` for the record-at-a-time APIs.
    rec: usize,
    blocks_decoded: u64,
    blocks_pruned: u64,
}

impl Drop for ShardScan<'_> {
    fn drop(&mut self) {
        // Publish the scan's block totals to the registry once, at end of
        // scan, so the per-block decode loop never touches it. The global
        // counters expose the sketch-prune hit rate
        // (`blocks_pruned / (blocks_pruned + blocks_decoded)`) across all
        // scans in the process.
        if self.blocks_decoded != 0 {
            lash_obs::global()
                .counter("store.scan.blocks_decoded")
                .add(self.blocks_decoded);
        }
        if self.blocks_pruned != 0 {
            lash_obs::global()
                .counter("store.scan.blocks_pruned")
                .add(self.blocks_pruned);
        }
    }
}

impl<'f> ShardScan<'f> {
    /// Opens a scan chaining `segments` (one per generation, oldest first).
    /// Files are opened lazily, one at a time.
    pub(crate) fn open_chain(
        segments: Vec<PathBuf>,
        shard: u32,
        vocab_len: u32,
        filter: Option<BlockFilter<'f>>,
        rank: Option<Arc<RankOrder>>,
        space: ScanSpace,
    ) -> Self {
        let mut batch = SequenceBatch::default();
        batch.clear();
        ShardScan {
            shard,
            vocab_len,
            filter,
            rank,
            space,
            pending: segments.into_iter(),
            current: None,
            batch,
            scratch: DecodeScratch::default(),
            rec: 0,
            blocks_decoded: 0,
            blocks_pruned: 0,
        }
    }

    /// Blocks whose payload was decoded so far.
    pub fn blocks_decoded(&self) -> u64 {
        self.blocks_decoded
    }

    /// Blocks skipped by the filter without reading their payload.
    pub fn blocks_pruned(&self) -> u64 {
        self.blocks_pruned
    }

    /// Stops the scan (after an error surfaced through the [`Iterator`]
    /// impl).
    fn poison(&mut self) {
        self.current = None;
        self.pending = Vec::new().into_iter();
    }

    /// Decodes the next (unfiltered) block into the shared batch, moving on
    /// to the next generation's segment when the current one ends. Returns
    /// `None` at clean end-of-shard; the returned batch is valid until the
    /// next call.
    pub fn next_batch(&mut self) -> Result<Option<&SequenceBatch>> {
        loop {
            if self.current.is_none() {
                match self.pending.next() {
                    Some(path) => self.current = Some(SegmentScan::open(&path, self.shard)?),
                    None => return Ok(None),
                }
            }
            let segment = self.current.as_mut().expect("opened above");
            match segment.next_block(self.filter, &mut self.blocks_pruned)? {
                Some(header) => {
                    decode_block_into(
                        &header,
                        segment.payload(),
                        self.vocab_len,
                        &mut self.batch,
                        &mut self.scratch,
                        self.space,
                        self.rank.as_deref(),
                    )?;
                    self.blocks_decoded += 1;
                    self.rec = 0;
                    return Ok(Some(&self.batch));
                }
                None => self.current = None,
            }
        }
    }

    /// Advances to the next sequence, yielding a borrowed view of its items
    /// (valid until the next call). The allocation-free twin of the
    /// [`Iterator`] impl; the batched [`ShardScan::next_batch`] is the bulk
    /// variant.
    pub fn next_borrowed(&mut self) -> Result<Option<(u64, &[ItemId])>> {
        while self.rec >= self.batch.len() {
            if self.next_batch()?.is_none() {
                return Ok(None);
            }
        }
        let i = self.rec;
        self.rec += 1;
        Ok(Some(self.batch.get(i)))
    }
}

impl Iterator for ShardScan<'_> {
    type Item = Result<(u64, Vec<ItemId>)>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_borrowed() {
            Ok(Some((id, items))) => Some(Ok((id, items.to_vec()))),
            Ok(None) => None,
            Err(e) => {
                self.poison();
                self.rec = self.batch.len();
                Some(Err(e))
            }
        }
    }
}

/// Iterates every sequence of a corpus, shard by shard.
pub struct CorpusScan<'a> {
    reader: &'a CorpusReader,
    shard: usize,
    current: Option<ShardScan<'static>>,
}

impl Iterator for CorpusScan<'_> {
    type Item = Result<(u64, Vec<ItemId>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(scan) = &mut self.current {
                match scan.next() {
                    Some(item) => return Some(item),
                    None => self.current = None,
                }
            }
            if self.shard >= self.reader.num_shards() {
                return None;
            }
            match self.reader.scan_shard(self.shard) {
                Ok(scan) => {
                    self.shard += 1;
                    self.current = Some(scan);
                }
                Err(e) => {
                    self.shard = self.reader.num_shards();
                    return Some(Err(e));
                }
            }
        }
    }
}

/// One generation's segment file being header-scanned.
struct SegmentHeaders {
    file: BufReader<File>,
    file_len: u64,
    version: u32,
    checksum: lash_encoding::FrameChecksum,
    header_buf: Vec<u8>,
    expected_blocks: u64,
    seen_blocks: u64,
}

impl SegmentHeaders {
    fn open(path: &Path, shard: u32, expected_blocks: u64) -> Result<Self> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let mut file = BufReader::new(file);
        let mut header_buf = Vec::new();
        let len = read_required_frame(&mut file, &mut header_buf, "segment header")?;
        let version = format::decode_segment_header(&header_buf[..len], shard)?;
        Ok(SegmentHeaders {
            file,
            file_len,
            version,
            checksum: format::frame_checksum_for_version(version),
            header_buf,
            expected_blocks,
            seen_blocks: 0,
        })
    }

    /// Seeks past the next frame (a block payload) without reading it.
    fn skip_frame(&mut self) -> Result<()> {
        let Some(skip) = frame::read_frame_len(&mut self.file)? else {
            return Err(StoreError::Corrupt("missing block payload frame".into()));
        };
        self.file.seek_relative(skip as i64)?;
        // Seeking past EOF succeeds silently; catch it by position.
        if self.file.stream_position()? > self.file_len {
            return Err(StoreError::Corrupt(
                "segment truncated inside a block payload".into(),
            ));
        }
        Ok(())
    }

    /// The next header of this segment; `None` at (count-verified) EOF.
    fn next_header(&mut self) -> Result<Option<BlockHeader>> {
        let Some(header_len) =
            frame::read_frame_into(&mut self.file, &mut self.header_buf, self.checksum)?
        else {
            if self.seen_blocks != self.expected_blocks {
                return Err(StoreError::Corrupt(format!(
                    "segment holds {} blocks, manifest says {}",
                    self.seen_blocks, self.expected_blocks
                )));
            }
            return Ok(None);
        };
        let header = format::decode_block_header(&self.header_buf[..header_len], self.version)?;
        self.skip_frame()?;
        self.seen_blocks += 1;
        Ok(Some(header))
    }
}

/// Iterates the block headers of one shard across all generations, seeking
/// over payload frames without reading them.
///
/// Because payloads are never read, their checksums cannot flag damage —
/// instead the iterator verifies that every seek stays inside the file and
/// that each generation's block count matches the manifest, so truncation
/// is still detected.
pub struct BlockHeaders {
    shard: u32,
    /// Remaining segments as `(path, expected block count)`.
    pending: std::vec::IntoIter<(PathBuf, u64)>,
    current: Option<SegmentHeaders>,
    done: bool,
}

impl Iterator for BlockHeaders {
    type Item = Result<BlockHeader>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if self.current.is_none() {
                match self.pending.next() {
                    Some((path, expected)) => {
                        match SegmentHeaders::open(&path, self.shard, expected) {
                            Ok(seg) => self.current = Some(seg),
                            Err(e) => {
                                self.done = true;
                                return Some(Err(e));
                            }
                        }
                    }
                    None => {
                        self.done = true;
                        return None;
                    }
                }
            }
            let segment = self.current.as_mut().expect("opened above");
            match segment.next_header() {
                Ok(Some(header)) => return Some(Ok(header)),
                Ok(None) => self.current = None,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::PayloadCodec;

    /// A checksum-valid frame stream cannot smuggle a hostile header whose
    /// claimed counts would panic or OOM the count-sized allocations: the
    /// counts are bounded against the payload length before any reserve.
    #[test]
    fn hostile_header_counts_are_rejected_before_allocating() {
        let mut batch = SequenceBatch::default();
        let mut scratch = DecodeScratch::default();
        for codec in [
            PayloadCodec::Varint,
            PayloadCodec::GroupVarint,
            PayloadCodec::GroupVarintRank,
        ] {
            for (records, items) in [(u32::MAX, u64::MAX), (u32::MAX, 0), (1, u64::MAX)] {
                let header = BlockHeader {
                    codec,
                    records,
                    first_seq: 0,
                    last_seq: records as u64,
                    items,
                    min_item: None,
                    max_item: None,
                    sketch: Vec::new(),
                };
                let err = decode_block_into(
                    &header,
                    &[0u8; 16],
                    10,
                    &mut batch,
                    &mut scratch,
                    ScanSpace::Items,
                    None,
                )
                .unwrap_err();
                assert!(
                    matches!(err, StoreError::Corrupt(_)),
                    "expected Corrupt, got {err:?}"
                );
            }
        }
    }
}
