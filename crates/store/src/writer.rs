//! The append-once corpus writer.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use lash_core::enumeration::g1_items;
use lash_core::sequence::SequenceDatabase;
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame;

use crate::format::{self, BlockHeader, Manifest, ShardStats, FORMAT_VERSION, MANIFEST_FILE};
use crate::{Result, StoreError, StoreOptions};

/// Streaming writer of a new corpus.
///
/// Sequences are appended one at a time (each gets the next corpus-wide id),
/// routed to their shard, and delta/varint-encoded into that shard's open
/// block. Blocks close at the first sequence boundary at or past the
/// configured payload budget. [`CorpusWriter::finish`] seals every shard and
/// writes the manifest — until then the directory holds no manifest, so a
/// crashed write is never mistaken for a complete corpus.
pub struct CorpusWriter {
    dir: PathBuf,
    opts: StoreOptions,
    vocab: Vocabulary,
    shards: Vec<ShardWriter>,
    next_seq: u64,
    total_items: u64,
    scratch: Vec<ItemId>,
}

/// One shard's open segment file plus the block being assembled.
struct ShardWriter {
    file: BufWriter<File>,
    stats: ShardStats,
    block: BlockBuilder,
    header_buf: Vec<u8>,
}

/// Accumulates one block: compressed payload plus header metadata.
#[derive(Default)]
struct BlockBuilder {
    payload: Vec<u8>,
    records: u32,
    first_seq: u64,
    prev_seq: u64,
    items: u64,
    min_item: Option<u32>,
    max_item: Option<u32>,
    sketch: BTreeMap<u32, u32>,
}

impl BlockBuilder {
    fn reset(&mut self) {
        self.payload.clear();
        self.records = 0;
        self.items = 0;
        self.min_item = None;
        self.max_item = None;
        self.sketch.clear();
    }
}

impl CorpusWriter {
    /// Creates a new corpus at `dir` with the given vocabulary.
    ///
    /// The directory is created if missing; an existing manifest makes this
    /// fail with [`StoreError::AlreadyExists`] — the format is append-once,
    /// a corpus is never mutated in place.
    pub fn create(dir: impl AsRef<Path>, vocab: &Vocabulary, opts: StoreOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        opts.partitioning.validate()?;
        fs::create_dir_all(&dir)?;
        if dir.join(MANIFEST_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir));
        }
        let num_shards = opts.partitioning.num_shards();
        let mut shards = Vec::with_capacity(num_shards as usize);
        for shard in 0..num_shards {
            let path = dir.join(format::shard_file_name(shard));
            let mut file = BufWriter::new(File::create(path)?);
            let mut header = Vec::new();
            format::encode_segment_header(shard, &mut header);
            frame::write_frame(&header, &mut file)?;
            shards.push(ShardWriter {
                file,
                stats: ShardStats::default(),
                block: BlockBuilder::default(),
                header_buf: Vec::new(),
            });
        }
        Ok(CorpusWriter {
            dir,
            opts,
            vocab: vocab.clone(),
            shards,
            next_seq: 0,
            total_items: 0,
            scratch: Vec::new(),
        })
    }

    /// The vocabulary this corpus is written against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of sequences appended so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Appends one sequence; returns its corpus-wide id.
    pub fn append(&mut self, seq: &[ItemId]) -> Result<u64> {
        for &item in seq {
            if item.index() >= self.vocab.len() {
                return Err(StoreError::UnknownItem(item.as_u32()));
            }
        }
        let id = self.next_seq;
        self.next_seq += 1;
        self.total_items += seq.len() as u64;
        let shard_idx = self.opts.partitioning.shard_of(id) as usize;
        let shard = &mut self.shards[shard_idx];
        let block = &mut shard.block;
        if block.records == 0 {
            block.first_seq = id;
            block.prev_seq = id;
        }
        format::encode_record(id - block.prev_seq, seq, &mut block.payload);
        block.prev_seq = id;
        block.records += 1;
        block.items += seq.len() as u64;
        for &item in seq {
            let v = item.as_u32();
            block.min_item = Some(block.min_item.map_or(v, |m| m.min(v)));
            block.max_item = Some(block.max_item.map_or(v, |m| m.max(v)));
        }
        if self.opts.sketches {
            g1_items(seq, &self.vocab, &mut self.scratch);
            for item in &self.scratch {
                *block.sketch.entry(item.as_u32()).or_insert(0) += 1;
            }
        }
        shard.stats.sequences += 1;
        shard.stats.min_seq = shard.stats.min_seq.min(id);
        shard.stats.max_seq = shard.stats.max_seq.max(id);
        if block.payload.len() >= self.opts.block_budget {
            Self::flush_block(shard)?;
        }
        Ok(id)
    }

    /// Appends every sequence of `db` in order.
    pub fn append_db(&mut self, db: &SequenceDatabase) -> Result<()> {
        for seq in db.iter() {
            self.append(seq)?;
        }
        Ok(())
    }

    /// Seals the open block of `shard`, writing its header and payload
    /// frames.
    fn flush_block(shard: &mut ShardWriter) -> Result<()> {
        let block = &mut shard.block;
        if block.records == 0 {
            return Ok(());
        }
        let header = BlockHeader {
            records: block.records,
            first_seq: block.first_seq,
            last_seq: block.prev_seq,
            items: block.items,
            min_item: block.min_item,
            max_item: block.max_item,
            sketch: Vec::new(),
        };
        shard.header_buf.clear();
        format::encode_block_header(&header, &block.sketch, &mut shard.header_buf);
        frame::write_frame(&shard.header_buf, &mut shard.file)?;
        frame::write_frame(&block.payload, &mut shard.file)?;
        shard.stats.blocks += 1;
        shard.stats.payload_bytes += block.payload.len() as u64;
        block.reset();
        Ok(())
    }

    /// Seals all shards and writes the manifest. The corpus is complete —
    /// and only then readable — once this returns.
    pub fn finish(mut self) -> Result<Manifest> {
        for shard in &mut self.shards {
            Self::flush_block(shard)?;
            shard.file.flush()?;
        }
        let manifest = Manifest {
            version: FORMAT_VERSION,
            partitioning: self.opts.partitioning,
            num_sequences: self.next_seq,
            total_items: self.total_items,
            sketches: self.opts.sketches,
            shards: self.shards.iter().map(|s| s.stats.clone()).collect(),
        };
        // Write to a temp name and rename so a crash mid-write never leaves
        // a plausible-looking manifest behind.
        let tmp = self.dir.join(format!("{MANIFEST_FILE}.tmp"));
        {
            let mut file = BufWriter::new(File::create(&tmp)?);
            let mut buf = Vec::new();
            format::encode_manifest_header(&manifest, &mut buf);
            frame::write_frame(&buf, &mut file)?;
            buf.clear();
            format::encode_vocabulary(&self.vocab, &mut buf);
            frame::write_frame(&buf, &mut file)?;
            buf.clear();
            format::encode_shard_stats(&manifest.shards, &mut buf);
            frame::write_frame(&buf, &mut file)?;
            file.flush()?;
        }
        fs::rename(&tmp, self.dir.join(MANIFEST_FILE))?;
        Ok(manifest)
    }
}
