//! The corpus writer: creates a fresh corpus whose first (and only)
//! generation is sealed by [`CorpusWriter::finish`]. Further generations are
//! appended with [`crate::IncrementalWriter`]; existing generations are
//! never mutated.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lash_core::enumeration::g1_items;
use lash_core::flist::{FList, ItemOrder};
use lash_core::sequence::SequenceDatabase;
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame;

use lash_encoding::group_varint;
use lash_encoding::varint;

use crate::format::{
    self, BlockHeader, GenerationMeta, Manifest, PayloadCodec, RankOrder, ShardStats,
};
use crate::generations::write_manifest;
use crate::{Result, StoreError, StoreOptions};

/// Streaming writer of a new corpus.
///
/// Sequences are appended one at a time (each gets the next corpus-wide id),
/// routed to their shard, and delta/varint-encoded into that shard's open
/// block. Blocks close at the first sequence boundary at or past the
/// configured payload budget. [`CorpusWriter::finish`] seals every shard of
/// generation 0 and writes the manifest — until then the directory holds no
/// manifest, so a crashed write is never mistaken for a complete corpus.
pub struct CorpusWriter {
    dir: PathBuf,
    opts: StoreOptions,
    vocab: Vocabulary,
    codec: PayloadCodec,
    state: WriterState,
    next_seq: u64,
}

/// How appends reach disk, decided by the codec.
enum WriterState {
    /// v2/v3 codecs stream each sequence straight into its shard's open
    /// block.
    Streaming(SegmentSetWriter),
    /// The v4 rank codec needs the corpus-wide descending-frequency order
    /// before any item can be encoded, so appends buffer in memory and the
    /// segments are written in one pass at [`CorpusWriter::finish`].
    /// Incremental growth past generation 0 stays streaming — later
    /// generations reuse the order sealed here.
    Buffering(SequenceDatabase),
}

/// One shard's open segment file plus the block being assembled.
struct ShardWriter {
    file: BufWriter<File>,
    stats: ShardStats,
    block: BlockBuilder,
    header_buf: Vec<u8>,
}

/// Accumulates one block: payload (streamed for the varint codec, columnar
/// for group varint) plus header metadata.
#[derive(Default)]
struct BlockBuilder {
    /// The encoded payload. The varint codec streams records straight into
    /// it (byte-identical to the v2 writer); the group-varint codec uses it
    /// as the flush-time encode target.
    payload: Vec<u8>,
    /// Group-varint columns, filled per append and encoded at flush.
    id_deltas: Vec<u64>,
    lens: Vec<u32>,
    flat: Vec<u32>,
    /// Running data-byte totals of the columns, so the block-budget cut
    /// decision sees the exact size a flush would write.
    delta_bytes: usize,
    lens_data_bytes: usize,
    flat_data_bytes: usize,
    records: u32,
    first_seq: u64,
    prev_seq: u64,
    items: u64,
    min_item: Option<u32>,
    max_item: Option<u32>,
    sketch: BTreeMap<u32, u32>,
}

impl BlockBuilder {
    fn reset(&mut self) {
        self.payload.clear();
        self.id_deltas.clear();
        self.lens.clear();
        self.flat.clear();
        self.delta_bytes = 0;
        self.lens_data_bytes = 0;
        self.flat_data_bytes = 0;
        self.records = 0;
        self.items = 0;
        self.min_item = None;
        self.max_item = None;
        self.sketch.clear();
    }

    /// Exact payload size a flush would write right now.
    fn encoded_len(&self, codec: PayloadCodec) -> usize {
        match codec {
            PayloadCodec::Varint => self.payload.len(),
            PayloadCodec::GroupVarint | PayloadCodec::GroupVarintRank => {
                self.delta_bytes
                    + gv_stream_len(self.lens.len(), self.lens_data_bytes)
                    + gv_stream_len(self.flat.len(), self.flat_data_bytes)
            }
        }
    }
}

/// Size of a group-varint stream of `n` values whose data bytes sum to
/// `data`: one control byte per group plus one zero byte per tail-padding
/// slot (see `lash_encoding::group_varint`).
fn gv_stream_len(n: usize, data: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let groups = n.div_ceil(group_varint::GROUP_SIZE);
    groups + data + (groups * group_varint::GROUP_SIZE - n)
}

/// Writes one generation's set of per-shard segment files into a directory.
///
/// This is the shared block-building engine behind [`CorpusWriter`],
/// [`crate::IncrementalWriter`], and the compaction executor: callers route
/// `(id, items)` records to shards (ids must arrive ascending *per shard* —
/// the delta encoding's invariant) and [`SegmentSetWriter::finish`] flushes
/// every open block and returns the per-shard statistics.
pub(crate) struct SegmentSetWriter {
    dir: PathBuf,
    shards: Vec<ShardWriter>,
    block_budget: usize,
    sketches: bool,
    codec: PayloadCodec,
    /// The corpus item order for the rank codec; `None` for v2/v3.
    rank: Option<Arc<RankOrder>>,
    sequences: u64,
    total_items: u64,
    scratch: Vec<ItemId>,
}

impl SegmentSetWriter {
    /// Creates `num_shards` segment files (with headers) under `dir`,
    /// creating the directory if needed. The segment format version is
    /// derived from `codec`: the varint codec writes byte-identical v2
    /// segments, group varint writes v3, group varint over ranks writes v4.
    /// The v4 codec requires `rank` — the corpus-wide descending-frequency
    /// order its flat column is encoded in.
    pub(crate) fn create(
        dir: &Path,
        num_shards: u32,
        block_budget: usize,
        sketches: bool,
        codec: PayloadCodec,
        rank: Option<Arc<RankOrder>>,
    ) -> Result<Self> {
        if codec == PayloadCodec::GroupVarintRank && rank.is_none() {
            return Err(StoreError::InvalidOptions(
                "the rank codec (format v4) requires an item order",
            ));
        }
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(num_shards as usize);
        for shard in 0..num_shards {
            let path = dir.join(format::shard_file_name(shard));
            let mut file = BufWriter::new(File::create(path)?);
            let mut header = Vec::new();
            format::encode_segment_header(shard, codec.format_version(), &mut header);
            frame::write_frame(&header, &mut file)?;
            shards.push(ShardWriter {
                file,
                stats: ShardStats::default(),
                block: BlockBuilder::default(),
                header_buf: Vec::new(),
            });
        }
        Ok(SegmentSetWriter {
            dir: dir.to_path_buf(),
            shards,
            block_budget: block_budget.max(1),
            sketches,
            codec,
            rank,
            sequences: 0,
            total_items: 0,
            scratch: Vec::new(),
        })
    }

    /// The payload codec this writer encodes blocks with.
    pub(crate) fn codec(&self) -> PayloadCodec {
        self.codec
    }

    /// Sequences appended so far.
    pub(crate) fn sequences(&self) -> u64 {
        self.sequences
    }

    /// Items appended so far.
    pub(crate) fn total_items(&self) -> u64 {
        self.total_items
    }

    /// Appends one sequence to `shard`. The caller guarantees ascending ids
    /// per shard and in-vocabulary items.
    pub(crate) fn append(
        &mut self,
        shard: usize,
        id: u64,
        seq: &[ItemId],
        vocab: &Vocabulary,
    ) -> Result<()> {
        self.sequences += 1;
        self.total_items += seq.len() as u64;
        let params = WriteParams {
            codec: self.codec,
            rank_of: rank_of(self.codec, &self.rank),
            sketches: self.sketches,
            block_budget: self.block_budget,
        };
        append_record(
            &mut self.shards[shard],
            params,
            &mut self.scratch,
            id,
            seq,
            vocab,
        )
    }

    /// Fans `work` out over every shard with up to `parallelism` worker
    /// threads: each invocation gets its shard index and an exclusive
    /// [`ShardAppender`] over that shard's writer, so per-shard streams
    /// (compaction merges) run concurrently while the delta encoding's
    /// per-shard ascending-id invariant is untouched. Output bytes are
    /// identical to a sequential run — shards never share a file. Appended
    /// sequence/item totals fold into the set totals after every worker
    /// joins; the first error aborts the remaining shards and is returned.
    pub(crate) fn par_shards<F>(&mut self, parallelism: usize, work: F) -> Result<()>
    where
        F: Fn(usize, &mut ShardAppender<'_>) -> Result<()> + Send + Sync,
    {
        let num_shards = self.shards.len();
        if num_shards == 0 {
            return Ok(());
        }
        let workers = parallelism.clamp(1, num_shards);
        let rank = self.rank.clone();
        let params = WriteParams {
            codec: self.codec,
            rank_of: rank_of(self.codec, &rank),
            sketches: self.sketches,
            block_budget: self.block_budget,
        };
        let mut buckets: Vec<Vec<(usize, &mut ShardWriter)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            buckets[i % workers].push((i, shard));
        }
        let totals = std::sync::Mutex::new((0u64, 0u64));
        let failure: std::sync::Mutex<Option<StoreError>> = std::sync::Mutex::new(None);
        std::thread::scope(|scope| {
            for bucket in buckets {
                let (totals, failure, work) = (&totals, &failure, &work);
                scope.spawn(move || {
                    let mut scratch = Vec::new();
                    for (idx, shard) in bucket {
                        if failure.lock().expect("merge failure lock").is_some() {
                            return;
                        }
                        let mut appender = ShardAppender {
                            shard,
                            params,
                            scratch: std::mem::take(&mut scratch),
                            sequences: 0,
                            total_items: 0,
                        };
                        let result = work(idx, &mut appender);
                        let (sequences, items) = (appender.sequences, appender.total_items);
                        scratch = appender.scratch;
                        match result {
                            Ok(()) => {
                                let mut t = totals.lock().expect("merge totals lock");
                                t.0 += sequences;
                                t.1 += items;
                            }
                            Err(e) => {
                                *failure.lock().expect("merge failure lock") = Some(e);
                                return;
                            }
                        }
                    }
                });
            }
        });
        if let Some(e) = failure.into_inner().expect("merge failure lock") {
            return Err(e);
        }
        let (sequences, items) = totals.into_inner().expect("merge totals lock");
        self.sequences += sequences;
        self.total_items += items;
        Ok(())
    }

    /// Seals the open block of `shard`, writing its header and payload
    /// frames.
    fn flush_block(shard: &mut ShardWriter, codec: PayloadCodec) -> Result<()> {
        flush_shard_block(shard, codec)
    }

    /// Flushes and fsyncs every open block and segment file (and their
    /// directory); returns per-shard stats. The fsyncs make the segment
    /// data durable *before* any manifest references it — the first leg of
    /// the manifest-swap protocol's crash guarantee (a rename journaled
    /// ahead of the data it names would otherwise let a power loss commit
    /// a manifest pointing at empty files).
    pub(crate) fn finish(mut self) -> Result<Vec<ShardStats>> {
        let codec = self.codec;
        for shard in &mut self.shards {
            Self::flush_block(shard, codec)?;
            shard.file.flush()?;
            shard.file.get_ref().sync_all()?;
        }
        crate::generations::sync_dir(&self.dir)?;
        Ok(self.shards.into_iter().map(|s| s.stats).collect())
    }
}

/// The shared, immutable knobs of the block-building engine, split from
/// [`SegmentSetWriter`] so parallel per-shard appenders can carry them by
/// value while each holds a different shard's writer mutably.
#[derive(Clone, Copy)]
struct WriteParams<'a> {
    codec: PayloadCodec,
    /// id → rank mapping for the v4 codec; `None` otherwise.
    rank_of: Option<&'a [u32]>,
    sketches: bool,
    block_budget: usize,
}

/// The rank column mapping `append_record` encodes with, resolved from the
/// codec: the rank codec stores the flat column in rank space; everything
/// else (header min/max, sketches) stays in id space so header-only
/// consumers are version-oblivious.
fn rank_of(codec: PayloadCodec, rank: &Option<Arc<RankOrder>>) -> Option<&[u32]> {
    match codec {
        PayloadCodec::GroupVarintRank => Some(rank.as_ref().expect("checked at create").rank_of()),
        _ => None,
    }
}

/// Exclusive append access to one shard of a [`SegmentSetWriter`], handed
/// to [`SegmentSetWriter::par_shards`] workers. Appends here are exactly
/// [`SegmentSetWriter::append`] scoped to the one shard; the sequence/item
/// totals accumulate locally and fold into the set totals when the
/// parallel region ends.
pub(crate) struct ShardAppender<'a> {
    shard: &'a mut ShardWriter,
    params: WriteParams<'a>,
    scratch: Vec<ItemId>,
    sequences: u64,
    total_items: u64,
}

impl ShardAppender<'_> {
    /// Appends one sequence to this appender's shard. The caller guarantees
    /// ascending ids per shard and in-vocabulary items.
    pub(crate) fn append(&mut self, id: u64, seq: &[ItemId], vocab: &Vocabulary) -> Result<()> {
        self.sequences += 1;
        self.total_items += seq.len() as u64;
        append_record(self.shard, self.params, &mut self.scratch, id, seq, vocab)
    }
}

/// Appends one sequence into `shard`'s open block, cutting the block at
/// the budget boundary — the single append path behind both the sequential
/// [`SegmentSetWriter::append`] and the parallel [`ShardAppender`].
fn append_record(
    shard: &mut ShardWriter,
    params: WriteParams<'_>,
    scratch: &mut Vec<ItemId>,
    id: u64,
    seq: &[ItemId],
    vocab: &Vocabulary,
) -> Result<()> {
    for &item in seq {
        if item.index() >= vocab.len() {
            return Err(StoreError::UnknownItem(item.as_u32()));
        }
    }
    let block = &mut shard.block;
    if block.records == 0 {
        block.first_seq = id;
        block.prev_seq = id;
    }
    let delta = id - block.prev_seq;
    match params.codec {
        PayloadCodec::Varint => {
            format::encode_record(delta, seq, &mut block.payload);
        }
        PayloadCodec::GroupVarint | PayloadCodec::GroupVarintRank => {
            block.id_deltas.push(delta);
            block.delta_bytes += varint::encoded_len_u64(delta);
            block.lens.push(seq.len() as u32);
            block.lens_data_bytes += group_varint::bytes_for(seq.len() as u32);
            for &item in seq {
                let v = match params.rank_of {
                    Some(ranks) => ranks[item.index()],
                    None => item.as_u32(),
                };
                block.flat.push(v);
                block.flat_data_bytes += group_varint::bytes_for(v);
            }
        }
    }
    block.prev_seq = id;
    block.records += 1;
    block.items += seq.len() as u64;
    for &item in seq {
        let v = item.as_u32();
        block.min_item = Some(block.min_item.map_or(v, |m| m.min(v)));
        block.max_item = Some(block.max_item.map_or(v, |m| m.max(v)));
    }
    if params.sketches {
        g1_items(seq, vocab, scratch);
        for item in scratch.iter() {
            *block.sketch.entry(item.as_u32()).or_insert(0) += 1;
        }
    }
    shard.stats.sequences += 1;
    shard.stats.min_seq = shard.stats.min_seq.min(id);
    shard.stats.max_seq = shard.stats.max_seq.max(id);
    if block.encoded_len(params.codec) >= params.block_budget {
        flush_shard_block(shard, params.codec)?;
    }
    Ok(())
}

/// Seals `shard`'s open block, writing its header and payload frames.
fn flush_shard_block(shard: &mut ShardWriter, codec: PayloadCodec) -> Result<()> {
    let block = &mut shard.block;
    if block.records == 0 {
        return Ok(());
    }
    if codec != PayloadCodec::Varint {
        // Flush-time columnar encode; the varint codec streamed records
        // into the payload at append time.
        debug_assert!(block.payload.is_empty());
        format::encode_gv_payload(
            &block.id_deltas,
            &block.lens,
            &block.flat,
            &mut block.payload,
        );
        debug_assert_eq!(block.payload.len(), block.encoded_len(codec));
    }
    let header = BlockHeader {
        codec,
        records: block.records,
        first_seq: block.first_seq,
        last_seq: block.prev_seq,
        items: block.items,
        min_item: block.min_item,
        max_item: block.max_item,
        sketch: Vec::new(),
    };
    shard.header_buf.clear();
    format::encode_block_header(
        &header,
        &block.sketch,
        codec.format_version(),
        &mut shard.header_buf,
    );
    // Block frames use the version's checksum flavor (wide for v3); the
    // segment header frame stays classic so readers can parse it before
    // knowing the version.
    let kind = format::frame_checksum_for_version(codec.format_version());
    frame::write_frame_with(&shard.header_buf, &mut shard.file, kind)?;
    frame::write_frame_with(&block.payload, &mut shard.file, kind)?;
    shard.stats.blocks += 1;
    shard.stats.payload_bytes += block.payload.len() as u64;
    block.reset();
    Ok(())
}

impl CorpusWriter {
    /// Creates a new corpus at `dir` with the given vocabulary.
    ///
    /// The directory is created if missing; an existing manifest makes this
    /// fail with [`StoreError::AlreadyExists`] — a corpus is created once
    /// and only grows through sealed generations
    /// ([`crate::IncrementalWriter`]), never by rewriting in place.
    pub fn create(dir: impl AsRef<Path>, vocab: &Vocabulary, opts: StoreOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        opts.partitioning.validate()?;
        fs::create_dir_all(&dir)?;
        if dir.join(format::MANIFEST_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir));
        }
        // Generation 0 is written in place (no temp dir): without a
        // manifest the directory is not a corpus, so a crash mid-write
        // leaves nothing that could be mistaken for sealed data.
        let codec = format::resolve_codec(opts.codec);
        let state = if codec == PayloadCodec::GroupVarintRank {
            // The rank order is a whole-corpus property; buffer until
            // `finish` knows every frequency.
            WriterState::Buffering(SequenceDatabase::new())
        } else {
            let gen_dir = dir.join(format::generation_dir_name(0));
            WriterState::Streaming(SegmentSetWriter::create(
                &gen_dir,
                opts.partitioning.num_shards(),
                opts.block_budget,
                opts.sketches,
                codec,
                None,
            )?)
        };
        Ok(CorpusWriter {
            dir,
            opts,
            vocab: vocab.clone(),
            codec,
            state,
            next_seq: 0,
        })
    }

    /// The vocabulary this corpus is written against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of sequences appended so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Appends one sequence; returns its corpus-wide id.
    pub fn append(&mut self, seq: &[ItemId]) -> Result<u64> {
        let id = self.next_seq;
        match &mut self.state {
            WriterState::Streaming(segments) => {
                let shard = self.opts.partitioning.shard_of(id) as usize;
                segments.append(shard, id, seq, &self.vocab)?;
            }
            WriterState::Buffering(db) => {
                // Validate now (the segment writer normally would) so errors
                // surface at the append that caused them, not at finish.
                for &item in seq {
                    if item.index() >= self.vocab.len() {
                        return Err(StoreError::UnknownItem(item.as_u32()));
                    }
                }
                db.push(seq);
            }
        }
        self.next_seq += 1;
        Ok(id)
    }

    /// Appends every sequence of `db` in order.
    pub fn append_db(&mut self, db: &SequenceDatabase) -> Result<()> {
        for seq in db.iter() {
            self.append(seq)?;
        }
        Ok(())
    }

    /// Seals generation 0 and writes the manifest. The corpus is complete —
    /// and only then readable — once this returns.
    ///
    /// With the v4 rank codec this is also where the write-once item order
    /// is fixed: the corpus-wide generalized f-list is computed over the
    /// buffered sequences and the descending-frequency permutation (the same
    /// sort as [`ItemOrder::build`]) is sealed into the manifest.
    pub fn finish(self) -> Result<Manifest> {
        let (segments, rank_order) = match self.state {
            WriterState::Streaming(segments) => (segments, None),
            WriterState::Buffering(db) => {
                let rank = Arc::new(compute_rank_order(&db, &self.vocab));
                let gen_dir = self.dir.join(format::generation_dir_name(0));
                let mut segments = SegmentSetWriter::create(
                    &gen_dir,
                    self.opts.partitioning.num_shards(),
                    self.opts.block_budget,
                    self.opts.sketches,
                    self.codec,
                    Some(Arc::clone(&rank)),
                )?;
                for (id, seq) in db.iter().enumerate() {
                    let id = id as u64;
                    let shard = self.opts.partitioning.shard_of(id) as usize;
                    segments.append(shard, id, seq, &self.vocab)?;
                }
                (segments, Some(rank))
            }
        };
        let total_items = segments.total_items();
        // The manifest version tracks the newest segment format in the
        // corpus, so a build that cannot read these blocks rejects the
        // corpus at the manifest instead of choking on a segment.
        let version = segments.codec().format_version();
        let shards = segments.finish()?;
        let generation = GenerationMeta {
            id: 0,
            num_sequences: self.next_seq,
            total_items,
            shards,
        };
        let manifest = Manifest {
            version,
            partitioning: self.opts.partitioning,
            num_sequences: self.next_seq,
            total_items,
            sketches: self.opts.sketches,
            next_gen_id: 1,
            shards: Manifest::aggregate_shards(
                std::slice::from_ref(&generation),
                self.opts.partitioning.num_shards() as usize,
            ),
            generations: vec![generation],
            rank_order,
        };
        write_manifest(&self.dir, &manifest, &self.vocab)?;
        Ok(manifest)
    }
}

/// Builds the corpus item order: descending generalized document frequency,
/// ties broken shallower-first then by id — byte-for-byte the sort of
/// [`ItemOrder::build`], so a mine job's context order over the same corpus
/// is the identical permutation and its map phase can skip re-ranking. The
/// permutation is σ-independent (σ only moves the frequent cutoff, not the
/// order), so σ=1 here loses nothing.
pub(crate) fn compute_rank_order(db: &SequenceDatabase, vocab: &Vocabulary) -> RankOrder {
    let flist = FList::compute(db, vocab);
    rank_order_from_flist(&flist, vocab)
}

/// The manifest [`RankOrder`] corresponding to an f-list over `vocab`.
pub(crate) fn rank_order_from_flist(flist: &FList, vocab: &Vocabulary) -> RankOrder {
    let order = ItemOrder::build(flist, vocab, 1);
    let item_of: Vec<u32> = (0..order.len() as u32)
        .map(|r| order.item(r).as_u32())
        .collect();
    RankOrder::from_item_of(item_of).expect("ItemOrder is a permutation by construction")
}
