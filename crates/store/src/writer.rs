//! The corpus writer: creates a fresh corpus whose first (and only)
//! generation is sealed by [`CorpusWriter::finish`]. Further generations are
//! appended with [`crate::IncrementalWriter`]; existing generations are
//! never mutated.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};

use lash_core::enumeration::g1_items;
use lash_core::sequence::SequenceDatabase;
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame;

use crate::format::{self, BlockHeader, GenerationMeta, Manifest, ShardStats, FORMAT_VERSION};
use crate::generations::write_manifest;
use crate::{Result, StoreError, StoreOptions};

/// Streaming writer of a new corpus.
///
/// Sequences are appended one at a time (each gets the next corpus-wide id),
/// routed to their shard, and delta/varint-encoded into that shard's open
/// block. Blocks close at the first sequence boundary at or past the
/// configured payload budget. [`CorpusWriter::finish`] seals every shard of
/// generation 0 and writes the manifest — until then the directory holds no
/// manifest, so a crashed write is never mistaken for a complete corpus.
pub struct CorpusWriter {
    dir: PathBuf,
    opts: StoreOptions,
    vocab: Vocabulary,
    segments: SegmentSetWriter,
    next_seq: u64,
}

/// One shard's open segment file plus the block being assembled.
struct ShardWriter {
    file: BufWriter<File>,
    stats: ShardStats,
    block: BlockBuilder,
    header_buf: Vec<u8>,
}

/// Accumulates one block: compressed payload plus header metadata.
#[derive(Default)]
struct BlockBuilder {
    payload: Vec<u8>,
    records: u32,
    first_seq: u64,
    prev_seq: u64,
    items: u64,
    min_item: Option<u32>,
    max_item: Option<u32>,
    sketch: BTreeMap<u32, u32>,
}

impl BlockBuilder {
    fn reset(&mut self) {
        self.payload.clear();
        self.records = 0;
        self.items = 0;
        self.min_item = None;
        self.max_item = None;
        self.sketch.clear();
    }
}

/// Writes one generation's set of per-shard segment files into a directory.
///
/// This is the shared block-building engine behind [`CorpusWriter`],
/// [`crate::IncrementalWriter`], and the compaction executor: callers route
/// `(id, items)` records to shards (ids must arrive ascending *per shard* —
/// the delta encoding's invariant) and [`SegmentSetWriter::finish`] flushes
/// every open block and returns the per-shard statistics.
pub(crate) struct SegmentSetWriter {
    dir: PathBuf,
    shards: Vec<ShardWriter>,
    block_budget: usize,
    sketches: bool,
    sequences: u64,
    total_items: u64,
    scratch: Vec<ItemId>,
}

impl SegmentSetWriter {
    /// Creates `num_shards` segment files (with headers) under `dir`,
    /// creating the directory if needed.
    pub(crate) fn create(
        dir: &Path,
        num_shards: u32,
        block_budget: usize,
        sketches: bool,
    ) -> Result<Self> {
        fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(num_shards as usize);
        for shard in 0..num_shards {
            let path = dir.join(format::shard_file_name(shard));
            let mut file = BufWriter::new(File::create(path)?);
            let mut header = Vec::new();
            format::encode_segment_header(shard, &mut header);
            frame::write_frame(&header, &mut file)?;
            shards.push(ShardWriter {
                file,
                stats: ShardStats::default(),
                block: BlockBuilder::default(),
                header_buf: Vec::new(),
            });
        }
        Ok(SegmentSetWriter {
            dir: dir.to_path_buf(),
            shards,
            block_budget: block_budget.max(1),
            sketches,
            sequences: 0,
            total_items: 0,
            scratch: Vec::new(),
        })
    }

    /// Sequences appended so far.
    pub(crate) fn sequences(&self) -> u64 {
        self.sequences
    }

    /// Items appended so far.
    pub(crate) fn total_items(&self) -> u64 {
        self.total_items
    }

    /// Appends one sequence to `shard`. The caller guarantees ascending ids
    /// per shard and in-vocabulary items.
    pub(crate) fn append(
        &mut self,
        shard: usize,
        id: u64,
        seq: &[ItemId],
        vocab: &Vocabulary,
    ) -> Result<()> {
        for &item in seq {
            if item.index() >= vocab.len() {
                return Err(StoreError::UnknownItem(item.as_u32()));
            }
        }
        self.sequences += 1;
        self.total_items += seq.len() as u64;
        let shard = &mut self.shards[shard];
        let block = &mut shard.block;
        if block.records == 0 {
            block.first_seq = id;
            block.prev_seq = id;
        }
        format::encode_record(id - block.prev_seq, seq, &mut block.payload);
        block.prev_seq = id;
        block.records += 1;
        block.items += seq.len() as u64;
        for &item in seq {
            let v = item.as_u32();
            block.min_item = Some(block.min_item.map_or(v, |m| m.min(v)));
            block.max_item = Some(block.max_item.map_or(v, |m| m.max(v)));
        }
        if self.sketches {
            g1_items(seq, vocab, &mut self.scratch);
            for item in &self.scratch {
                *block.sketch.entry(item.as_u32()).or_insert(0) += 1;
            }
        }
        shard.stats.sequences += 1;
        shard.stats.min_seq = shard.stats.min_seq.min(id);
        shard.stats.max_seq = shard.stats.max_seq.max(id);
        if block.payload.len() >= self.block_budget {
            Self::flush_block(shard)?;
        }
        Ok(())
    }

    /// Seals the open block of `shard`, writing its header and payload
    /// frames.
    fn flush_block(shard: &mut ShardWriter) -> Result<()> {
        let block = &mut shard.block;
        if block.records == 0 {
            return Ok(());
        }
        let header = BlockHeader {
            records: block.records,
            first_seq: block.first_seq,
            last_seq: block.prev_seq,
            items: block.items,
            min_item: block.min_item,
            max_item: block.max_item,
            sketch: Vec::new(),
        };
        shard.header_buf.clear();
        format::encode_block_header(&header, &block.sketch, &mut shard.header_buf);
        frame::write_frame(&shard.header_buf, &mut shard.file)?;
        frame::write_frame(&block.payload, &mut shard.file)?;
        shard.stats.blocks += 1;
        shard.stats.payload_bytes += block.payload.len() as u64;
        block.reset();
        Ok(())
    }

    /// Flushes and fsyncs every open block and segment file (and their
    /// directory); returns per-shard stats. The fsyncs make the segment
    /// data durable *before* any manifest references it — the first leg of
    /// the manifest-swap protocol's crash guarantee (a rename journaled
    /// ahead of the data it names would otherwise let a power loss commit
    /// a manifest pointing at empty files).
    pub(crate) fn finish(mut self) -> Result<Vec<ShardStats>> {
        for shard in &mut self.shards {
            Self::flush_block(shard)?;
            shard.file.flush()?;
            shard.file.get_ref().sync_all()?;
        }
        crate::generations::sync_dir(&self.dir)?;
        Ok(self.shards.into_iter().map(|s| s.stats).collect())
    }
}

impl CorpusWriter {
    /// Creates a new corpus at `dir` with the given vocabulary.
    ///
    /// The directory is created if missing; an existing manifest makes this
    /// fail with [`StoreError::AlreadyExists`] — a corpus is created once
    /// and only grows through sealed generations
    /// ([`crate::IncrementalWriter`]), never by rewriting in place.
    pub fn create(dir: impl AsRef<Path>, vocab: &Vocabulary, opts: StoreOptions) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        opts.partitioning.validate()?;
        fs::create_dir_all(&dir)?;
        if dir.join(format::MANIFEST_FILE).exists() {
            return Err(StoreError::AlreadyExists(dir));
        }
        // Generation 0 is written in place (no temp dir): without a
        // manifest the directory is not a corpus, so a crash mid-write
        // leaves nothing that could be mistaken for sealed data.
        let gen_dir = dir.join(format::generation_dir_name(0));
        let segments = SegmentSetWriter::create(
            &gen_dir,
            opts.partitioning.num_shards(),
            opts.block_budget,
            opts.sketches,
        )?;
        Ok(CorpusWriter {
            dir,
            opts,
            vocab: vocab.clone(),
            segments,
            next_seq: 0,
        })
    }

    /// The vocabulary this corpus is written against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Number of sequences appended so far.
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True if nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Appends one sequence; returns its corpus-wide id.
    pub fn append(&mut self, seq: &[ItemId]) -> Result<u64> {
        let id = self.next_seq;
        let shard = self.opts.partitioning.shard_of(id) as usize;
        self.segments.append(shard, id, seq, &self.vocab)?;
        self.next_seq += 1;
        Ok(id)
    }

    /// Appends every sequence of `db` in order.
    pub fn append_db(&mut self, db: &SequenceDatabase) -> Result<()> {
        for seq in db.iter() {
            self.append(seq)?;
        }
        Ok(())
    }

    /// Seals generation 0 and writes the manifest. The corpus is complete —
    /// and only then readable — once this returns.
    pub fn finish(self) -> Result<Manifest> {
        let total_items = self.segments.total_items();
        let shards = self.segments.finish()?;
        let generation = GenerationMeta {
            id: 0,
            num_sequences: self.next_seq,
            total_items,
            shards,
        };
        let manifest = Manifest {
            version: FORMAT_VERSION,
            partitioning: self.opts.partitioning,
            num_sequences: self.next_seq,
            total_items,
            sketches: self.opts.sketches,
            next_gen_id: 1,
            shards: Manifest::aggregate_shards(
                std::slice::from_ref(&generation),
                self.opts.partitioning.num_shards() as usize,
            ),
            generations: vec![generation],
        };
        write_manifest(&self.dir, &manifest, &self.vocab)?;
        Ok(manifest)
    }
}
