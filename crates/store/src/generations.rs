//! Segment generations: incremental ingest for a corpus whose sealed data
//! never changes.
//!
//! A format-v2 corpus is an **ordered set of sealed generations**. Each
//! generation is a complete per-shard segment set — exactly what a whole
//! corpus was before generations existed — living in its own `gen-<id>/`
//! directory:
//!
//! ```text
//! corpus/
//! ├── MANIFEST.lash          # versioned corpus manifest: partitioning,
//! │                          # vocabulary, ordered generation list
//! ├── gen-00000/             # generation 0 (sealed by CorpusWriter)
//! │   ├── shard-00000.seg
//! │   └── shard-00001.seg
//! ├── gen-00001/             # sealed by an IncrementalWriter
//! │   └── …
//! └── …
//! ```
//!
//! ## The manifest-swap atomicity protocol
//!
//! Every mutation of the corpus — sealing a new generation, compacting old
//! ones — follows the same three-step protocol, and the **manifest rename
//! is the only commit point**:
//!
//! 1. **Write to the side.** New segment files are assembled in a
//!    dot-prefixed temp directory (`.gen-<id>.tmp/`) that no reader ever
//!    looks at; the manifest still describes the old state.
//! 2. **Rename into place.** The temp directory is renamed to its final
//!    `gen-<id>/` name. The directory now exists but is *unreferenced*:
//!    readers only open what their manifest names, so a crash here leaves
//!    garbage files, never a corrupt corpus.
//! 3. **Swap the manifest.** The new manifest (old generation list plus the
//!    new generation, or with compacted generations replaced by their
//!    merge) is written to `MANIFEST.lash.tmp` and renamed over
//!    `MANIFEST.lash`. Rename-within-a-directory is atomic on POSIX
//!    filesystems, so any concurrent or future [`crate::CorpusReader`]
//!    opens either the complete old corpus or the complete new one.
//!
//! Only **after** the swap does compaction delete the files it replaced.
//! Generation ids are monotonically increasing and never reused
//! ([`Manifest::next_gen_id`]), so a deleted generation's directory name can
//! never be confused with a live one.
//!
//! ## Snapshot readers
//!
//! A [`crate::CorpusReader`] is pinned to the manifest version it opened:
//! it keeps its own copy of the generation list and resolves every segment
//! path through it, so generations sealed later are invisible to it and a
//! re-`open` is required to observe them. Compaction deletes replaced
//! files after the swap, so a reader that predates a compaction may find
//! its segment files gone mid-scan — it then reports an I/O error rather
//! than wrong data. Writers are single-process/single-writer: two
//! concurrent `IncrementalWriter`s on the same corpus race on the manifest
//! swap and are not supported.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use lash_core::enumeration::g1_items;
use lash_core::flist::FList;
use lash_core::sequence::{SequenceDatabase, ShardedCorpus};
use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::frame::{self, FrameChecksum};

use crate::compact::{self, CompactionConfig};
use crate::format::{self, GenerationMeta, Manifest, PayloadCodec, RankOrder, MANIFEST_FILE};
use crate::writer::{rank_order_from_flist, SegmentSetWriter};
use crate::{Result, StoreError};

/// Environment variable enabling automatic compaction on ingest: when set
/// to `n ≥ 1`, every [`IncrementalWriter::finish`] runs the compactor until
/// at most `n` generations remain. `LASH_COMPACT_EVERY=1` therefore
/// compacts the whole corpus down to a single generation after every sealed
/// generation — CI runs a test leg with exactly that, so the compaction
/// path is exercised by every store/core test on every push.
///
/// A set-but-unparsable (or zero) value panics: the variable exists to
/// force test runs through the compaction path, and a typo silently
/// disabling it would defeat exactly that.
pub const COMPACT_EVERY_ENV: &str = "LASH_COMPACT_EVERY";

/// Reads [`COMPACT_EVERY_ENV`]; unset or empty means "no auto-compaction".
pub(crate) fn compact_every_from_env() -> Option<usize> {
    let value = std::env::var(COMPACT_EVERY_ENV).ok()?;
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    match value.parse::<usize>() {
        Ok(0) => panic!("{COMPACT_EVERY_ENV}=0 is invalid: a corpus keeps at least 1 generation"),
        Ok(n) => Some(n),
        Err(e) => panic!("{COMPACT_EVERY_ENV}={value:?} is not a generation count: {e}"),
    }
}

/// Fsyncs a directory so the renames/creations inside it are durable —
/// the glue of the swap protocol: file *data* is synced by
/// `SegmentSetWriter::finish`, the manifest by [`write_manifest`], and this
/// makes the directory entries pointing at them survive a power loss.
pub(crate) fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// Reads one frame that must exist (EOF is corruption) into a caller-owned
/// reusable buffer; returns the payload length (see
/// [`frame::read_frame_into`]). Shared with `reader.rs` so every segment
/// and manifest read goes through the same grow-only-buffer path.
pub(crate) fn read_required_frame(
    reader: &mut impl Read,
    buf: &mut Vec<u8>,
    what: &str,
) -> Result<usize> {
    match frame::read_frame_into(reader, buf, FrameChecksum::Fnv1a)? {
        Some(len) => Ok(len),
        None => Err(StoreError::Corrupt(format!("missing {what} frame"))),
    }
}

/// Loads and cross-validates a corpus manifest: header, vocabulary,
/// generation list (and, for v4, the rank order), with the aggregated
/// per-shard statistics recomputed.
pub(crate) fn read_manifest(dir: &Path) -> Result<(Manifest, Vocabulary)> {
    let mut file = BufReader::new(File::open(dir.join(MANIFEST_FILE))?);
    let mut buf = Vec::new();
    let len = read_required_frame(&mut file, &mut buf, "manifest header")?;
    let (mut manifest, declared_generations) = format::decode_manifest_header(&buf[..len])?;
    let len = read_required_frame(&mut file, &mut buf, "manifest vocabulary")?;
    let vocab = format::decode_vocabulary(&buf[..len])?;
    let len = read_required_frame(&mut file, &mut buf, "manifest generations")?;
    manifest.generations = format::decode_generations(&buf[..len])?;
    if manifest.version >= 4 {
        // A v4 corpus carries its write-once item order as a fourth frame;
        // rank-coded payloads are meaningless without it.
        let len = read_required_frame(&mut file, &mut buf, "manifest rank order")?;
        let rank = format::decode_rank_order(&buf[..len], vocab.len())?;
        manifest.rank_order = Some(Arc::new(rank));
    }
    if manifest.generations.len() != declared_generations as usize {
        return Err(StoreError::Corrupt(format!(
            "manifest header declares {declared_generations} generations, list holds {}",
            manifest.generations.len()
        )));
    }
    let num_shards = manifest.partitioning.num_shards() as usize;
    // Note: ids need not be ascending in list order — compaction splices a
    // freshly-minted (highest) id into the merged window's position, since
    // list order tracks *sequence-id* order, not seal order.
    let mut seen_ids = std::collections::BTreeSet::new();
    for generation in &manifest.generations {
        if generation.shards.len() != num_shards {
            return Err(StoreError::Corrupt(format!(
                "generation {} lists {} shard entries for {} shards",
                generation.id,
                generation.shards.len(),
                num_shards
            )));
        }
        if generation.id >= manifest.next_gen_id {
            return Err(StoreError::Corrupt(format!(
                "generation id {} not below next_gen_id {}",
                generation.id, manifest.next_gen_id
            )));
        }
        if !seen_ids.insert(generation.id) {
            return Err(StoreError::Corrupt(format!(
                "duplicate generation id {}",
                generation.id
            )));
        }
    }
    let counted: u64 = manifest.generations.iter().map(|g| g.num_sequences).sum();
    if counted != manifest.num_sequences {
        return Err(StoreError::Corrupt(format!(
            "generations count {counted} sequences, manifest says {}",
            manifest.num_sequences
        )));
    }
    manifest.shards = Manifest::aggregate_shards(&manifest.generations, num_shards);
    Ok((manifest, vocab))
}

/// Writes `manifest` to `MANIFEST.lash.tmp`, fsyncs it, renames it over
/// `MANIFEST.lash`, and fsyncs the corpus directory — the atomic, durable
/// commit point of every corpus mutation (see the module docs). The fsync
/// ordering matters: the manifest's bytes reach disk before the rename
/// exposes them, and the directory fsync makes the rename itself (plus any
/// generation-directory rename staged just before) survive a power loss.
pub(crate) fn write_manifest(dir: &Path, manifest: &Manifest, vocab: &Vocabulary) -> Result<()> {
    let tmp = dir.join(format!("{MANIFEST_FILE}.tmp"));
    {
        let mut file = BufWriter::new(File::create(&tmp)?);
        let mut buf = Vec::new();
        format::encode_manifest_header(manifest, &mut buf);
        frame::write_frame(&buf, &mut file)?;
        buf.clear();
        format::encode_vocabulary(vocab, &mut buf);
        frame::write_frame(&buf, &mut file)?;
        buf.clear();
        format::encode_generations(&manifest.generations, &mut buf);
        frame::write_frame(&buf, &mut file)?;
        if manifest.version >= 4 {
            let rank = manifest
                .rank_order
                .as_ref()
                .expect("a v4 manifest carries its rank order");
            buf.clear();
            format::encode_rank_order(rank, &mut buf);
            frame::write_frame(&buf, &mut file)?;
        }
        file.flush()?;
        file.get_ref().sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
    sync_dir(dir)?;
    Ok(())
}

/// Appends one sealed generation to an existing corpus.
///
/// Sequences continue the corpus-wide id space (the first appended sequence
/// gets id `manifest.num_sequences`) and are validated against the stored
/// vocabulary — a corpus's vocabulary and partitioning are fixed at
/// creation. [`IncrementalWriter::finish`] seals the generation following
/// the manifest-swap protocol (see the [module docs](self)); dropping the
/// writer without finishing discards the staged files and leaves the corpus
/// untouched.
///
/// ```
/// use lash_core::VocabularyBuilder;
/// use lash_store::{CorpusReader, CorpusWriter, IncrementalWriter, StoreOptions};
///
/// let dir = std::env::temp_dir().join(format!("lash-incr-doc-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let mut vb = VocabularyBuilder::new();
/// let a = vb.intern("a");
/// let b = vb.intern("b");
/// let vocab = vb.finish().unwrap();
///
/// let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
/// writer.append(&[a, b]).unwrap();
/// writer.finish().unwrap();
///
/// // Later: new sequences arrive; seal them as a second generation.
/// let mut incr = IncrementalWriter::open(&dir).unwrap();
/// assert_eq!(incr.append(&[b, a]).unwrap(), 1); // ids continue
/// let manifest = incr.finish().unwrap();
/// assert_eq!(manifest.num_sequences, 2);
///
/// let reader = CorpusReader::open(&dir).unwrap();
/// assert_eq!(reader.len(), 2);
/// # std::fs::remove_dir_all(&dir).unwrap();
/// ```
pub struct IncrementalWriter {
    dir: PathBuf,
    manifest: Manifest,
    vocab: Vocabulary,
    gen_id: u32,
    tmp_dir: PathBuf,
    /// The rank order the staged segments are encoded with (v4 codec only).
    /// Sealed into the manifest at finish.
    rank: Option<Arc<RankOrder>>,
    segments: Option<SegmentSetWriter>,
    next_seq: u64,
    sealed: bool,
}

/// The item order a new rank-coded (v4) generation must be written in.
///
/// A v4 corpus already fixed it (write-once: later generations reuse the
/// sealed order, whatever the current frequencies — re-ranking would
/// require rewriting every sealed segment). A pre-v4 corpus being migrated
/// derives it from the existing corpus frequencies: the header-sketch
/// f-list when sketches are present (header-only, no payload read), a
/// streaming full scan otherwise.
pub(crate) fn resolve_rank_order(
    dir: &Path,
    manifest: &Manifest,
    vocab: &Vocabulary,
) -> Result<Arc<RankOrder>> {
    if let Some(rank) = &manifest.rank_order {
        return Ok(Arc::clone(rank));
    }
    let reader = crate::CorpusReader::open(dir)?;
    let flist = match reader.flist()? {
        Some(flist) => flist,
        None => {
            // No sketches: stream every shard once, counting G1 closures —
            // FList::compute without materializing the corpus.
            let mut doc_freq = vec![0u64; vocab.len()];
            let mut scratch = Vec::new();
            for shard in 0..reader.num_shards() {
                ShardedCorpus::scan_shard(&reader, shard, &mut |_, seq| {
                    g1_items(seq, vocab, &mut scratch);
                    for item in &scratch {
                        doc_freq[item.index()] += 1;
                    }
                })
                .map_err(|e| StoreError::Corrupt(format!("rank-order scan: {e}")))?;
            }
            FList::from_counts(
                vocab,
                doc_freq
                    .into_iter()
                    .enumerate()
                    .map(|(i, f)| (ItemId::from_u32(i as u32), f)),
            )
            .expect("ids indexed from the vocabulary are in range")
        }
    };
    Ok(Arc::new(rank_order_from_flist(&flist, vocab)))
}

impl IncrementalWriter {
    /// Opens `dir` for appending a new generation with the default block
    /// budget and the default payload codec (rank-coded group varint /
    /// format v4, or whatever [`crate::FORCE_CODEC_ENV`] forces) — note
    /// that appending a newer-codec generation to a version-pinned corpus
    /// bumps its manifest version, so old builds stop reading it; use
    /// [`IncrementalWriter::open_with_codec`] to keep such a corpus on its
    /// original codec.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_budget(dir, crate::StoreOptions::default().block_budget)
    }

    /// Opens `dir` for appending a new generation whose blocks target
    /// `block_budget` uncompressed payload bytes, with the default codec
    /// (see [`IncrementalWriter::open`]).
    pub fn open_with_budget(dir: impl AsRef<Path>, block_budget: usize) -> Result<Self> {
        Self::open_with_codec(dir, block_budget, crate::PayloadCodec::default())
    }

    /// Opens `dir` for appending a new generation written with `codec` —
    /// the continuation API for corpora deliberately pinned to the v2
    /// codec ([`crate::StoreOptions::with_codec`]): appending with
    /// [`crate::PayloadCodec::Varint`] keeps every segment and the
    /// manifest at version 2, so old readers keep working. The
    /// [`crate::FORCE_CODEC_ENV`] override still wins when set.
    pub fn open_with_codec(
        dir: impl AsRef<Path>,
        block_budget: usize,
        codec: crate::PayloadCodec,
    ) -> Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        let (manifest, vocab) = read_manifest(&dir)?;
        let gen_id = manifest.next_gen_id;
        let tmp_dir = dir.join(format::generation_tmp_dir_name(gen_id));
        // A crashed earlier attempt may have left the temp dir behind; it
        // was never referenced by any manifest, so it is safe to discard.
        if tmp_dir.exists() {
            fs::remove_dir_all(&tmp_dir)?;
        }
        let codec = format::resolve_codec(codec);
        let rank = if codec == PayloadCodec::GroupVarintRank {
            Some(resolve_rank_order(&dir, &manifest, &vocab)?)
        } else {
            None
        };
        let segments = SegmentSetWriter::create(
            &tmp_dir,
            manifest.partitioning.num_shards(),
            block_budget,
            manifest.sketches,
            codec,
            rank.clone(),
        )?;
        let next_seq = manifest.num_sequences;
        Ok(IncrementalWriter {
            dir,
            manifest,
            vocab,
            gen_id,
            tmp_dir,
            rank,
            segments: Some(segments),
            next_seq,
            sealed: false,
        })
    }

    /// The corpus vocabulary appends are validated against.
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The manifest snapshot this writer opened (the pre-append state).
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Sequences appended to this generation so far.
    pub fn appended(&self) -> u64 {
        self.next_seq - self.manifest.num_sequences
    }

    /// Appends one sequence; returns its corpus-wide id (continuing the
    /// existing id space).
    pub fn append(&mut self, seq: &[ItemId]) -> Result<u64> {
        let id = self.next_seq;
        let shard = self.manifest.partitioning.shard_of(id) as usize;
        self.segments
            .as_mut()
            .expect("writer not finished")
            .append(shard, id, seq, &self.vocab)?;
        self.next_seq += 1;
        Ok(id)
    }

    /// Appends every sequence of `db` in order.
    pub fn append_db(&mut self, db: &SequenceDatabase) -> Result<()> {
        for seq in db.iter() {
            self.append(seq)?;
        }
        Ok(())
    }

    /// Seals the generation: flushes the staged segment files, renames the
    /// temp directory into place, and swaps the manifest. Returns the new
    /// manifest.
    ///
    /// An empty generation (nothing appended) is not sealed — the staged
    /// files are discarded and the current manifest is returned unchanged.
    ///
    /// When [`COMPACT_EVERY_ENV`] is set, the compactor then runs until the
    /// corpus holds at most that many generations.
    pub fn finish(mut self) -> Result<Manifest> {
        let result = self.finish_inner();
        if let Err(e) = &result {
            lash_obs::flight::record_error("store.seal", &e.to_string());
        }
        result
    }

    fn finish_inner(&mut self) -> Result<Manifest> {
        let segments = self.segments.take().expect("finish called once");
        if self.next_seq == self.manifest.num_sequences {
            let _ = fs::remove_dir_all(&self.tmp_dir);
            self.sealed = true;
            return Ok(self.manifest.clone());
        }
        let num_sequences = segments.sequences();
        let total_items = segments.total_items();
        // One seal = one span. Roots a fresh trace for a bare ingest; the
        // env-triggered compaction below nests its rounds under it.
        let _seal_span = lash_obs::span!(
            "store.seal",
            generation = self.gen_id,
            sequences = num_sequences,
        );
        // Appending v3 segments to a v2 corpus bumps the manifest version
        // (old builds must reject what they cannot read); the version is
        // never downgraded, so mixed-generation corpora stay readable here.
        let version = self.manifest.version.max(segments.codec().format_version());
        let shards = segments.finish()?;

        // Step 2 of the protocol: rename the staged directory into place.
        // Its final name is still unreferenced until the manifest swap.
        let gen_dir = self.dir.join(format::generation_dir_name(self.gen_id));
        if gen_dir.exists() {
            // Leftover of a crashed attempt that renamed but never swapped
            // the manifest (ids are never reused, so it cannot be live).
            fs::remove_dir_all(&gen_dir)?;
        }
        fs::rename(&self.tmp_dir, &gen_dir)?;
        self.sealed = true;

        // Step 3: swap the manifest.
        let mut manifest = self.manifest.clone();
        manifest.version = version;
        if manifest.rank_order.is_none() {
            // First v4 generation on this corpus: seal the order the staged
            // segments were just encoded with.
            manifest.rank_order = self.rank.clone();
        }
        manifest.generations.push(GenerationMeta {
            id: self.gen_id,
            num_sequences,
            total_items,
            shards,
        });
        manifest.num_sequences += num_sequences;
        manifest.total_items += total_items;
        manifest.next_gen_id = self.gen_id + 1;
        manifest.shards = Manifest::aggregate_shards(
            &manifest.generations,
            manifest.partitioning.num_shards() as usize,
        );
        write_manifest(&self.dir, &manifest, &self.vocab)?;

        lash_obs::global()
            .counter("store.ingest.sequences")
            .add(num_sequences);

        if let Some(limit) = compact_every_from_env() {
            let config = CompactionConfig::default().with_max_generations(limit);
            if compact::compact(&self.dir, &config)?.is_some() {
                return Ok(read_manifest(&self.dir)?.0);
            }
        }
        Ok(manifest)
    }
}

impl Drop for IncrementalWriter {
    fn drop(&mut self) {
        // An unfinished writer leaves no trace: the staged directory was
        // never referenced by a manifest.
        if !self.sealed {
            let _ = fs::remove_dir_all(&self.tmp_dir);
        }
    }
}
