//! The binary layout of manifests, segment headers, and block headers.
//!
//! Everything on disk is wrapped in `lash-encoding` frames (varint length
//! prefix + FNV-1a-32 checksum), so truncation and bit-flips surface as
//! typed errors rather than garbage data. All multi-byte integers inside
//! frame payloads are varints; optional values are shifted by one so that
//! `0` encodes "none".
//!
//! Since format version 2 a corpus is an ordered set of sealed segment
//! **generations** (see [`crate::generations`]): the manifest header names
//! the generation count and the next free generation id, and a dedicated
//! generations frame carries each generation's per-shard statistics. The
//! decoder rejects any other version with
//! [`StoreError::UnsupportedVersion`] *before* touching version-dependent
//! fields, so a future format bump can never be misparsed as garbage.
//!
//! Format version 3 changes only the *block* encoding. A v3 block header
//! opens with a payload-codec tag ([`PayloadCodec`]), and the
//! [`PayloadCodec::GroupVarint`] payload is **columnar**: all sequence-id
//! deltas, then all per-record lengths, then every record's items flattened
//! into one contiguous group-varint stream — so a reader decodes a whole
//! block with the wide kernel of [`lash_encoding::group_varint`] instead of
//! parsing tokens byte by byte. Version 2 segments (per-record delta/varint
//! payloads, no codec tag) remain fully readable; compaction rewrites them
//! in the current codec, so `compact` doubles as a v2→v3 migration.
//!
//! Format version 4 keeps the v3 columnar layout but stores the flattened
//! item column in **rank space** ([`PayloadCodec::GroupVarintRank`]): the
//! corpus fixes one descending-frequency item permutation (a [`RankOrder`],
//! carried by a dedicated manifest frame) and every stored item is its rank
//! under that order. Frequent items get the smallest integers, so the
//! group-varint item column shrinks, and a rank-space consumer (the mine
//! job's map phase) reads the stored values with **no re-encoding at all**.
//! Block-header `min_item`/`max_item` and the G1 sketch stay in item-id
//! space, so header-only consumers (f-list assembly, sketch pruning) are
//! version-oblivious. The rank order is **write-once per corpus**: every
//! v4 segment of a corpus shares the manifest's single permutation, and
//! compaction again doubles as the v2/v3 → v4 migration.

use std::collections::BTreeMap;

use lash_core::vocabulary::{ItemId, Vocabulary};
use lash_encoding::group_varint;
use lash_encoding::varint::{self, VarintReader};
use lash_encoding::zigzag;

use crate::{Result, StoreError};

/// Newest on-disk format version written by this crate. Version 2
/// introduced segment generations; version 3 introduced group-varint block
/// payloads; version 4 introduced rank-space item columns; version 1
/// (single flat segment set) is no longer written or read.
pub const FORMAT_VERSION: u32 = 4;

/// Oldest format version this build still reads. Version-2 and -3 corpora
/// open transparently (the reader dispatches on the per-segment version and
/// the per-block codec tag) and migrate to version 4 through compaction.
pub const MIN_FORMAT_VERSION: u32 = 2;

/// Environment variable forcing the payload codec (and with it the written
/// format version) of every segment written by this process: `v2` forces
/// [`PayloadCodec::Varint`], `v3` forces [`PayloadCodec::GroupVarint`],
/// `v4` forces [`PayloadCodec::GroupVarintRank`].
/// Overrides [`crate::StoreOptions::codec`]; CI uses it to run every suite
/// under all codecs. A set-but-unrecognized value panics — the variable
/// exists to force test coverage, and a typo silently selecting the default
/// would defeat exactly that.
pub const FORCE_CODEC_ENV: &str = "LASH_FORCE_CODEC";

/// The per-block payload encoding. Tagged in every v3+ block header;
/// version-2 blocks are implicitly [`PayloadCodec::Varint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadCodec {
    /// Format-v2 record stream: per record, a varint id delta, a varint
    /// length, then delta/zigzag-varint item ids. Compact, but decoded one
    /// byte at a time.
    Varint,
    /// Format-v3 columnar layout: varint id deltas, then a group-varint
    /// lengths column, then all items as one contiguous group-varint
    /// stream (see [`lash_encoding::group_varint`] for the group layout).
    GroupVarint,
    /// Format-v4: the v3 columnar layout with the flattened item column in
    /// **rank space** — each value is the item's rank under the corpus's
    /// [`RankOrder`] instead of its vocabulary id. Frequent items rank
    /// lowest, so the column's group-varint bytes shrink and rank-space
    /// consumers skip re-encoding entirely.
    #[default]
    GroupVarintRank,
}

impl PayloadCodec {
    /// The codec's tag byte in v3+ block headers.
    pub fn tag(self) -> u32 {
        match self {
            PayloadCodec::Varint => 0,
            PayloadCodec::GroupVarint => 1,
            PayloadCodec::GroupVarintRank => 2,
        }
    }

    /// Decodes a v3+ block-header codec tag.
    pub(crate) fn from_tag(tag: u32) -> Result<Self> {
        match tag {
            0 => Ok(PayloadCodec::Varint),
            1 => Ok(PayloadCodec::GroupVarint),
            2 => Ok(PayloadCodec::GroupVarintRank),
            other => Err(StoreError::Corrupt(format!(
                "unknown block payload codec tag {other}"
            ))),
        }
    }

    /// The segment/manifest format version segments written with this codec
    /// carry: [`PayloadCodec::Varint`] writes byte-identical v2 segments,
    /// [`PayloadCodec::GroupVarint`] writes v3,
    /// [`PayloadCodec::GroupVarintRank`] writes v4.
    pub fn format_version(self) -> u32 {
        match self {
            PayloadCodec::Varint => 2,
            PayloadCodec::GroupVarint => 3,
            PayloadCodec::GroupVarintRank => 4,
        }
    }

    /// Parses a [`FORCE_CODEC_ENV`] value; panics on anything but
    /// `v2`/`v3`/`v4` (see the constant's docs for why).
    pub(crate) fn from_env_str(value: &str) -> PayloadCodec {
        match value.trim() {
            "v2" => PayloadCodec::Varint,
            "v3" => PayloadCodec::GroupVarint,
            "v4" => PayloadCodec::GroupVarintRank,
            other => panic!("{FORCE_CODEC_ENV}={other:?} is not a codec: expected v2, v3 or v4"),
        }
    }
}

/// The frame-checksum flavor of a segment's block frames, by segment
/// format version: v3 block frames use the word-wise
/// [`lash_encoding::frame::checksum_wide`] (an order of magnitude cheaper
/// to verify — once the wide decode kernel lands, byte-at-a-time FNV is
/// what would dominate the scan), v2 frames keep the original FNV-1a-32.
/// Segment *header* frames always use the classic flavor: they are read
/// before the version is known.
pub(crate) fn frame_checksum_for_version(version: u32) -> lash_encoding::FrameChecksum {
    if version >= 3 {
        lash_encoding::FrameChecksum::Fnv1aWide
    } else {
        lash_encoding::FrameChecksum::Fnv1a
    }
}

/// Reads [`FORCE_CODEC_ENV`]; unset or empty means "no forced codec".
pub(crate) fn codec_from_env() -> Option<PayloadCodec> {
    let value = std::env::var(FORCE_CODEC_ENV).ok()?;
    if value.trim().is_empty() {
        return None;
    }
    Some(PayloadCodec::from_env_str(&value))
}

/// The codec a writer should actually use: the [`FORCE_CODEC_ENV`]
/// override when set, otherwise `requested`.
pub(crate) fn resolve_codec(requested: PayloadCodec) -> PayloadCodec {
    codec_from_env().unwrap_or(requested)
}

/// The corpus-wide descending-frequency item permutation of a rank-space
/// (format v4) corpus: `item_of[rank]` is the vocabulary id of the item at
/// `rank`, with rank 0 the most frequent item. The inverse (`rank_of`) is
/// derived on construction so both directions are O(1) table lookups.
///
/// The order is **write-once**: the first writer to produce a v4 segment
/// fixes it in the manifest, and every later v4 segment of the corpus is
/// encoded under the same permutation (mixed-order corpora would make block
/// payloads ambiguous). It uses the same sort as `lash-core`'s `ItemOrder`
/// — descending generalized frequency, then ascending hierarchy depth, then
/// ascending item id — so a mining context built over the same f-list lands
/// on the identical permutation and the map phase's re-ranking becomes a
/// no-op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankOrder {
    item_of: Vec<u32>,
    rank_of: Vec<u32>,
}

impl RankOrder {
    /// Builds an order from the rank → item-id permutation, validating that
    /// it is in fact a permutation of `0..len`.
    pub fn from_item_of(item_of: Vec<u32>) -> Result<RankOrder> {
        let n = item_of.len();
        let mut rank_of = vec![u32::MAX; n];
        for (rank, &item) in item_of.iter().enumerate() {
            let slot = rank_of.get_mut(item as usize).ok_or_else(|| {
                StoreError::Corrupt(format!(
                    "rank order names item {item} outside vocabulary of {n}"
                ))
            })?;
            if *slot != u32::MAX {
                return Err(StoreError::Corrupt(format!(
                    "rank order repeats item {item}"
                )));
            }
            *slot = rank as u32;
        }
        Ok(RankOrder { item_of, rank_of })
    }

    /// The identity order (rank == item id) — the valid-but-neutral order a
    /// writer falls back to when no frequency information is available.
    pub fn identity(len: usize) -> RankOrder {
        let ids: Vec<u32> = (0..len as u32).collect();
        RankOrder {
            item_of: ids.clone(),
            rank_of: ids,
        }
    }

    /// Number of items (the vocabulary size the order covers).
    pub fn len(&self) -> usize {
        self.item_of.len()
    }

    /// True if the order covers no items.
    pub fn is_empty(&self) -> bool {
        self.item_of.is_empty()
    }

    /// The rank → item-id permutation.
    pub fn item_of(&self) -> &[u32] {
        &self.item_of
    }

    /// The item-id → rank permutation (inverse of [`RankOrder::item_of`]).
    pub fn rank_of(&self) -> &[u32] {
        &self.rank_of
    }
}

/// Encodes the manifest rank-order frame payload: the item count followed
/// by the rank → item-id permutation as raw varints (the permutation is not
/// sorted, so there is nothing to delta-code).
pub(crate) fn encode_rank_order(order: &RankOrder, buf: &mut Vec<u8>) {
    varint::encode_u32(order.item_of.len() as u32, buf);
    for &item in &order.item_of {
        varint::encode_u32(item, buf);
    }
}

/// Decodes a manifest rank-order frame payload, validating the permutation
/// against the vocabulary size.
pub(crate) fn decode_rank_order(bytes: &[u8], vocab_len: usize) -> Result<RankOrder> {
    let mut r = VarintReader::new(bytes);
    let n = r.read_u32()? as usize;
    if n != vocab_len {
        return Err(StoreError::Corrupt(format!(
            "rank order covers {n} items, vocabulary holds {vocab_len}"
        )));
    }
    let mut item_of = Vec::with_capacity(n);
    for _ in 0..n {
        item_of.push(r.read_u32()?);
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing rank-order bytes".into()));
    }
    RankOrder::from_item_of(item_of)
}

/// Manifest file name inside a corpus directory.
pub const MANIFEST_FILE: &str = "MANIFEST.lash";

/// Magic bytes opening the manifest header frame.
pub const MANIFEST_MAGIC: &[u8; 8] = b"LASHSTOR";

/// Magic bytes opening every segment file's header frame.
pub const SEGMENT_MAGIC: &[u8; 4] = b"LSEG";

/// File name of shard `shard` inside a generation directory.
pub fn shard_file_name(shard: u32) -> String {
    format!("shard-{shard:05}.seg")
}

/// Directory name of generation `id` inside a corpus directory.
pub fn generation_dir_name(id: u32) -> String {
    format!("gen-{id:05}")
}

/// Name of the temporary directory a generation is assembled in before the
/// atomic rename that seals it (see [`crate::generations`]). Starts with a
/// dot so readers and directory listings never mistake it for sealed data.
pub fn generation_tmp_dir_name(id: u32) -> String {
    format!(".gen-{id:05}.tmp")
}

/// Routing of sequences to shards, a pure function of the corpus-wide
/// sequence id so a corpus reopens deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Shard `splitmix64(id) % shards`: uniform spread regardless of insert
    /// order; every shard sees a slice of the whole id range.
    Hash {
        /// Number of shards.
        shards: u32,
    },
    /// Shard `min(id / sequences_per_shard, shards - 1)`: contiguous id
    /// ranges per shard, so scans by id range can skip whole shards.
    Range {
        /// Number of shards.
        shards: u32,
        /// Ids per shard; the last shard absorbs any overflow.
        sequences_per_shard: u64,
    },
}

impl Partitioning {
    /// Hash partitioning over `shards` shards.
    pub fn hash(shards: u32) -> Partitioning {
        Partitioning::Hash { shards }
    }

    /// Range partitioning: `sequences_per_shard` consecutive ids per shard.
    pub fn range(shards: u32, sequences_per_shard: u64) -> Partitioning {
        Partitioning::Range {
            shards,
            sequences_per_shard,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        match *self {
            Partitioning::Hash { shards } | Partitioning::Range { shards, .. } => shards,
        }
    }

    /// The shard holding sequence `id`.
    pub fn shard_of(&self, id: u64) -> u32 {
        match *self {
            Partitioning::Hash { shards } => (splitmix64(id) % shards as u64) as u32,
            Partitioning::Range {
                shards,
                sequences_per_shard,
            } => (id / sequences_per_shard).min(shards as u64 - 1) as u32,
        }
    }

    /// Validates the parameters.
    pub(crate) fn validate(&self) -> Result<()> {
        if self.num_shards() == 0 {
            return Err(StoreError::InvalidOptions("at least one shard required"));
        }
        if let Partitioning::Range {
            sequences_per_shard: 0,
            ..
        } = self
        {
            return Err(StoreError::InvalidOptions(
                "range partitioning needs sequences_per_shard >= 1",
            ));
        }
        Ok(())
    }
}

/// SplitMix64 finalizer — a strong, dependency-free id hash.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-shard statistics recorded in the manifest (once per generation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Sequences stored in the shard.
    pub sequences: u64,
    /// Blocks in the segment file.
    pub blocks: u64,
    /// Total (compressed) payload bytes across blocks.
    pub payload_bytes: u64,
    /// Smallest sequence id, `u64::MAX` when the shard is empty.
    pub min_seq: u64,
    /// Largest sequence id, `0` when the shard is empty.
    pub max_seq: u64,
}

impl Default for ShardStats {
    fn default() -> Self {
        ShardStats {
            sequences: 0,
            blocks: 0,
            payload_bytes: 0,
            min_seq: u64::MAX,
            max_seq: 0,
        }
    }
}

impl ShardStats {
    /// Folds another shard's statistics into this one (used to aggregate a
    /// shard's view across generations).
    pub fn merge(&mut self, other: &ShardStats) {
        self.sequences += other.sequences;
        self.blocks += other.blocks;
        self.payload_bytes += other.payload_bytes;
        self.min_seq = self.min_seq.min(other.min_seq);
        self.max_seq = self.max_seq.max(other.max_seq);
    }
}

/// One sealed segment generation: an immutable set of per-shard segment
/// files under `gen-<id>/` plus its statistics. The manifest holds the
/// generations in sequence-id order; chained shard scans visit them in list
/// order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerationMeta {
    /// The generation's id — names its directory ([`generation_dir_name`]).
    /// Ids grow monotonically over the corpus lifetime and are never
    /// reused, so a compacted-away generation's directory name can never be
    /// confused with a live one.
    pub id: u32,
    /// Sequences stored in the generation.
    pub num_sequences: u64,
    /// Total items across the generation's sequences.
    pub total_items: u64,
    /// Per-shard statistics, indexed by shard.
    pub shards: Vec<ShardStats>,
}

impl GenerationMeta {
    /// Total compressed payload bytes across the generation's shards.
    pub fn payload_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.payload_bytes).sum()
    }

    /// Total blocks across the generation's shards.
    pub fn blocks(&self) -> u64 {
        self.shards.iter().map(|s| s.blocks).sum()
    }
}

/// The corpus manifest: everything needed to reopen a corpus cold.
///
/// A manifest is immutable once written; ingest and compaction *replace* it
/// atomically (temp file + rename), so every [`crate::CorpusReader`] is a
/// consistent snapshot of the generation list it opened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Format version of the files on disk.
    pub version: u32,
    /// How sequences are routed to shards.
    pub partitioning: Partitioning,
    /// Total sequences in the corpus (across all generations).
    pub num_sequences: u64,
    /// Total items across all sequences.
    pub total_items: u64,
    /// Whether blocks carry G1 item-frequency sketches.
    pub sketches: bool,
    /// The next unused generation id; bumped by every seal and compaction.
    pub next_gen_id: u32,
    /// The sealed generations, in sequence-id order.
    pub generations: Vec<GenerationMeta>,
    /// Per-shard statistics aggregated across generations, indexed by
    /// shard. Derived from `generations` on decode; kept denormalized so
    /// shard-level consumers need no generation awareness.
    pub shards: Vec<ShardStats>,
    /// The corpus's rank-space item permutation — present exactly when
    /// `version >= 4` (a v4 manifest carries a dedicated rank-order frame).
    /// Shared behind an [`std::sync::Arc`] so every scan can hold the
    /// mapping without copying two vocabulary-sized tables.
    pub rank_order: Option<std::sync::Arc<RankOrder>>,
}

impl Manifest {
    /// Recomputes the aggregated per-shard statistics from the generation
    /// list.
    pub fn aggregate_shards(generations: &[GenerationMeta], num_shards: usize) -> Vec<ShardStats> {
        let mut agg = vec![ShardStats::default(); num_shards];
        for generation in generations {
            for (shard, stats) in generation.shards.iter().enumerate() {
                if shard < agg.len() {
                    agg[shard].merge(stats);
                }
            }
        }
        agg
    }
}

/// Encodes the manifest header frame payload (everything but the
/// vocabulary and the generation list, which get their own frames).
pub(crate) fn encode_manifest_header(m: &Manifest, buf: &mut Vec<u8>) {
    buf.extend_from_slice(MANIFEST_MAGIC);
    varint::encode_u32(m.version, buf);
    match m.partitioning {
        Partitioning::Hash { shards } => {
            buf.push(0);
            varint::encode_u32(shards, buf);
        }
        Partitioning::Range {
            shards,
            sequences_per_shard,
        } => {
            buf.push(1);
            varint::encode_u32(shards, buf);
            varint::encode_u64(sequences_per_shard, buf);
        }
    }
    varint::encode_u64(m.num_sequences, buf);
    varint::encode_u64(m.total_items, buf);
    buf.push(m.sketches as u8);
    varint::encode_u32(m.next_gen_id, buf);
    varint::encode_u32(m.generations.len() as u32, buf);
}

/// Decodes the manifest header frame payload (generations and shards left
/// empty; the generation count is returned for cross-checking against the
/// generations frame).
pub(crate) fn decode_manifest_header(bytes: &[u8]) -> Result<(Manifest, u32)> {
    if bytes.len() < MANIFEST_MAGIC.len() || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return Err(StoreError::Corrupt("manifest magic mismatch".into()));
    }
    let mut r = VarintReader::new(&bytes[MANIFEST_MAGIC.len()..]);
    let version = r.read_u32()?;
    // Versions are rejected before any version-dependent field is read:
    // a newer manifest (written by a future build) must surface as
    // UnsupportedVersion, never be misparsed into a plausible Manifest.
    // Versions 2–4 share this manifest header layout (v3 changed only the
    // block encoding; v4 adds a *separate* rank-order frame), so all parse
    // identically from here on.
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let tag = r.read_u32()?;
    let partitioning = match tag {
        0 => Partitioning::Hash {
            shards: r.read_u32()?,
        },
        1 => Partitioning::Range {
            shards: r.read_u32()?,
            sequences_per_shard: r.read_u64()?,
        },
        other => {
            return Err(StoreError::Corrupt(format!(
                "unknown partitioning tag {other}"
            )))
        }
    };
    partitioning.validate().map_err(|_| {
        StoreError::Corrupt("manifest carries invalid partitioning parameters".into())
    })?;
    let num_sequences = r.read_u64()?;
    let total_items = r.read_u64()?;
    let sketches = match r.read_u32()? {
        0 => false,
        1 => true,
        other => {
            return Err(StoreError::Corrupt(format!(
                "invalid sketches flag {other}"
            )))
        }
    };
    let next_gen_id = r.read_u32()?;
    let num_generations = r.read_u32()?;
    Ok((
        Manifest {
            version,
            partitioning,
            num_sequences,
            total_items,
            sketches,
            next_gen_id,
            generations: Vec::new(),
            shards: Vec::new(),
            rank_order: None,
        },
        num_generations,
    ))
}

/// Encodes the interned vocabulary + hierarchy frame payload (the shared
/// [`Vocabulary::encode_bytes`] layout, also embedded by `lash-index`).
pub(crate) fn encode_vocabulary(vocab: &Vocabulary, buf: &mut Vec<u8>) {
    vocab.encode_bytes(buf);
}

/// Decodes a vocabulary frame payload, preserving item ids (intern order).
pub(crate) fn decode_vocabulary(bytes: &[u8]) -> Result<Vocabulary> {
    Vocabulary::decode_bytes(bytes)
        .map_err(|e| StoreError::Corrupt(format!("invalid vocabulary: {e}")))
}

/// Encodes the per-shard statistics of one generation into `buf`.
fn encode_shard_stats(shards: &[ShardStats], buf: &mut Vec<u8>) {
    varint::encode_u32(shards.len() as u32, buf);
    for s in shards {
        varint::encode_u64(s.sequences, buf);
        varint::encode_u64(s.blocks, buf);
        varint::encode_u64(s.payload_bytes, buf);
        varint::encode_u64(s.min_seq, buf);
        varint::encode_u64(s.max_seq, buf);
    }
}

/// Decodes one generation's per-shard statistics from `r`.
fn decode_shard_stats(r: &mut VarintReader<'_>) -> Result<Vec<ShardStats>> {
    let n = r.read_u32()?;
    let mut shards = Vec::with_capacity(n as usize);
    for _ in 0..n {
        shards.push(ShardStats {
            sequences: r.read_u64()?,
            blocks: r.read_u64()?,
            payload_bytes: r.read_u64()?,
            min_seq: r.read_u64()?,
            max_seq: r.read_u64()?,
        });
    }
    Ok(shards)
}

/// Encodes the generations frame payload: every sealed generation's id and
/// statistics, in sequence-id order.
pub(crate) fn encode_generations(generations: &[GenerationMeta], buf: &mut Vec<u8>) {
    varint::encode_u32(generations.len() as u32, buf);
    for generation in generations {
        varint::encode_u32(generation.id, buf);
        varint::encode_u64(generation.num_sequences, buf);
        varint::encode_u64(generation.total_items, buf);
        encode_shard_stats(&generation.shards, buf);
    }
}

/// Decodes the generations frame payload.
pub(crate) fn decode_generations(bytes: &[u8]) -> Result<Vec<GenerationMeta>> {
    let mut r = VarintReader::new(bytes);
    let n = r.read_u32()?;
    let mut generations = Vec::with_capacity(n as usize);
    for _ in 0..n {
        generations.push(GenerationMeta {
            id: r.read_u32()?,
            num_sequences: r.read_u64()?,
            total_items: r.read_u64()?,
            shards: decode_shard_stats(&mut r)?,
        });
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing generation bytes".into()));
    }
    Ok(generations)
}

/// Encodes a segment file's header frame payload for the given format
/// version (2 to 4 — the writer derives it from its payload codec).
pub(crate) fn encode_segment_header(shard: u32, version: u32, buf: &mut Vec<u8>) {
    debug_assert!((MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version));
    buf.extend_from_slice(SEGMENT_MAGIC);
    varint::encode_u32(version, buf);
    varint::encode_u32(shard, buf);
}

/// Decodes and validates a segment file's header frame payload; returns the
/// segment's format version (2 to 4), which governs how its block headers
/// are parsed.
pub(crate) fn decode_segment_header(bytes: &[u8], expected_shard: u32) -> Result<u32> {
    if bytes.len() < SEGMENT_MAGIC.len() || &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(StoreError::Corrupt("segment magic mismatch".into()));
    }
    let mut r = VarintReader::new(&bytes[SEGMENT_MAGIC.len()..]);
    let version = r.read_u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION).contains(&version) {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let shard = r.read_u32()?;
    if shard != expected_shard {
        return Err(StoreError::Corrupt(format!(
            "segment header names shard {shard}, expected {expected_shard}"
        )));
    }
    Ok(version)
}

/// Decoded block header: the scan/skip/prune metadata of one block.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockHeader {
    /// How the block's payload is encoded. Implicitly
    /// [`PayloadCodec::Varint`] in version-2 segments; tagged explicitly in
    /// version-3 headers, so a future codec slots in without another
    /// format bump.
    pub codec: PayloadCodec,
    /// Number of sequences in the block.
    pub records: u32,
    /// Smallest (first) sequence id in the block.
    pub first_seq: u64,
    /// Largest (last) sequence id in the block.
    pub last_seq: u64,
    /// Total items across the block's sequences.
    pub items: u64,
    /// Smallest item id occurring in the block, if any item does.
    pub min_item: Option<u32>,
    /// Largest item id occurring in the block, if any item does.
    pub max_item: Option<u32>,
    /// G1 item-frequency sketch: `(item, sequences-in-block whose G1 closure
    /// contains item)`, ascending by item. Empty when sketches are disabled.
    pub sketch: Vec<(u32, u32)>,
}

/// Encodes a block header frame payload for a segment of the given format
/// version. The sketch map is consumed in ascending item order (`BTreeMap`
/// iteration) and delta-compressed. Version-3 headers open with the
/// payload-codec tag; version-2 headers are byte-identical to what the v2
/// writer produced (and imply [`PayloadCodec::Varint`]).
pub(crate) fn encode_block_header(
    h: &BlockHeader,
    sketch: &BTreeMap<u32, u32>,
    version: u32,
    buf: &mut Vec<u8>,
) {
    if version >= 3 {
        varint::encode_u32(h.codec.tag(), buf);
    } else {
        debug_assert_eq!(h.codec, PayloadCodec::Varint, "v2 blocks are varint-coded");
    }
    varint::encode_u32(h.records, buf);
    varint::encode_u64(h.first_seq, buf);
    varint::encode_u64(h.last_seq, buf);
    varint::encode_u64(h.items, buf);
    varint::encode_u32(h.min_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(h.max_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(sketch.len() as u32, buf);
    let mut prev = 0u32;
    for (&item, &count) in sketch {
        varint::encode_u32(item - prev, buf);
        varint::encode_u32(count, buf);
        prev = item;
    }
}

/// Decodes a block header frame payload from a segment of the given format
/// version.
pub(crate) fn decode_block_header(bytes: &[u8], version: u32) -> Result<BlockHeader> {
    let mut r = VarintReader::new(bytes);
    let codec = if version >= 3 {
        PayloadCodec::from_tag(r.read_u32()?)?
    } else {
        PayloadCodec::Varint
    };
    let records = r.read_u32()?;
    let first_seq = r.read_u64()?;
    let last_seq = r.read_u64()?;
    let items = r.read_u64()?;
    let min_item = r.read_u32()?.checked_sub(1);
    let max_item = r.read_u32()?.checked_sub(1);
    if records == 0 || last_seq < first_seq {
        return Err(StoreError::Corrupt(
            "block header invariants violated".into(),
        ));
    }
    let sketch_len = r.read_u32()?;
    let mut sketch = Vec::with_capacity(sketch_len as usize);
    let mut prev = 0u32;
    for i in 0..sketch_len {
        let delta = r.read_u32()?;
        if i > 0 && delta == 0 {
            return Err(StoreError::Corrupt(
                "sketch items not strictly ascending".into(),
            ));
        }
        let item = prev
            .checked_add(delta)
            .ok_or_else(|| StoreError::Corrupt("sketch item id overflows".into()))?;
        let count = r.read_u32()?;
        sketch.push((item, count));
        prev = item;
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt("trailing block-header bytes".into()));
    }
    Ok(BlockHeader {
        codec,
        records,
        first_seq,
        last_seq,
        items,
        min_item,
        max_item,
        sketch,
    })
}

/// Appends one record (id delta + delta/varint-compressed items) to a block
/// payload.
pub(crate) fn encode_record(id_delta: u64, items: &[ItemId], buf: &mut Vec<u8>) {
    varint::encode_u64(id_delta, buf);
    varint::encode_u32(items.len() as u32, buf);
    let mut prev = 0i64;
    for (i, item) in items.iter().enumerate() {
        let v = item.as_u32();
        if i == 0 {
            varint::encode_u32(v, buf);
        } else {
            varint::encode_u64(zigzag::encode_i64(v as i64 - prev), buf);
        }
        prev = v as i64;
    }
}

/// Decodes one record from a block payload at `pos`, **appending** items to
/// `out` — callers batching a whole block into a shared arena rely on the
/// append semantics (clear `out` first for single-record decodes). Returns
/// `(id_delta, new_pos)`.
pub(crate) fn decode_record(
    payload: &[u8],
    pos: usize,
    vocab_len: u32,
    out: &mut Vec<ItemId>,
) -> Result<(u64, usize)> {
    let mut r = VarintReader::new(&payload[pos..]);
    let id_delta = r.read_u64()?;
    let len = r.read_u32()?;
    out.reserve(len as usize);
    let mut prev = 0i64;
    for i in 0..len {
        let v = if i == 0 {
            r.read_u32()? as i64
        } else {
            prev.checked_add(zigzag::decode_i64(r.read_u64()?))
                .ok_or_else(|| StoreError::Corrupt("item delta overflows".into()))?
        };
        if v < 0 || v >= vocab_len as i64 {
            return Err(StoreError::Corrupt(format!(
                "item id {v} outside vocabulary of {vocab_len}"
            )));
        }
        out.push(ItemId::from_u32(v as u32));
        prev = v;
    }
    Ok((id_delta, pos + r.position()))
}

/// Encodes a [`PayloadCodec::GroupVarint`] block payload: the columnar
/// layout is every record's sequence-id delta (varint `u64`, first delta
/// relative to the header's `first_seq`), then the per-record item counts
/// as one group-varint stream, then every record's items — **raw** item
/// ids, not deltas, since frequency-ordered ids are small already — as one
/// contiguous group-varint stream the wide decode kernel can rip through.
pub(crate) fn encode_gv_payload(id_deltas: &[u64], lens: &[u32], items: &[u32], buf: &mut Vec<u8>) {
    for &delta in id_deltas {
        varint::encode_u64(delta, buf);
    }
    group_varint::encode(lens, buf);
    group_varint::encode(items, buf);
}

/// Decodes a [`PayloadCodec::GroupVarint`] block payload into the caller's
/// reusable columns; `records` and `items` come from the block header.
/// Returns the number of payload bytes consumed (the caller cross-checks it
/// against the payload length).
pub(crate) fn decode_gv_payload(
    payload: &[u8],
    records: usize,
    items: usize,
    id_deltas: &mut Vec<u64>,
    lens: &mut Vec<u32>,
    flat: &mut Vec<u32>,
) -> Result<usize> {
    id_deltas.clear();
    id_deltas.reserve(records);
    let mut pos = 0usize;
    for _ in 0..records {
        let (delta, n) = varint::decode_u64(&payload[pos..])?;
        pos += n;
        id_deltas.push(delta);
    }
    lens.resize(records, 0);
    pos += group_varint::decode(&payload[pos..], lens)?;
    flat.resize(items, 0);
    pos += group_varint::decode(&payload[pos..], flat)?;
    Ok(pos)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lash_core::vocabulary::VocabularyBuilder;

    #[test]
    fn hash_partitioning_spreads_and_is_deterministic() {
        let p = Partitioning::hash(7);
        let mut seen = vec![0u64; 7];
        for id in 0..10_000u64 {
            let s = p.shard_of(id);
            assert_eq!(s, p.shard_of(id));
            seen[s as usize] += 1;
        }
        // Roughly uniform: no shard under half or over double the mean.
        for &n in &seen {
            assert!(n > 700 && n < 2900, "skewed shard: {seen:?}");
        }
    }

    #[test]
    fn range_partitioning_is_contiguous_with_overflow_in_last() {
        let p = Partitioning::range(3, 10);
        assert_eq!(p.shard_of(0), 0);
        assert_eq!(p.shard_of(9), 0);
        assert_eq!(p.shard_of(10), 1);
        assert_eq!(p.shard_of(29), 2);
        assert_eq!(p.shard_of(1_000_000), 2);
    }

    #[test]
    fn manifest_header_round_trips() {
        for partitioning in [Partitioning::hash(5), Partitioning::range(2, 1000)] {
            let m = Manifest {
                version: FORMAT_VERSION,
                partitioning,
                num_sequences: 123_456,
                total_items: 9_876_543,
                sketches: true,
                next_gen_id: 7,
                generations: Vec::new(),
                shards: Vec::new(),
                rank_order: None,
            };
            let mut buf = Vec::new();
            encode_manifest_header(&m, &mut buf);
            let (back, gens) = decode_manifest_header(&buf).unwrap();
            assert_eq!(back, m);
            assert_eq!(gens, 0);
        }
    }

    #[test]
    fn manifest_rejects_bad_magic() {
        let m = Manifest {
            version: FORMAT_VERSION,
            partitioning: Partitioning::hash(1),
            num_sequences: 0,
            total_items: 0,
            sketches: false,
            next_gen_id: 1,
            generations: Vec::new(),
            shards: Vec::new(),
            rank_order: None,
        };
        let mut buf = Vec::new();
        encode_manifest_header(&m, &mut buf);
        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        assert!(matches!(
            decode_manifest_header(&bad),
            Err(StoreError::Corrupt(_))
        ));
        assert!(matches!(
            decode_manifest_header(&buf[..4]),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn unknown_manifest_versions_are_unsupported_not_corrupt() {
        // A retired or future manifest: valid magic, an unreadable version,
        // then bytes this build has no idea how to parse. The decoder must
        // classify it by version alone — before touching any later field.
        for future in [1u32, 5, 99] {
            let mut buf = Vec::new();
            buf.extend_from_slice(MANIFEST_MAGIC);
            varint::encode_u32(future, &mut buf);
            buf.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef]);
            match decode_manifest_header(&buf) {
                Err(StoreError::UnsupportedVersion { found }) => assert_eq!(found, future),
                other => panic!("version {future}: expected UnsupportedVersion, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_segment_versions_are_unsupported() {
        let mut buf = Vec::new();
        buf.extend_from_slice(SEGMENT_MAGIC);
        varint::encode_u32(57, &mut buf);
        varint::encode_u32(0, &mut buf);
        assert!(matches!(
            decode_segment_header(&buf, 0),
            Err(StoreError::UnsupportedVersion { found: 57 })
        ));
    }

    #[test]
    fn vocabulary_round_trips_with_hierarchy_and_ids() {
        let mut vb = VocabularyBuilder::new();
        let b = vb.intern("B");
        let b1 = vb.child("b1", b);
        let b11 = vb.child("b11", b1);
        let loose = vb.intern("loose item with spaces\tand tabs");
        let vocab = vb.finish().unwrap();
        let mut buf = Vec::new();
        encode_vocabulary(&vocab, &mut buf);
        let back = decode_vocabulary(&buf).unwrap();
        assert_eq!(back.len(), vocab.len());
        for item in [b, b1, b11, loose] {
            assert_eq!(back.name(item), vocab.name(item));
            assert_eq!(back.parent(item), vocab.parent(item));
        }
        assert_eq!(back.chain(b11), vocab.chain(b11));
    }

    #[test]
    fn vocabulary_decoding_rejects_corruption() {
        let mut vb = VocabularyBuilder::new();
        vb.intern("x");
        let vocab = vb.finish().unwrap();
        let mut buf = Vec::new();
        encode_vocabulary(&vocab, &mut buf);
        assert!(decode_vocabulary(&buf[..buf.len() - 1]).is_err());
        assert!(decode_vocabulary(&[]).is_err());
    }

    #[test]
    fn generations_round_trip() {
        let generations = vec![
            GenerationMeta {
                id: 0,
                num_sequences: 10,
                total_items: 44,
                shards: vec![
                    ShardStats {
                        sequences: 10,
                        blocks: 2,
                        payload_bytes: 4_000,
                        min_seq: 0,
                        max_seq: 31,
                    },
                    ShardStats::default(),
                ],
            },
            GenerationMeta {
                id: 3,
                num_sequences: 2,
                total_items: 5,
                shards: vec![ShardStats::default(), ShardStats::default()],
            },
        ];
        let mut buf = Vec::new();
        encode_generations(&generations, &mut buf);
        assert_eq!(decode_generations(&buf).unwrap(), generations);
        assert!(decode_generations(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn aggregated_shards_fold_across_generations() {
        let g0 = GenerationMeta {
            id: 0,
            num_sequences: 3,
            total_items: 9,
            shards: vec![
                ShardStats {
                    sequences: 3,
                    blocks: 1,
                    payload_bytes: 100,
                    min_seq: 0,
                    max_seq: 2,
                },
                ShardStats::default(),
            ],
        };
        let g1 = GenerationMeta {
            id: 1,
            num_sequences: 2,
            total_items: 4,
            shards: vec![
                ShardStats {
                    sequences: 1,
                    blocks: 1,
                    payload_bytes: 50,
                    min_seq: 4,
                    max_seq: 4,
                },
                ShardStats {
                    sequences: 1,
                    blocks: 1,
                    payload_bytes: 60,
                    min_seq: 3,
                    max_seq: 3,
                },
            ],
        };
        let agg = Manifest::aggregate_shards(&[g0, g1], 2);
        assert_eq!(agg[0].sequences, 4);
        assert_eq!(agg[0].blocks, 2);
        assert_eq!(agg[0].payload_bytes, 150);
        assert_eq!(agg[0].min_seq, 0);
        assert_eq!(agg[0].max_seq, 4);
        assert_eq!(agg[1].sequences, 1);
        assert_eq!(agg[1].min_seq, 3);
    }

    #[test]
    fn block_header_round_trips_with_sketch_in_both_versions() {
        let sketch: BTreeMap<u32, u32> = [(0, 5), (3, 2), (17, 9)].into_iter().collect();
        for (version, codec) in [
            (2, PayloadCodec::Varint),
            (3, PayloadCodec::GroupVarint),
            (4, PayloadCodec::GroupVarintRank),
        ] {
            let h = BlockHeader {
                codec,
                records: 5,
                first_seq: 100,
                last_seq: 131,
                items: 42,
                min_item: Some(0),
                max_item: Some(17),
                sketch: sketch.iter().map(|(&i, &c)| (i, c)).collect(),
            };
            let mut buf = Vec::new();
            encode_block_header(&h, &sketch, version, &mut buf);
            assert_eq!(decode_block_header(&buf, version).unwrap(), h);
        }
    }

    #[test]
    fn v3_block_headers_reject_unknown_codec_tags() {
        let h = BlockHeader {
            codec: PayloadCodec::GroupVarint,
            records: 1,
            first_seq: 0,
            last_seq: 0,
            items: 1,
            min_item: Some(0),
            max_item: Some(0),
            sketch: Vec::new(),
        };
        let mut buf = Vec::new();
        encode_block_header(&h, &BTreeMap::new(), 3, &mut buf);
        buf[0] = 7; // codec tag is the first varint of a v3 header
        assert!(matches!(
            decode_block_header(&buf, 3),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn block_header_rejects_invariant_violations() {
        let h = BlockHeader {
            codec: PayloadCodec::Varint,
            records: 1,
            first_seq: 10,
            last_seq: 10,
            items: 0,
            min_item: None,
            max_item: None,
            sketch: Vec::new(),
        };
        let mut buf = Vec::new();
        encode_block_header(&h, &BTreeMap::new(), 2, &mut buf);
        assert!(decode_block_header(&buf, 2).is_ok());
        assert!(decode_block_header(&buf[..2], 2).is_err());
        assert!(decode_block_header(&[], 2).is_err());
    }

    #[test]
    fn gv_payload_round_trips_columns() {
        let id_deltas = [0u64, 3, 1, 1_000_000];
        let lens = [2u32, 0, 3, 1];
        let items = [7u32, 70_000, 1, 2, 3, 900];
        let mut buf = Vec::new();
        encode_gv_payload(&id_deltas, &lens, &items, &mut buf);
        let (mut d, mut l, mut f) = (Vec::new(), Vec::new(), Vec::new());
        let consumed =
            decode_gv_payload(&buf, id_deltas.len(), items.len(), &mut d, &mut l, &mut f).unwrap();
        assert_eq!(consumed, buf.len());
        assert_eq!(d, id_deltas);
        assert_eq!(l, lens);
        assert_eq!(f, items);
        // Truncation anywhere is a typed decode error.
        for cut in 0..buf.len() {
            assert!(
                decode_gv_payload(
                    &buf[..cut],
                    id_deltas.len(),
                    items.len(),
                    &mut d,
                    &mut l,
                    &mut f
                )
                .is_err(),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn codec_versions_and_tags_are_stable() {
        assert_eq!(PayloadCodec::Varint.format_version(), 2);
        assert_eq!(PayloadCodec::GroupVarint.format_version(), 3);
        assert_eq!(PayloadCodec::GroupVarintRank.format_version(), 4);
        assert_eq!(PayloadCodec::Varint.tag(), 0);
        assert_eq!(PayloadCodec::GroupVarint.tag(), 1);
        assert_eq!(PayloadCodec::GroupVarintRank.tag(), 2);
        assert_eq!(PayloadCodec::from_env_str("v2"), PayloadCodec::Varint);
        assert_eq!(
            PayloadCodec::from_env_str(" v3 "),
            PayloadCodec::GroupVarint
        );
        assert_eq!(
            PayloadCodec::from_env_str("v4"),
            PayloadCodec::GroupVarintRank
        );
        assert_eq!(PayloadCodec::default(), PayloadCodec::GroupVarintRank);
    }

    #[test]
    #[should_panic(expected = "not a codec")]
    fn unrecognized_forced_codec_panics() {
        PayloadCodec::from_env_str("v9");
    }

    #[test]
    fn rank_order_round_trips_and_inverts() {
        let order = RankOrder::from_item_of(vec![3, 0, 4, 1, 2]).unwrap();
        assert_eq!(order.len(), 5);
        assert_eq!(order.item_of(), &[3, 0, 4, 1, 2]);
        assert_eq!(order.rank_of(), &[1, 3, 4, 0, 2]);
        let mut buf = Vec::new();
        encode_rank_order(&order, &mut buf);
        assert_eq!(decode_rank_order(&buf, 5).unwrap(), order);
        // Wrong vocabulary size, truncation, and trailing bytes all reject.
        assert!(decode_rank_order(&buf, 6).is_err());
        assert!(decode_rank_order(&buf[..buf.len() - 1], 5).is_err());
        let mut padded = buf.clone();
        padded.push(0);
        assert!(decode_rank_order(&padded, 5).is_err());
    }

    #[test]
    fn rank_order_rejects_non_permutations() {
        // A repeated item and an out-of-range item are both corruption.
        assert!(RankOrder::from_item_of(vec![0, 0, 1]).is_err());
        assert!(RankOrder::from_item_of(vec![0, 3]).is_err());
        let id = RankOrder::identity(4);
        assert_eq!(id.item_of(), &[0, 1, 2, 3]);
        assert_eq!(id.rank_of(), &[0, 1, 2, 3]);
        assert!(RankOrder::identity(0).is_empty());
    }

    #[test]
    fn records_round_trip_including_empty() {
        let mut vb = VocabularyBuilder::new();
        let ids: Vec<ItemId> = (0..50).map(|i| vb.intern(&format!("i{i}"))).collect();
        let mut buf = Vec::new();
        encode_record(0, &[ids[3], ids[49], ids[0]], &mut buf);
        encode_record(7, &[], &mut buf);
        encode_record(1, &[ids[10]], &mut buf);
        let mut out = Vec::new();
        let (d1, p1) = decode_record(&buf, 0, 50, &mut out).unwrap();
        assert_eq!((d1, out.clone()), (0, vec![ids[3], ids[49], ids[0]]));
        out.clear();
        let (d2, p2) = decode_record(&buf, p1, 50, &mut out).unwrap();
        assert_eq!((d2, out.len()), (7, 0));
        out.clear();
        let (d3, p3) = decode_record(&buf, p2, 50, &mut out).unwrap();
        assert_eq!((d3, out.clone()), (1, vec![ids[10]]));
        assert_eq!(p3, buf.len());
        // Append semantics: decoding into a non-empty arena keeps its prefix.
        let (_, _) = decode_record(&buf, 0, 50, &mut out).unwrap();
        assert_eq!(out, vec![ids[10], ids[3], ids[49], ids[0]]);
    }

    #[test]
    fn record_decoding_rejects_out_of_vocabulary_items() {
        let mut vb = VocabularyBuilder::new();
        let a = vb.intern("a");
        let mut buf = Vec::new();
        encode_record(0, &[a], &mut buf);
        let mut out = Vec::new();
        // Same bytes, but a vocabulary too small to contain the item.
        assert!(decode_record(&buf, 0, 0, &mut out).is_err());
    }
}
