//! Conversions between corpus representations: in-memory databases, the
//! plain-text formats of `lash_core::io`, and the on-disk store.

use std::io::BufRead;
use std::path::Path;

use lash_core::io::{read_hierarchy, read_sequences_into, SequenceSink};
use lash_core::sequence::SequenceDatabase;
use lash_core::vocabulary::{ItemId, Vocabulary, VocabularyBuilder};

use crate::format::Manifest;
use crate::writer::CorpusWriter;
use crate::{Result, StoreError, StoreOptions};

/// Streaming sink: text corpora convert line-by-line into the store when
/// the vocabulary is already known (e.g. a stable product hierarchy).
impl SequenceSink for CorpusWriter {
    fn accept(&mut self, seq: &[ItemId]) -> lash_core::error::Result<()> {
        self.append(seq)
            .map(|_| ())
            .map_err(|e| lash_core::error::Error::Engine(format!("store append: {e}")))
    }
}

/// Persists an in-memory database as a new corpus at `dir`.
pub fn write_database(
    dir: impl AsRef<Path>,
    vocab: &Vocabulary,
    db: &SequenceDatabase,
    opts: StoreOptions,
) -> Result<Manifest> {
    let mut writer = CorpusWriter::create(dir, vocab, opts)?;
    writer.append_db(db)?;
    writer.finish()
}

/// Appends an in-memory database to the existing corpus at `dir` as one
/// sealed generation (see [`crate::IncrementalWriter`]); sequences are
/// validated against the corpus's stored vocabulary.
pub fn append_database(dir: impl AsRef<Path>, db: &SequenceDatabase) -> Result<Manifest> {
    let mut writer = crate::IncrementalWriter::open(dir)?;
    writer.append_db(db)?;
    writer.finish()
}

/// Converts a plain-text corpus (hierarchy file + sequence file, the
/// formats of [`lash_core::io`]) into a new on-disk corpus at `dir`, so
/// subsequent runs reopen it without re-parsing any text.
///
/// The text formats intern items while reading, so the vocabulary is only
/// complete after the sequence pass; sequences are buffered in memory once
/// during conversion. Ingest with a known vocabulary can instead stream
/// straight into a [`CorpusWriter`] via its [`SequenceSink`] impl.
pub fn convert_text(
    hierarchy: impl BufRead,
    sequences: impl BufRead,
    dir: impl AsRef<Path>,
    opts: StoreOptions,
) -> Result<Manifest> {
    let mut builder = VocabularyBuilder::new();
    read_hierarchy(hierarchy, &mut builder).map_err(core_to_store)?;
    let mut db = SequenceDatabase::new();
    read_sequences_into(sequences, &mut builder, false, &mut db).map_err(core_to_store)?;
    let vocab = builder.finish().map_err(core_to_store)?;
    write_database(dir, &vocab, &db, opts)
}

fn core_to_store(e: lash_core::error::Error) -> StoreError {
    StoreError::Corrupt(format!("text corpus: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CorpusReader;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "lash-store-convert-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const HIERARCHY: &str = "b1\tB\nb2\tB\nd1\tD\n";
    const SEQUENCES: &str = "a b1 a\nb2 d1\na d1 b1\n";

    #[test]
    fn text_corpus_converts_and_reopens() {
        let dir = temp_dir("text");
        let manifest = convert_text(
            HIERARCHY.as_bytes(),
            SEQUENCES.as_bytes(),
            &dir,
            StoreOptions::default(),
        )
        .unwrap();
        assert_eq!(manifest.num_sequences, 3);
        assert_eq!(manifest.total_items, 8);
        let reader = CorpusReader::open(&dir).unwrap();
        let vocab = reader.vocabulary();
        let b1 = vocab.lookup("b1").unwrap();
        let b = vocab.lookup("B").unwrap();
        assert!(vocab.generalizes_to(b1, b));
        let db = reader.to_database().unwrap();
        assert_eq!(db.len(), 3);
        let names: Vec<&str> = db.get(0).iter().map(|&i| vocab.name(i)).collect();
        assert_eq!(names, ["a", "b1", "a"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sink_streaming_matches_batch_conversion() {
        // With a pre-built vocabulary, text streams straight into the store.
        let mut builder = VocabularyBuilder::new();
        read_hierarchy(HIERARCHY.as_bytes(), &mut builder).unwrap();
        for tok in "a b1 b2 d1".split_whitespace() {
            builder.intern(tok);
        }
        let vocab = builder.finish().unwrap();

        let dir = temp_dir("sink");
        let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
        let mut vb2 = VocabularyBuilder::new();
        for item in vocab.items() {
            vb2.intern(vocab.name(item));
        }
        let n = read_sequences_into(SEQUENCES.as_bytes(), &mut vb2, false, &mut writer).unwrap();
        assert_eq!(n, 3);
        writer.finish().unwrap();

        let reader = CorpusReader::open(&dir).unwrap();
        assert_eq!(reader.len(), 3);
        let db = reader.to_database().unwrap();
        assert_eq!(db.get(1).len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conversion_honors_the_requested_codec() {
        // The same text corpus converted under each payload codec reopens
        // to identical content; only the block encoding differs.
        use crate::PayloadCodec;
        let mut databases = Vec::new();
        for codec in [PayloadCodec::Varint, PayloadCodec::GroupVarint] {
            let dir = temp_dir(&format!("codec-{}", codec.tag()));
            convert_text(
                HIERARCHY.as_bytes(),
                SEQUENCES.as_bytes(),
                &dir,
                StoreOptions::default().with_codec(codec),
            )
            .unwrap();
            let reader = CorpusReader::open(&dir).unwrap();
            databases.push(reader.to_database().unwrap());
            std::fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(databases[0].len(), databases[1].len());
        for i in 0..databases[0].len() {
            assert_eq!(databases[0].get(i), databases[1].get(i));
        }
    }
}
