//! # lash-store
//!
//! A partitioned, compressed **on-disk sequence corpus** for LASH, grown
//! through sealed segment **generations**. The paper mines a static corpus
//! that dwarfs main memory; a production deployment additionally sees new
//! sequences arrive continuously — this crate is the storage subsystem that
//! supports both: mine larger-than-RAM corpora without re-parsing text or
//! holding every sequence on the heap, and ingest new batches without
//! rewriting a byte of sealed data.
//!
//! ## Layout
//!
//! A corpus is a directory of immutable generations plus one manifest:
//!
//! ```text
//! corpus/
//! ├── MANIFEST.lash      # format version, partitioning, vocabulary/hierarchy,
//! │                      # ordered generation list with per-shard statistics —
//! │                      # everything needed to reopen the corpus cold
//! ├── gen-00000/         # generation 0, sealed by CorpusWriter::finish
//! │   ├── shard-00000.seg    # segment: a stream of compressed blocks
//! │   └── shard-00001.seg
//! ├── gen-00001/         # a later generation, sealed by IncrementalWriter
//! │   └── …
//! └── …
//! ```
//!
//! Sequences are routed to shards by a [`Partitioning`] (hash or range over
//! the corpus-wide sequence id). Each segment is a stream of *blocks*:
//! compressed batches of sequences wrapped in checksummed frames, each
//! preceded by a header frame carrying the block's payload codec, min/max
//! sequence id, item-id range, and an optional **G1 item-frequency
//! sketch** — per item, the number of sequences in the block whose
//! hierarchy closure contains it. The sketch makes the generalized f-list
//! computable *from headers alone*, without decoding any payload;
//! per-generation sketches are additive, so they merge into one corpus-wide
//! f-list for free.
//!
//! Since format v3 block payloads are **columnar group varint**
//! ([`PayloadCodec::GroupVarint`], via `lash-encoding::group_varint`): all
//! sequence-id deltas, then all record lengths, then every record's items
//! as one contiguous stream a branch-free wide kernel decodes in bulk —
//! several times the scan bandwidth of the v2 per-token varint layout.
//! Format v4 ([`PayloadCodec::GroupVarintRank`], the default) keeps the
//! columnar layout but stores items in **rank space**: the corpus-wide
//! descending-frequency order is computed once at sealing time, recorded
//! in the manifest ([`format::RankOrder`]), and items are written as their
//! rank in it. Frequent items get small codes (tighter group-varint
//! bytes), and the mining map phase — which needs exactly this rank
//! encoding — consumes blocks without re-encoding a single item. Both old
//! versions remain fully readable (and writable, for compatibility, via
//! [`StoreOptions::with_codec`] or [`FORCE_CODEC_ENV`]); compaction
//! re-encodes merged generations with the current codec, so it doubles as
//! an in-place v2/v3→v4 migration; see [`format`] for the exact layouts.
//!
//! Shard scans memory-map segment files when the platform supports it
//! (checksums are validated once at open, then blocks decode from
//! zero-copy windows while a background thread decodes one block ahead);
//! set [`SCAN_MODE_ENV`]`=buffered` to force the portable streaming-read
//! engine.
//!
//! ## The corpus lifecycle
//!
//! 1. **Ingest** — [`CorpusWriter`] creates the corpus and seals generation
//!    0; each later batch streams through an [`IncrementalWriter`], which
//!    continues the corpus-wide id space.
//! 2. **Seal** — [`IncrementalWriter::finish`] makes the batch durable
//!    *atomically*: segment files are staged in a temp directory, renamed
//!    into place, and only then referenced by a manifest swap (temp file +
//!    rename — the single commit point). A crash at any step leaves either
//!    the old corpus or the new one, never a torn mix. See
//!    [`generations`] for the full protocol.
//! 3. **Compact** — ingest grows the generation count; the size-tiered
//!    [`compact`](crate::compact) engine stream-merges adjacent generations
//!    back into one, deleting replaced files only after the manifest swap.
//!    Scans and mining results are identical before and after — compaction
//!    moves bytes, never content. Setting [`COMPACT_EVERY_ENV`] compacts
//!    automatically after every seal.
//! 4. **Mine** — [`CorpusReader`] opens a *snapshot* (pinned to the
//!    manifest it read) and mines it; shard scans transparently chain
//!    blocks across generations, so the mining jobs are oblivious to how
//!    many ingest batches built the corpus.
//!
//! ## Reading
//!
//! [`CorpusReader`] opens a corpus cold and exposes:
//!
//! * [`CorpusReader::scan_shard`] — a streaming [`ShardScan`] iterator
//!   (chained across generations);
//! * [`CorpusReader::par_scan`] — a parallel multi-shard scan;
//! * the [`ShardedCorpus`](lash_core::ShardedCorpus) impl, which plugs the
//!   corpus straight into `lash-core`'s distributed jobs: each map task
//!   streams one shard (`Lash::mine_sharded`);
//! * [`CorpusReader::flist`] — the f-list assembled from block headers;
//! * [`CorpusReader::mine`] — the full LASH pipeline from storage.
//!
//! ```
//! use lash_core::{GsmParams, Lash, SequenceDatabase, VocabularyBuilder};
//! use lash_store::{CorpusReader, CorpusWriter, IncrementalWriter, StoreOptions};
//!
//! let dir = std::env::temp_dir().join(format!("lash-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut vb = VocabularyBuilder::new();
//! let dog = vb.intern("dog");
//! let poodle = vb.child("poodle", dog);
//! let walks = vb.intern("walks");
//! let vocab = vb.finish().unwrap();
//!
//! // Write a corpus…
//! let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
//! writer.append(&[poodle, walks]).unwrap();
//! writer.finish().unwrap();
//!
//! // …append a later batch as a second sealed generation…
//! let mut incr = IncrementalWriter::open(&dir).unwrap();
//! incr.append(&[dog, walks]).unwrap();
//! incr.finish().unwrap();
//!
//! // …and reopen it cold and mine, oblivious to the generation split.
//! let reader = CorpusReader::open(&dir).unwrap();
//! let params = GsmParams::new(2, 0, 2).unwrap();
//! let result = reader.mine(&Lash::default(), &params).unwrap();
//! assert!(result
//!     .patterns()
//!     .iter()
//!     .any(|p| p.to_names(reader.vocabulary()) == ["dog", "walks"] && p.frequency == 2));
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compact;
pub mod convert;
pub mod format;
pub mod generations;
pub(crate) mod pins;
pub mod reader;
pub mod writer;

pub use compact::{CompactionConfig, CompactionPlan, CompactionStats};
pub use format::{
    BlockHeader, GenerationMeta, Manifest, Partitioning, PayloadCodec, RankOrder, ShardStats,
    FORCE_CODEC_ENV, FORMAT_VERSION, MIN_FORMAT_VERSION,
};
pub use generations::{IncrementalWriter, COMPACT_EVERY_ENV};
pub use reader::{BlockFilter, CorpusReader, CorpusScan, SequenceBatch, ShardScan, SCAN_MODE_ENV};
pub use writer::CorpusWriter;

use std::path::PathBuf;

use lash_encoding::DecodeError;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors surfaced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// A varint/frame decoding error.
    Decode(DecodeError),
    /// The on-disk data violates a format invariant.
    Corrupt(String),
    /// The corpus was written by a format version this build does not
    /// read — typically a newer build (generations bumped the version to
    /// 2, and future bumps surface here instead of being misparsed).
    UnsupportedVersion {
        /// The version found on disk.
        found: u32,
    },
    /// `CorpusWriter::create` refused to overwrite an existing corpus
    /// (sealed data is immutable; new data arrives as new generations).
    AlreadyExists(PathBuf),
    /// A sequence referenced an item id outside the corpus vocabulary.
    UnknownItem(u32),
    /// Rejected configuration (e.g. zero shards).
    InvalidOptions(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "I/O error: {e}"),
            StoreError::Decode(e) => write!(f, "decode error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt corpus: {msg}"),
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "unsupported corpus format version {found} (this build reads versions \
                 {MIN_FORMAT_VERSION}..={FORMAT_VERSION}); re-create the corpus or upgrade \
                 lash-store"
            ),
            StoreError::AlreadyExists(p) => {
                write!(
                    f,
                    "corpus already exists at {} (append with IncrementalWriter instead)",
                    p.display()
                )
            }
            StoreError::UnknownItem(id) => write!(f, "item id {id} not in corpus vocabulary"),
            StoreError::InvalidOptions(msg) => write!(f, "invalid store options: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        // The frame layer reports checksum mismatches as InvalidData and
        // truncation as UnexpectedEof; both are corpus corruption, not
        // environment trouble like a missing file or permission error.
        match e.kind() {
            std::io::ErrorKind::InvalidData => StoreError::Corrupt(e.to_string()),
            std::io::ErrorKind::UnexpectedEof => StoreError::Corrupt(format!("truncated: {e}")),
            _ => StoreError::Io(e),
        }
    }
}

impl From<DecodeError> for StoreError {
    fn from(e: DecodeError) -> Self {
        StoreError::Decode(e)
    }
}

/// Tuning knobs of a corpus being written.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// How sequences are routed to shards.
    pub partitioning: Partitioning,
    /// Target uncompressed payload bytes per block
    /// ([`lash_encoding::frame::DEFAULT_BLOCK_BYTES`] by default). Blocks
    /// close at the first sequence boundary at or past this budget.
    pub block_budget: usize,
    /// Write per-block G1 item-frequency sketches. Costs header space and
    /// write-side hierarchy walks; buys header-only f-list computation.
    pub sketches: bool,
    /// Block payload codec (and with it the written format version).
    /// Defaults to [`PayloadCodec::GroupVarintRank`] (format v4); the
    /// [`FORCE_CODEC_ENV`] environment variable overrides this everywhere —
    /// CI uses it to run every suite under each codec.
    pub codec: PayloadCodec,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            partitioning: Partitioning::hash(4),
            block_budget: lash_encoding::frame::DEFAULT_BLOCK_BYTES,
            sketches: true,
            codec: PayloadCodec::default(),
        }
    }
}

impl StoreOptions {
    /// Sets the partitioning.
    pub fn with_partitioning(mut self, p: Partitioning) -> Self {
        self.partitioning = p;
        self
    }

    /// Sets the per-block payload budget (clamped to ≥ 1).
    pub fn with_block_budget(mut self, bytes: usize) -> Self {
        self.block_budget = bytes.max(1);
        self
    }

    /// Enables or disables G1 sketches.
    pub fn with_sketches(mut self, on: bool) -> Self {
        self.sketches = on;
        self
    }

    /// Sets the block payload codec (unless [`FORCE_CODEC_ENV`] overrides
    /// it). [`PayloadCodec::Varint`] writes byte-identical format-v2
    /// corpora, for compatibility tests and old readers. The pin covers
    /// this writer only: later appends default to the current codec and
    /// would bump the corpus's format — use
    /// [`IncrementalWriter::open_with_codec`] to continue a pinned corpus,
    /// and note that compaction always re-encodes with the current codec.
    pub fn with_codec(mut self, codec: PayloadCodec) -> Self {
        self.codec = codec;
        self
    }
}
