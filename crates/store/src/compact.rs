//! The compaction engine: merges adjacent segment generations into one,
//! bounding the per-shard segment-file count that incremental ingest
//! ([`crate::IncrementalWriter`]) grows without bound.
//!
//! Compaction is **size-tiered**: the planner picks the cheapest window of
//! adjacent generations (adjacency preserves the ascending-sequence-id
//! invariant every shard scan relies on) and the executor stream-merges
//! their blocks — shard by shard, one block resident at a time — into one
//! new sealed generation, re-blocking at a fresh payload budget and
//! recomputing G1 sketches. The result is committed with the same
//! manifest-swap protocol as ingest (see [`crate::generations`]); the
//! replaced generations' files are deleted only **after** the swap, so a
//! crash at any point leaves either the old corpus or the new one, never a
//! mix.
//!
//! Compaction rewrites bytes but never changes content: sequence ids and
//! items pass through verbatim, and the executor cross-checks the merged
//! sequence/item counts against the replaced generations before the swap —
//! a merge that would drop or duplicate a sequence aborts with
//! [`StoreError::Corrupt`] and the corpus stays on the old manifest.
//!
//! Because merged generations are re-encoded with the current payload codec
//! (rank-encoded group varint / format v4 unless [`crate::FORCE_CODEC_ENV`]
//! says otherwise), compaction doubles as an **in-place format migration**:
//! compacting a format-v2 or v3 corpus down to one generation leaves only
//! v4 segments behind, with identical contents. Migrating to v4 fixes the
//! corpus's rank order: it is resolved once (from the manifest if already
//! sealed, else from the corpus's f-list) and recorded in the swapped
//! manifest so later ingest and mining reuse it.

use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::format::{self, GenerationMeta, Manifest};
use crate::generations::{read_manifest, write_manifest};
use crate::reader::ShardScan;
use crate::writer::SegmentSetWriter;
use crate::{pins, Result, StoreError};

/// Compaction policy knobs.
#[derive(Debug, Clone)]
pub struct CompactionConfig {
    /// The planner triggers only while the corpus holds **more** than this
    /// many generations; compaction then reduces the count back to (at
    /// most) it. Clamped to ≥ 1 — a corpus always keeps one generation.
    pub max_generations: usize,
    /// Maximum generations merged per round. Bounds the number of segment
    /// files a compaction round holds open per shard (one — segments are
    /// chained, not merged head-to-head — but also bounds the round's I/O
    /// and the temp space of the merged output). Clamped to ≥ 2.
    pub fan_in: usize,
    /// Target uncompressed payload bytes per re-written block (compaction
    /// re-blocks; the original write-time budget is not persisted).
    pub block_budget: usize,
    /// Worker threads the round's per-shard merges fan out over; `0` (the
    /// default) uses one per available core, capped at the shard count.
    /// Shards never share an output file, so the merged bytes are
    /// identical at any parallelism.
    pub merge_parallelism: usize,
    /// Byte-budget throttle for a merge round: at most this many
    /// (uncompressed, item-space) bytes are streamed through the merge per
    /// second, shared across all merge workers. `None` (the default) runs
    /// unthrottled. A daemon compacting beside serving traffic sets this so
    /// the round's I/O and decode work cannot starve query threads.
    pub merge_bytes_per_sec: Option<u64>,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            max_generations: 4,
            fan_in: 8,
            block_budget: lash_encoding::frame::DEFAULT_BLOCK_BYTES,
            merge_parallelism: 0,
            merge_bytes_per_sec: None,
        }
    }
}

impl CompactionConfig {
    /// Sets the generation-count trigger (clamped to ≥ 1).
    pub fn with_max_generations(mut self, n: usize) -> Self {
        self.max_generations = n.max(1);
        self
    }

    /// Sets the per-round merge width (clamped to ≥ 2).
    pub fn with_fan_in(mut self, n: usize) -> Self {
        self.fan_in = n.max(2);
        self
    }

    /// Sets the re-blocking payload budget (clamped to ≥ 1).
    pub fn with_block_budget(mut self, bytes: usize) -> Self {
        self.block_budget = bytes.max(1);
        self
    }

    /// Sets the merge worker-thread count (`0` = one per available core).
    pub fn with_merge_parallelism(mut self, n: usize) -> Self {
        self.merge_parallelism = n;
        self
    }

    /// Sets (or clears) the merge byte-rate budget in bytes per second
    /// (clamped to ≥ 1 byte/s when set).
    pub fn with_merge_rate_limit(mut self, bytes_per_sec: Option<u64>) -> Self {
        self.merge_bytes_per_sec = bytes_per_sec.map(|b| b.max(1));
        self
    }

    /// The effective merge worker count for `num_shards` shards.
    fn effective_parallelism(&self, num_shards: usize) -> usize {
        let auto = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.merge_parallelism == 0 {
            auto
        } else {
            self.merge_parallelism
        };
        requested.clamp(1, num_shards.max(1))
    }
}

/// A token-bucket byte throttle shared by a round's merge workers: each
/// worker reports the (uncompressed) bytes it just streamed and sleeps
/// until the round's cumulative rate falls back under the budget. Waits
/// are capped per call so a burst spreads over several short sleeps and
/// the round stays responsive to errors on other workers.
struct MergeThrottle {
    bytes_per_sec: Option<u64>,
    state: Mutex<ThrottleState>,
    waited_us: AtomicU64,
}

struct ThrottleState {
    started: Instant,
    consumed: u64,
}

impl MergeThrottle {
    fn new(bytes_per_sec: Option<u64>) -> Self {
        MergeThrottle {
            bytes_per_sec,
            state: Mutex::new(ThrottleState {
                started: Instant::now(),
                consumed: 0,
            }),
            waited_us: AtomicU64::new(0),
        }
    }

    /// Records `bytes` of merge progress, sleeping when the round is ahead
    /// of its budget.
    fn consume(&self, bytes: u64) {
        let Some(rate) = self.bytes_per_sec else {
            return;
        };
        let wait = {
            let mut state = self.state.lock().expect("throttle lock");
            state.consumed += bytes;
            let budgeted = state.consumed as f64 / rate as f64;
            let elapsed = state.started.elapsed().as_secs_f64();
            Duration::try_from_secs_f64((budgeted - elapsed).max(0.0)).unwrap_or(Duration::ZERO)
        };
        if !wait.is_zero() {
            let capped = wait.min(Duration::from_millis(250));
            self.waited_us
                .fetch_add(capped.as_micros() as u64, Ordering::Relaxed);
            std::thread::sleep(capped);
        }
    }

    /// Total time workers spent sleeping on the budget.
    fn waited(&self) -> Duration {
        Duration::from_micros(self.waited_us.load(Ordering::Relaxed))
    }
}

/// One planned compaction round: a window of adjacent generations to merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompactionPlan {
    /// Index of the window's first generation in the manifest's list.
    pub start: usize,
    /// Number of generations in the window (≥ 2).
    pub len: usize,
    /// The ids of the generations to merge, in list order — revalidated
    /// against the live manifest before execution, so a stale plan fails
    /// cleanly instead of merging the wrong files.
    pub generation_ids: Vec<u32>,
}

/// What one [`compact`]/[`compact_once`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompactionStats {
    /// Merge rounds executed.
    pub rounds: u32,
    /// Generations before the first round.
    pub generations_before: usize,
    /// Generations after the last round.
    pub generations_after: usize,
    /// Generations consumed by merges (a generation produced by one round
    /// and consumed by a later round counts again).
    pub generations_merged: usize,
    /// Sequences streamed through the merge.
    pub sequences_rewritten: u64,
    /// Compressed payload bytes read from the replaced generations.
    pub payload_bytes_in: u64,
    /// Compressed payload bytes written to the merged generations.
    pub payload_bytes_out: u64,
    /// Blocks read from the replaced generations.
    pub blocks_in: u64,
    /// Blocks written to the merged generations.
    pub blocks_out: u64,
    /// Wall-clock time spent merging.
    pub elapsed: Duration,
    /// Cumulative time merge workers slept on the byte-rate budget
    /// ([`CompactionConfig::merge_bytes_per_sec`]); zero when unthrottled.
    pub throttle_wait: Duration,
}

impl CompactionStats {
    fn accumulate(&mut self, other: &CompactionStats) {
        self.rounds += other.rounds;
        self.generations_after = other.generations_after;
        self.generations_merged += other.generations_merged;
        self.sequences_rewritten += other.sequences_rewritten;
        self.payload_bytes_in += other.payload_bytes_in;
        self.payload_bytes_out += other.payload_bytes_out;
        self.blocks_in += other.blocks_in;
        self.blocks_out += other.blocks_out;
        self.elapsed += other.elapsed;
        self.throttle_wait += other.throttle_wait;
    }

    /// Publishes one round's additive totals to the process-wide registry
    /// under `store.compact.*`. The round's wall time is covered by the
    /// `store.compact.round` span that [`execute`] holds open, so only the
    /// counters live here.
    fn publish(&self) {
        let obs = lash_obs::global();
        obs.counter("store.compact.rounds").add(self.rounds as u64);
        obs.counter("store.compact.sequences_rewritten")
            .add(self.sequences_rewritten);
        obs.counter("store.compact.payload_bytes_in")
            .add(self.payload_bytes_in);
        obs.counter("store.compact.payload_bytes_out")
            .add(self.payload_bytes_out);
        obs.counter("store.compact.blocks_in").add(self.blocks_in);
        obs.counter("store.compact.blocks_out").add(self.blocks_out);
        obs.counter("store.compact.throttle_wait_us")
            .add(self.throttle_wait.as_micros() as u64);
    }
}

/// Plans one compaction round, or `None` when the corpus is within its
/// generation budget.
///
/// Size-tiered selection: among all adjacent windows of the width needed to
/// get back under `max_generations` (capped at `fan_in`), pick the one with
/// the smallest total payload — merging the small generations first keeps
/// write amplification low, the same intuition as LSM size-tiering.
pub fn plan(manifest: &Manifest, config: &CompactionConfig) -> Option<CompactionPlan> {
    let n = manifest.generations.len();
    let max = config.max_generations.max(1);
    if n <= max {
        return None;
    }
    // Width that reaches the budget in one round, bounded by the fan-in.
    let width = (n - max + 1).clamp(2, config.fan_in.max(2).min(n));
    let sizes: Vec<u64> = manifest
        .generations
        .iter()
        .map(|g| g.payload_bytes())
        .collect();
    let mut best_start = 0;
    let mut best_size = u64::MAX;
    for start in 0..=(n - width) {
        let size: u64 = sizes[start..start + width].iter().sum();
        if size < best_size {
            best_size = size;
            best_start = start;
        }
    }
    Some(CompactionPlan {
        start: best_start,
        len: width,
        generation_ids: manifest.generations[best_start..best_start + width]
            .iter()
            .map(|g| g.id)
            .collect(),
    })
}

/// Runs at most one compaction round on the corpus at `dir`. Returns
/// `None` when the planner found nothing to do.
pub fn compact_once(
    dir: impl AsRef<Path>,
    config: &CompactionConfig,
) -> Result<Option<CompactionStats>> {
    let dir = dir.as_ref();
    let (manifest, vocab) = read_manifest(dir)?;
    let Some(plan) = plan(&manifest, config) else {
        return Ok(None);
    };
    match execute(dir, &manifest, &vocab, &plan, config) {
        Ok(stats) => Ok(Some(stats)),
        Err(e) => {
            lash_obs::flight::record_error("store.compact", &e.to_string());
            Err(e)
        }
    }
}

/// Runs compaction rounds until the corpus holds at most
/// `config.max_generations` generations. Returns the accumulated stats, or
/// `None` when no round ran.
pub fn compact(
    dir: impl AsRef<Path>,
    config: &CompactionConfig,
) -> Result<Option<CompactionStats>> {
    let dir = dir.as_ref();
    let mut total: Option<CompactionStats> = None;
    while let Some(stats) = compact_once(dir, config)? {
        match &mut total {
            None => {
                total = Some(stats);
            }
            Some(t) => t.accumulate(&stats),
        }
    }
    Ok(total)
}

/// Executes one planned round: stream-merge, seal, swap, delete.
fn execute(
    dir: &Path,
    manifest: &Manifest,
    vocab: &lash_core::vocabulary::Vocabulary,
    plan: &CompactionPlan,
    config: &CompactionConfig,
) -> Result<CompactionStats> {
    let started = Instant::now();
    let n = manifest.generations.len();
    if plan.len < 2 || plan.start + plan.len > n {
        return Err(StoreError::InvalidOptions(
            "compaction plan window out of range",
        ));
    }
    let window = &manifest.generations[plan.start..plan.start + plan.len];
    if window.iter().map(|g| g.id).collect::<Vec<_>>() != plan.generation_ids {
        return Err(StoreError::Corrupt(
            "compaction plan is stale: generation ids moved under it".into(),
        ));
    }
    // One round = one span. Roots its own trace when compaction is the
    // top-level operation; nests when a caller already holds a span.
    let _round_span = lash_obs::span!(
        "store.compact.round",
        generations_merged = plan.len,
        generations_after = n - plan.len + 1,
    );

    // Re-encode with the current codec: merging v2/v3 generations produces
    // a v4 generation, so compaction migrates old corpora as it compacts.
    // The rank codec needs the corpus's item order, resolved *before* any
    // files are staged so a failure leaves nothing behind.
    let codec = format::resolve_codec(crate::PayloadCodec::default());
    let rank = if codec == crate::PayloadCodec::GroupVarintRank {
        Some(crate::generations::resolve_rank_order(
            dir, manifest, vocab,
        )?)
    } else {
        None
    };

    let new_id = manifest.next_gen_id;
    let tmp_dir = dir.join(format::generation_tmp_dir_name(new_id));
    if tmp_dir.exists() {
        fs::remove_dir_all(&tmp_dir)?;
    }
    let throttle = MergeThrottle::new(config.merge_bytes_per_sec);
    let merged = merge_window(
        dir,
        manifest,
        vocab,
        window,
        new_id,
        &tmp_dir,
        config,
        codec,
        rank.clone(),
        &throttle,
    );
    let merged = match merged {
        Ok(m) => m,
        Err(e) => {
            // The round failed before the swap: discard the staged files,
            // the corpus stays on the old manifest untouched.
            let _ = fs::remove_dir_all(&tmp_dir);
            return Err(e);
        }
    };

    // Rename into place; still unreferenced until the manifest swap.
    let gen_dir = dir.join(format::generation_dir_name(new_id));
    if gen_dir.exists() {
        fs::remove_dir_all(&gen_dir)?;
    }
    fs::rename(&tmp_dir, &gen_dir)?;

    let stats = CompactionStats {
        rounds: 1,
        generations_before: n,
        generations_after: n - plan.len + 1,
        generations_merged: plan.len,
        sequences_rewritten: merged.num_sequences,
        payload_bytes_in: window.iter().map(|g| g.payload_bytes()).sum(),
        payload_bytes_out: merged.payload_bytes(),
        blocks_in: window.iter().map(|g| g.blocks()).sum(),
        blocks_out: merged.blocks(),
        elapsed: started.elapsed(),
        throttle_wait: throttle.waited(),
    };

    // Swap the manifest: the merged generation takes the window's place, so
    // list order still equals sequence-id order. The version tracks the
    // newest segment format present — never downgraded, bumped when the
    // merge re-encoded old blocks with a newer codec.
    let mut new_manifest = manifest.clone();
    new_manifest.version = manifest.version.max(codec.format_version());
    if new_manifest.version >= 4 && new_manifest.rank_order.is_none() {
        // The migration to v4 seals the item order the merged blocks were
        // rank-encoded with.
        new_manifest.rank_order = rank.clone();
    }
    new_manifest
        .generations
        .splice(plan.start..plan.start + plan.len, [merged]);
    new_manifest.next_gen_id = new_id + 1;
    new_manifest.shards = Manifest::aggregate_shards(
        &new_manifest.generations,
        new_manifest.partitioning.num_shards() as usize,
    );
    write_manifest(dir, &new_manifest, vocab)?;

    // Only now — after the commit point — release the replaced generations.
    // A generation pinned by a live reader (a serving snapshot mid-query, a
    // miner mid-scan) is not deleted here: it is marked doomed and the last
    // reader to unpin it performs the delete, so snapshots stay
    // byte-readable across the swap. Unpinned generations are deleted
    // immediately, best effort — the compaction is already committed, so a
    // deletion hiccup must not be reported as a failure.
    for id in &plan.generation_ids {
        pins::release_or_defer(dir, *id);
    }
    stats.publish();
    Ok(stats)
}

/// Streams every sequence of `window` (generation order within each shard)
/// into a new segment set at `tmp_dir`, verifying no sequence was dropped
/// or duplicated. Shards are merged in parallel across
/// [`CompactionConfig::merge_parallelism`] workers — each shard owns its
/// output file, so the merged bytes are identical to a sequential merge —
/// and every worker reports decoded bytes to the shared `throttle`.
/// Returns the merged generation's metadata.
#[allow(clippy::too_many_arguments)]
fn merge_window(
    dir: &Path,
    manifest: &Manifest,
    vocab: &lash_core::vocabulary::Vocabulary,
    window: &[GenerationMeta],
    new_id: u32,
    tmp_dir: &Path,
    config: &CompactionConfig,
    codec: crate::PayloadCodec,
    rank: Option<std::sync::Arc<crate::format::RankOrder>>,
    throttle: &MergeThrottle,
) -> Result<GenerationMeta> {
    let num_shards = manifest.partitioning.num_shards();
    let mut segments = SegmentSetWriter::create(
        tmp_dir,
        num_shards,
        config.block_budget,
        manifest.sketches,
        codec,
        rank,
    )?;
    let parallelism = config.effective_parallelism(num_shards as usize);
    segments.par_shards(parallelism, |shard, out| {
        let paths = window
            .iter()
            .map(|g| {
                dir.join(format::generation_dir_name(g.id))
                    .join(format::shard_file_name(shard as u32))
            })
            .collect();
        // The merge reads and re-appends id-space items: `append` re-ranks
        // for a v4 target itself, so the scan stays in item space.
        let mut scan = ShardScan::open_chain(
            paths,
            shard as u32,
            vocab.len() as u32,
            None,
            manifest.rank_order.clone(),
            crate::reader::ScanSpace::Items,
        );
        while let Some(batch) = scan.next_batch()? {
            // Budget on the batch's decoded item footprint — a
            // codec-independent proxy for the round's read+decode work.
            throttle.consume((batch.arena().len() * 4) as u64);
            for (id, items) in batch.iter() {
                out.append(id, items, vocab)?;
            }
        }
        Ok(())
    })?;
    let expected_sequences: u64 = window.iter().map(|g| g.num_sequences).sum();
    let expected_items: u64 = window.iter().map(|g| g.total_items).sum();
    if segments.sequences() != expected_sequences || segments.total_items() != expected_items {
        return Err(StoreError::Corrupt(format!(
            "compaction would rewrite {} sequences / {} items, replaced generations hold {} / {}",
            segments.sequences(),
            segments.total_items(),
            expected_sequences,
            expected_items
        )));
    }
    let num_sequences = segments.sequences();
    let total_items = segments.total_items();
    let shards = segments.finish()?;
    Ok(GenerationMeta {
        id: new_id,
        num_sequences,
        total_items,
        shards,
    })
}
