//! A process-wide registry of **pinned generations**: the snapshot-safety
//! half of compaction-beside-serving.
//!
//! A [`crate::CorpusReader`] is pinned to the manifest it opened, but the
//! files that manifest names used to be deleted by compaction the moment
//! the swap committed — a long-lived reader (a serving snapshot, a mining
//! run mid-scan) would find its segment files gone and fail with an I/O
//! error. This module closes that gap: every reader registers the
//! generation ids of its snapshot here at open ([`pin`]) and releases them
//! on drop; compaction asks [`release_or_defer`] instead of deleting
//! outright. A generation with live pins is marked **doomed** and its
//! directory survives until the last pin drops, at which point the
//! releasing reader performs the deferred delete. Generation ids are never
//! reused, so a doomed id can never come back to life under a new manifest.
//!
//! The registry is keyed by the canonicalized corpus directory, so two
//! readers that spell the same path differently still share refcounts. It
//! covers readers **in this process** — the daemon's serving snapshots,
//! batch miners, and the mapped-segment caches they hold. Readers in other
//! processes are outside its reach (on POSIX systems their open file
//! descriptors and mmaps keep the data alive anyway; the directory entry
//! disappears).

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};

use crate::format;

/// Pin state of one generation of one corpus.
#[derive(Debug, Default)]
struct GenPins {
    /// Live [`PinGuard`]s referencing the generation.
    refs: usize,
    /// Compaction replaced the generation and deferred its delete to the
    /// last unpin.
    doomed: bool,
}

/// corpus dir (canonical) → generation id → pin state.
type Registry = Mutex<HashMap<PathBuf, HashMap<u32, GenPins>>>;

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The registry key for a corpus directory: canonicalized when possible so
/// path spelling does not split refcounts, the raw path otherwise (the
/// directory may race with deletion in tests).
fn key_for(dir: &Path) -> PathBuf {
    fs::canonicalize(dir).unwrap_or_else(|_| dir.to_path_buf())
}

/// Holds the pins of one reader's generation set; dropping it releases
/// them and performs any deletes compaction deferred onto this snapshot.
#[derive(Debug)]
pub(crate) struct PinGuard {
    key: PathBuf,
    /// The un-canonicalized directory, used to resolve delete paths (the
    /// canonical form may outlive a bind mount; the reader's own spelling
    /// is the one its scans use).
    dir: PathBuf,
    ids: Vec<u32>,
}

/// Pins `ids` (a reader's generation set) under `dir`. The guard releases
/// them on drop.
pub(crate) fn pin(dir: &Path, ids: impl IntoIterator<Item = u32>) -> PinGuard {
    let ids: Vec<u32> = ids.into_iter().collect();
    let key = key_for(dir);
    let mut reg = registry().lock().expect("pin registry lock");
    let dir_pins = reg.entry(key.clone()).or_default();
    for &id in &ids {
        dir_pins.entry(id).or_default().refs += 1;
    }
    PinGuard {
        key,
        dir: dir.to_path_buf(),
        ids,
    }
}

/// Called by compaction after the manifest swap for each replaced
/// generation: deletes its directory now when nothing pins it, otherwise
/// marks it doomed so the last [`PinGuard`] drop deletes it. Returns `true`
/// when the delete happened immediately.
pub(crate) fn release_or_defer(dir: &Path, id: u32) -> bool {
    let key = key_for(dir);
    {
        let mut reg = registry().lock().expect("pin registry lock");
        if let Some(dir_pins) = reg.get_mut(&key) {
            if let Some(pins) = dir_pins.get_mut(&id) {
                if pins.refs > 0 {
                    pins.doomed = true;
                    lash_obs::global()
                        .counter("store.compact.deletes_deferred")
                        .inc();
                    return false;
                }
                dir_pins.remove(&id);
            }
        }
    }
    // Best effort, same contract as before pinning existed: the swap
    // already committed, an orphaned unreferenced directory is harmless.
    let _ = fs::remove_dir_all(dir.join(format::generation_dir_name(id)));
    true
}

/// The number of live pins on `(dir, id)` — test observability only.
#[cfg(test)]
fn live_pins(dir: &Path, id: u32) -> usize {
    let reg = registry().lock().expect("pin registry lock");
    reg.get(&key_for(dir))
        .and_then(|d| d.get(&id))
        .map_or(0, |p| p.refs)
}

impl Drop for PinGuard {
    fn drop(&mut self) {
        let mut deferred: Vec<u32> = Vec::new();
        {
            let mut reg = registry().lock().expect("pin registry lock");
            if let Some(dir_pins) = reg.get_mut(&self.key) {
                for &id in &self.ids {
                    if let Some(pins) = dir_pins.get_mut(&id) {
                        pins.refs = pins.refs.saturating_sub(1);
                        if pins.refs == 0 {
                            if pins.doomed {
                                deferred.push(id);
                            }
                            dir_pins.remove(&id);
                        }
                    }
                }
                if dir_pins.is_empty() {
                    reg.remove(&self.key);
                }
            }
        }
        // Deferred deletes run outside the registry lock: filesystem work
        // must not serialize every other open/compact in the process.
        if !deferred.is_empty() {
            let obs = lash_obs::global();
            for id in deferred {
                let _ = fs::remove_dir_all(self.dir.join(format::generation_dir_name(id)));
                obs.counter("store.compact.deferred_deletes_done").inc();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unique per-test directories: the registry is process-global and the
    /// test harness runs tests concurrently.
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lash-pins-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn fake_generation(dir: &Path, id: u32) -> PathBuf {
        let gen_dir = dir.join(format::generation_dir_name(id));
        fs::create_dir_all(&gen_dir).unwrap();
        fs::write(gen_dir.join("shard-00000.seg"), b"payload").unwrap();
        gen_dir
    }

    #[test]
    fn unpinned_generation_deletes_immediately() {
        let dir = scratch("unpinned");
        let gen_dir = fake_generation(&dir, 0);
        assert!(release_or_defer(&dir, 0));
        assert!(!gen_dir.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pinned_generation_survives_until_last_guard_drops() {
        let dir = scratch("pinned");
        let gen_dir = fake_generation(&dir, 3);
        let first = pin(&dir, [3]);
        let second = pin(&dir, [3]);
        assert_eq!(live_pins(&dir, 3), 2);

        assert!(!release_or_defer(&dir, 3), "live pins must defer");
        assert!(gen_dir.exists());

        drop(first);
        assert!(gen_dir.exists(), "one pin still live");
        drop(second);
        assert!(!gen_dir.exists(), "last unpin performs the delete");
        assert_eq!(live_pins(&dir, 3), 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn undoomed_pins_release_without_deleting() {
        let dir = scratch("undoomed");
        let gen_dir = fake_generation(&dir, 7);
        drop(pin(&dir, [7]));
        assert!(gen_dir.exists(), "a plain unpin never deletes");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn path_spellings_share_refcounts() {
        let dir = scratch("spelling");
        let gen_dir = fake_generation(&dir, 1);
        // The same directory through a `.` component.
        let alias = dir.join(".");
        let guard = pin(&alias, [1]);
        assert!(!release_or_defer(&dir, 1));
        drop(guard);
        assert!(!gen_dir.exists());
        fs::remove_dir_all(&dir).unwrap();
    }
}
