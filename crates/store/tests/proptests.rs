//! Property tests for the on-disk corpus: arbitrary sequence databases
//! round-trip through `CorpusWriter` → `CorpusReader` bit-exactly, across
//! partitionings, shard counts, and block budgets; header sketches always
//! reproduce the exact generalized f-list; and writing is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::flist::FList;
use lash_core::{ItemId, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_store::{CorpusReader, Partitioning, PayloadCodec, StoreOptions};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("lash-store-prop-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A random forest vocabulary over up to `max_items` items.
fn arb_vocabulary(max_items: usize) -> impl Strategy<Value = Vocabulary> {
    prop::collection::vec(prop::option::weighted(0.5, 0..100usize), 1..max_items).prop_map(
        |parents| {
            let mut vb = VocabularyBuilder::new();
            let items: Vec<_> = (0..parents.len())
                .map(|i| vb.intern(&format!("item-{i}")))
                .collect();
            for (i, parent) in parents.iter().enumerate() {
                if i > 0 {
                    if let Some(p) = parent {
                        vb.set_parent(items[i], items[p % i])
                            .expect("parent precedes child");
                    }
                }
            }
            vb.finish().expect("forest by construction")
        },
    )
}

/// Raw sequences as item indices (wrapped into the vocabulary at use site).
fn arb_raw_db() -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(0u32..64, 0..12), 0..40)
}

fn build_db(vocab: &Vocabulary, raw: &[Vec<u32>]) -> SequenceDatabase {
    let n = vocab.len() as u32;
    let mut db = SequenceDatabase::new();
    for seq in raw {
        let items: Vec<ItemId> = seq.iter().map(|&i| ItemId::from_u32(i % n)).collect();
        db.push(&items);
    }
    db
}

fn arb_options() -> impl Strategy<Value = StoreOptions> {
    (
        prop_oneof![
            2 => (1u32..6).prop_map(Partitioning::hash),
            1 => ((1u32..5), (1u64..8)).prop_map(|(s, n)| Partitioning::range(s, n)),
        ],
        // Budgets from "every sequence its own block" to "one block per shard".
        prop_oneof![1 => Just(1usize), 2 => 8usize..512, 1 => Just(1 << 20)],
        any::<bool>(),
        // Every invariant must hold in both block formats (the env override
        // `LASH_FORCE_CODEC` may collapse this choice in the CI legs).
        prop_oneof![Just(PayloadCodec::Varint), Just(PayloadCodec::GroupVarint),],
    )
        .prop_map(|(partitioning, budget, sketches, codec)| {
            StoreOptions::default()
                .with_partitioning(partitioning)
                .with_block_budget(budget)
                .with_sketches(sketches)
                .with_codec(codec)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline invariant: whatever the partitioning, shard count, or
    /// block budget, a database round-trips bit-exactly — same sequences,
    /// same order, same vocabulary and hierarchy.
    #[test]
    fn databases_round_trip_bit_exactly(
        vocab in arb_vocabulary(40),
        raw in arb_raw_db(),
        opts in arb_options(),
    ) {
        let db = build_db(&vocab, &raw);
        let dir = temp_dir("roundtrip");
        let manifest =
            lash_store::convert::write_database(&dir, &vocab, &db, opts.clone()).unwrap();
        prop_assert_eq!(manifest.num_sequences, db.len() as u64);
        prop_assert_eq!(manifest.total_items, db.total_items() as u64);

        let reader = CorpusReader::open(&dir).unwrap();
        prop_assert_eq!(reader.len(), db.len() as u64);
        prop_assert_eq!(reader.vocabulary().len(), vocab.len());
        for item in vocab.items() {
            prop_assert_eq!(reader.vocabulary().name(item), vocab.name(item));
            prop_assert_eq!(reader.vocabulary().parent(item), vocab.parent(item));
        }
        let back = reader.to_database().unwrap();
        prop_assert_eq!(back.len(), db.len());
        for i in 0..db.len() {
            prop_assert_eq!(back.get(i), db.get(i), "sequence {}", i);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Scanning yields every sequence id exactly once, and ids within a
    /// shard arrive strictly ascending (the delta encoding's invariant).
    #[test]
    fn scans_cover_every_id_exactly_once(
        vocab in arb_vocabulary(24),
        raw in arb_raw_db(),
        opts in arb_options(),
    ) {
        let db = build_db(&vocab, &raw);
        let dir = temp_dir("scan");
        lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
        let reader = CorpusReader::open(&dir).unwrap();
        let mut seen = vec![false; db.len()];
        for shard in 0..reader.num_shards() {
            let mut prev: Option<u64> = None;
            for record in reader.scan_shard(shard).unwrap() {
                let (id, items) = record.unwrap();
                prop_assert!(prev.is_none_or(|p| id > p), "ids not ascending in shard {}", shard);
                prev = Some(id);
                prop_assert!(!seen[id as usize], "duplicate id {}", id);
                seen[id as usize] = true;
                prop_assert_eq!(&items[..], db.get(id as usize));
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "missing ids");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// With sketches on, the f-list assembled from block headers alone is
    /// exactly the sequentially computed generalized f-list.
    #[test]
    fn header_flist_is_exact(
        vocab in arb_vocabulary(24),
        raw in arb_raw_db(),
        shards in 1u32..5,
        budget in 1usize..256,
    ) {
        let db = build_db(&vocab, &raw);
        let dir = temp_dir("flist");
        let opts = StoreOptions::default()
            .with_partitioning(Partitioning::hash(shards))
            .with_block_budget(budget)
            .with_sketches(true);
        lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
        let reader = CorpusReader::open(&dir).unwrap();
        let from_headers = reader.flist().unwrap().expect("sketches were written");
        let sequential = FList::compute(&db, &vocab);
        for item in vocab.items() {
            prop_assert_eq!(
                from_headers.frequency(item),
                sequential.frequency(item),
                "item {}",
                vocab.name(item)
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Writing the same database twice produces byte-identical files —
    /// the format has no hidden nondeterminism (hash iteration, clocks).
    #[test]
    fn writing_is_deterministic(
        vocab in arb_vocabulary(16),
        raw in arb_raw_db(),
        opts in arb_options(),
    ) {
        let db = build_db(&vocab, &raw);
        let dir_a = temp_dir("det-a");
        let dir_b = temp_dir("det-b");
        lash_store::convert::write_database(&dir_a, &vocab, &db, opts.clone()).unwrap();
        lash_store::convert::write_database(&dir_b, &vocab, &db, opts).unwrap();
        // Walk the corpus recursively: generations live in subdirectories.
        fn files_under(root: &std::path::Path) -> Vec<std::path::PathBuf> {
            let mut out = Vec::new();
            let mut stack = vec![root.to_path_buf()];
            while let Some(dir) = stack.pop() {
                for entry in std::fs::read_dir(&dir).unwrap() {
                    let path = entry.unwrap().path();
                    if path.is_dir() {
                        stack.push(path);
                    } else {
                        out.push(path.strip_prefix(root).unwrap().to_path_buf());
                    }
                }
            }
            out.sort();
            out
        }
        let names = files_under(&dir_a);
        prop_assert_eq!(&names, &files_under(&dir_b), "file sets differ");
        for name in names {
            let a = std::fs::read(dir_a.join(&name)).unwrap();
            let b = std::fs::read(dir_b.join(&name)).unwrap();
            prop_assert_eq!(a, b, "file {:?} differs", name);
        }
        std::fs::remove_dir_all(&dir_a).unwrap();
        std::fs::remove_dir_all(&dir_b).unwrap();
    }
}
