//! Acceptance tests for the generations subsystem: a corpus built as K
//! incremental generations is indistinguishable — bit-exact sequences,
//! identical f-lists, identical mined pattern sets — from a
//! single-generation corpus of the same data, both before and after
//! compaction; compaction verifiably reduces the per-shard segment-file
//! count and never drops or duplicates a sequence id.

use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::flist::FList;
use lash_core::{GsmParams, ItemId, Lash, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_datagen::{TextConfig, TextCorpus, TextHierarchy};
use lash_store::compact::{self, CompactionConfig};
use lash_store::{
    CorpusReader, CorpusWriter, IncrementalWriter, Partitioning, StoreError, StoreOptions,
};
use proptest::prelude::*;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lash-store-gen-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// True when `LASH_COMPACT_EVERY` auto-compacts after every seal (the CI
/// compaction leg): generation-*count* assertions are skipped then — the
/// content assertions, which are the point, always run.
fn env_compacts() -> bool {
    std::env::var_os(lash_store::COMPACT_EVERY_ENV).is_some_and(|v| !v.is_empty())
}

fn small_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let b = vb.intern("B");
    let b1 = vb.child("b1", b);
    let b2 = vb.child("b2", b);
    let a = vb.intern("a");
    let c = vb.intern("c");
    (vb.finish().unwrap(), vec![a, b, b1, b2, c])
}

fn sample_db(items: &[ItemId], n: usize) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for i in 0..n {
        let len = i % 5;
        let seq: Vec<ItemId> = (0..len).map(|j| items[(i + j) % items.len()]).collect();
        db.push(&seq);
    }
    db
}

/// Writes `db` as `k` generations: the first batch through `CorpusWriter`,
/// the rest through one `IncrementalWriter` each.
fn write_in_generations(
    dir: &std::path::Path,
    vocab: &Vocabulary,
    db: &SequenceDatabase,
    opts: StoreOptions,
    k: usize,
) {
    let k = k.max(1);
    let per = db.len().div_ceil(k).max(1);
    let mut writer = CorpusWriter::create(dir, vocab, opts).unwrap();
    for i in 0..per.min(db.len()) {
        writer.append(db.get(i)).unwrap();
    }
    writer.finish().unwrap();
    let mut next = per;
    while next < db.len() {
        let mut incr = IncrementalWriter::open(dir).unwrap();
        for i in next..(next + per).min(db.len()) {
            incr.append(db.get(i)).unwrap();
        }
        incr.finish().unwrap();
        next += per;
    }
}

/// Every sequence of the corpus, read back in id order.
fn read_back(reader: &CorpusReader) -> SequenceDatabase {
    reader.to_database().unwrap()
}

/// Segment files actually on disk for `shard`, by walking the corpus dir.
fn segment_files_of_shard(dir: &std::path::Path, shard: u32) -> usize {
    let name = lash_store::format::shard_file_name(shard);
    let mut count = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() && path.join(&name).exists() {
            count += 1;
        }
    }
    count
}

/// Names + frequencies: the partitioning/storage-independent view of a
/// mined result.
fn named_patterns(
    result: &lash_core::distributed::lash_job::LashResult,
    vocab: &Vocabulary,
) -> Vec<(Vec<String>, u64)> {
    let mut v: Vec<(Vec<String>, u64)> = result
        .patterns()
        .iter()
        .map(|p| (p.to_names(vocab), p.frequency))
        .collect();
    v.sort();
    v
}

#[test]
fn incremental_ids_continue_and_readers_are_snapshots() {
    let (vocab, items) = small_vocab();
    let dir = temp_dir("snapshot");
    let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    assert_eq!(writer.append(&[items[0]]).unwrap(), 0);
    assert_eq!(writer.append(&[items[1]]).unwrap(), 1);
    writer.finish().unwrap();

    // A reader opened now is pinned to the 2-sequence snapshot…
    let pinned = CorpusReader::open(&dir).unwrap();
    assert_eq!(pinned.len(), 2);

    let mut incr = IncrementalWriter::open(&dir).unwrap();
    assert_eq!(incr.append(&[items[2]]).unwrap(), 2); // ids continue
    assert_eq!(incr.appended(), 1);
    incr.finish().unwrap();

    // …even after the seal: only a re-open observes the new generation.
    assert_eq!(pinned.len(), 2);
    if !env_compacts() {
        // (Under forced auto-compaction the seal also compacted, which
        // deletes the files this pre-seal snapshot points at — the
        // documented limit of snapshot readers.)
        assert_eq!(read_back(&pinned).len(), 2);
    }
    let fresh = CorpusReader::open(&dir).unwrap();
    assert_eq!(fresh.len(), 3);
    if !env_compacts() {
        assert_eq!(fresh.num_generations(), 2);
    }
    let back = read_back(&fresh);
    assert_eq!(back.get(2), &[items[2]]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_or_dropped_incremental_writers_leave_no_trace() {
    let (vocab, items) = small_vocab();
    let dir = temp_dir("no-trace");
    let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    writer.append(&[items[0]]).unwrap();
    let manifest = writer.finish().unwrap();

    // Nothing appended: finish is a no-op, no empty generation is sealed.
    let incr = IncrementalWriter::open(&dir).unwrap();
    let after = incr.finish().unwrap();
    assert_eq!(after, manifest);

    // Appended but dropped: the staged temp directory is discarded.
    {
        let mut incr = IncrementalWriter::open(&dir).unwrap();
        incr.append(&[items[1]]).unwrap();
        // no finish()
    }
    let entries: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with('.'))
        .collect();
    assert!(entries.is_empty(), "staged leftovers: {entries:?}");
    assert_eq!(CorpusReader::open(&dir).unwrap().len(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn incremental_writer_validates_against_the_stored_vocabulary() {
    let (vocab, items) = small_vocab();
    let dir = temp_dir("vocab-check");
    let mut writer = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    writer.append(&[items[0]]).unwrap();
    writer.finish().unwrap();
    let mut incr = IncrementalWriter::open(&dir).unwrap();
    match incr.append(&[ItemId::from_u32(999)]) {
        Err(StoreError::UnknownItem(999)) => {}
        other => panic!("expected UnknownItem, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn future_manifest_versions_are_rejected_as_unsupported() {
    use lash_encoding::{frame, varint};
    let dir = temp_dir("future-version");
    std::fs::create_dir_all(&dir).unwrap();
    // A well-framed manifest whose header claims format version 99 and then
    // carries bytes this build cannot know how to parse.
    let mut payload = Vec::new();
    payload.extend_from_slice(lash_store::format::MANIFEST_MAGIC);
    varint::encode_u32(99, &mut payload);
    payload.extend_from_slice(b"fields of a future format");
    let mut file = std::fs::File::create(dir.join(lash_store::format::MANIFEST_FILE)).unwrap();
    frame::write_frame(&payload, &mut file).unwrap();
    let err = match CorpusReader::open(&dir) {
        Err(e) => e,
        Ok(_) => panic!("expected UnsupportedVersion {{ found: 99 }}, got a reader"),
    };
    assert!(
        matches!(err, StoreError::UnsupportedVersion { found: 99 }),
        "expected UnsupportedVersion {{ found: 99 }}, got {err:?}"
    );
    // The error names both versions, so the operator knows what to do.
    let msg = err.to_string();
    assert!(msg.contains("99") && msg.contains(&lash_store::FORMAT_VERSION.to_string()));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_reduces_segment_files_and_preserves_every_id() {
    if env_compacts() {
        // Auto-compaction already collapsed the generations at seal time;
        // the staged-growth scenario below cannot be constructed.
        return;
    }
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 300);
    let dir = temp_dir("compact");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(3))
        .with_block_budget(64);
    let k = 6;
    write_in_generations(&dir, &vocab, &db, opts, k);

    let before = CorpusReader::open(&dir).unwrap();
    assert_eq!(before.num_generations(), k);
    for shard in 0..3 {
        assert_eq!(segment_files_of_shard(&dir, shard), k);
    }
    let flist_before = before.flist().unwrap().unwrap();
    // Release the reader's generation pins: a live reader would defer the
    // replaced directories' deletion and the file-count assertions below
    // would see both the old and the merged segments.
    drop(before);

    let config = CompactionConfig::default()
        .with_max_generations(2)
        .with_fan_in(3)
        .with_block_budget(64);
    let stats = compact::compact(&dir, &config).unwrap().expect("ran");
    assert!(stats.rounds >= 1);
    assert_eq!(stats.generations_before, k);
    assert_eq!(stats.generations_after, 2);
    assert!(stats.sequences_rewritten > 0);
    assert!(stats.blocks_in > 0 && stats.blocks_out > 0);

    let after = CorpusReader::open(&dir).unwrap();
    assert_eq!(after.num_generations(), 2);
    for shard in 0..3 {
        // The per-shard segment-file count shrank with the generation count.
        assert_eq!(segment_files_of_shard(&dir, shard), 2);
    }
    // Every sequence id still present exactly once, bit-exact.
    let back = read_back(&after);
    assert_eq!(back.len(), db.len());
    for i in 0..db.len() {
        assert_eq!(back.get(i), db.get(i), "sequence {i}");
    }
    // The header-only f-list is unchanged: per-generation sketches merged.
    let flist_after = after.flist().unwrap().unwrap();
    for item in vocab.items() {
        assert_eq!(flist_before.frequency(item), flist_after.frequency(item));
    }
    // A second compact under the same budget is a no-op.
    assert!(compact::compact(&dir, &config).unwrap().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compaction_handles_sketchless_and_empty_shard_corpora() {
    if env_compacts() {
        return;
    }
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 40);
    let dir = temp_dir("compact-nosketch");
    // Range partitioning leaves the tail shards empty; sketches off.
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::range(4, 1_000))
        .with_block_budget(32)
        .with_sketches(false);
    write_in_generations(&dir, &vocab, &db, opts, 4);
    let config = CompactionConfig::default().with_max_generations(1);
    let stats = compact::compact(&dir, &config).unwrap().expect("ran");
    assert_eq!(stats.generations_after, 1);
    let after = CorpusReader::open(&dir).unwrap();
    assert!(!after.manifest().sketches);
    let back = read_back(&after);
    for i in 0..db.len() {
        assert_eq!(back.get(i), db.get(i));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mining_is_identical_across_generation_splits_and_compaction() {
    // The headline acceptance: mine a corpus built as one generation, as K
    // generations, and as K generations compacted back down — all three
    // pattern sets must be identical.
    let (vocab, db) = TextCorpus::generate(&TextConfig {
        sentences: 300,
        lemmas: 120,
        pos_tags: 8,
        avg_sentence_len: 8.0,
        zipf_exponent: 1.0,
        seed: 7,
    })
    .dataset(TextHierarchy::LP);
    let params = GsmParams::new(6, 1, 3).unwrap();
    let opts = || StoreOptions::default().with_partitioning(Partitioning::hash(4));

    let single_dir = temp_dir("mine-single");
    write_in_generations(&single_dir, &vocab, &db, opts(), 1);
    let single = CorpusReader::open(&single_dir).unwrap();
    let reference = named_patterns(
        &single.mine(&Lash::default(), &params).unwrap(),
        single.vocabulary(),
    );
    assert!(!reference.is_empty());

    let split_dir = temp_dir("mine-split");
    write_in_generations(&split_dir, &vocab, &db, opts(), 5);
    let split = CorpusReader::open(&split_dir).unwrap();
    assert_eq!(split.len(), db.len() as u64);
    let split_mined = named_patterns(
        &split.mine(&Lash::default(), &params).unwrap(),
        split.vocabulary(),
    );
    assert_eq!(
        split_mined, reference,
        "K-generation corpus mined differently"
    );

    // Header-only f-lists agree too (sketches merge across generations).
    let f_single = single.flist().unwrap().unwrap();
    let f_split = split.flist().unwrap().unwrap();
    let f_memory = FList::compute(&db, &vocab);
    for item in vocab.items() {
        assert_eq!(f_split.frequency(item), f_single.frequency(item));
        assert_eq!(f_split.frequency(item), f_memory.frequency(item));
    }

    // Compact fully and mine again.
    compact::compact(
        &split_dir,
        &CompactionConfig::default().with_max_generations(1),
    )
    .unwrap();
    let compacted = CorpusReader::open(&split_dir).unwrap();
    assert_eq!(compacted.num_generations(), 1);
    let compacted_mined = named_patterns(
        &compacted.mine(&Lash::default(), &params).unwrap(),
        compacted.vocabulary(),
    );
    assert_eq!(compacted_mined, reference, "compaction changed the result");

    std::fs::remove_dir_all(&single_dir).unwrap();
    std::fs::remove_dir_all(&split_dir).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The generations invariant, property-tested: for arbitrary data,
    /// partitioning, block budgets, and split counts, a K-generation corpus
    /// reads back bit-identically to a single-generation corpus — and still
    /// does after compaction, with every id exactly once.
    #[test]
    fn split_corpora_match_single_generation_before_and_after_compaction(
        raw in prop::collection::vec(prop::collection::vec(0u32..24, 0..10), 1..60),
        k in 1usize..7,
        shards in 1u32..4,
        budget in prop_oneof![Just(1usize), 16usize..256],
        sketches in any::<bool>(),
    ) {
        let (vocab, items) = small_vocab();
        let mut db = SequenceDatabase::new();
        for seq in &raw {
            let seq: Vec<ItemId> = seq.iter().map(|&i| items[i as usize % items.len()]).collect();
            db.push(&seq);
        }
        let opts = StoreOptions::default()
            .with_partitioning(Partitioning::hash(shards))
            .with_block_budget(budget)
            .with_sketches(sketches);

        let dir = temp_dir("prop-split");
        write_in_generations(&dir, &vocab, &db, opts, k);
        let reader = CorpusReader::open(&dir).unwrap();
        prop_assert_eq!(reader.len(), db.len() as u64);

        // Bit-exact read-back, ids exactly once (to_database checks dup/missing).
        let back = reader.to_database().unwrap();
        for i in 0..db.len() {
            prop_assert_eq!(back.get(i), db.get(i), "sequence {}", i);
        }
        if sketches {
            let from_headers = reader.flist().unwrap().unwrap();
            let sequential = FList::compute(&db, &vocab);
            for item in vocab.items() {
                prop_assert_eq!(from_headers.frequency(item), sequential.frequency(item));
            }
        }

        // Compact down to one generation and re-verify everything.
        compact::compact(&dir, &CompactionConfig::default().with_max_generations(1)).unwrap();
        let compacted = CorpusReader::open(&dir).unwrap();
        prop_assert_eq!(compacted.num_generations(), 1);
        prop_assert_eq!(compacted.len(), db.len() as u64);
        let back = compacted.to_database().unwrap();
        for i in 0..db.len() {
            prop_assert_eq!(back.get(i), db.get(i), "post-compaction sequence {}", i);
        }
        if sketches {
            let from_headers = compacted.flist().unwrap().unwrap();
            let sequential = FList::compute(&db, &vocab);
            for item in vocab.items() {
                prop_assert_eq!(from_headers.frequency(item), sequential.frequency(item));
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn mixed_codec_generations_chain_transparently() {
    // A corpus whose generations were written in different block formats
    // (v2 varint, then the current codec) must scan, f-list, and mine as
    // one seamless corpus — readers dispatch per segment, not per corpus.
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 240);
    let dir = temp_dir("mixed-codec");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(3))
        .with_block_budget(64)
        .with_codec(lash_store::PayloadCodec::Varint);
    let mut writer = CorpusWriter::create(&dir, &vocab, opts).unwrap();
    for i in 0..120 {
        writer.append(db.get(i)).unwrap();
    }
    writer.finish().unwrap();
    // The incremental generation uses the process-wide default codec
    // (group varint, unless LASH_FORCE_CODEC collapses it to v2).
    let mut incr = IncrementalWriter::open(&dir).unwrap();
    for i in 120..240 {
        incr.append(db.get(i)).unwrap();
    }
    incr.finish().unwrap();

    let reader = CorpusReader::open(&dir).unwrap();
    let back = reader.to_database().unwrap();
    assert_eq!(back.len(), 240);
    for i in 0..240 {
        assert_eq!(back.get(i), db.get(i), "sequence {i}");
    }
    let from_headers = reader.flist().unwrap().expect("sketches on by default");
    let sequential = FList::compute(&db, &vocab);
    for item in vocab.items() {
        assert_eq!(from_headers.frequency(item), sequential.frequency(item));
    }
    let params = GsmParams::new(2, 0, 2).unwrap();
    let lash = Lash::default();
    assert_eq!(
        named_patterns(&reader.mine(&lash, &params).unwrap(), &vocab),
        named_patterns(&lash.mine(&db, &vocab, &params).unwrap(), &vocab),
        "mixed-codec corpus mined differently"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
