//! Old↔new format compatibility: corpora written in the *pinned* format-v2
//! and format-v3 byte layouts (see `fixtures/v2_writer.rs` and
//! `fixtures/v3_writer.rs` — frozen, independent of the production writer)
//! must read, scan, f-list, and mine byte-identically through the current
//! (v4-writing) build, both directly and after compaction re-blocks them
//! into the current format. CI runs this suite in a dedicated
//! `format-compat` leg.

#[path = "fixtures/v2_writer.rs"]
mod v2_writer;
#[path = "fixtures/v3_writer.rs"]
mod v3_writer;

use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::distributed::lash_job::LashResult;
use lash_core::flist::FList;
use lash_core::{GsmParams, ItemId, Lash, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_store::compact::{self, CompactionConfig};
use lash_store::{CorpusReader, IncrementalWriter, PayloadCodec, StoreOptions, FORCE_CODEC_ENV};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lash-store-compat-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The codec new segments are written with in this process — honors the
/// `LASH_FORCE_CODEC` CI override, so version assertions adapt instead of
/// fighting the forced-codec legs.
fn effective_codec() -> PayloadCodec {
    match std::env::var(FORCE_CODEC_ENV) {
        Ok(v) if v.trim() == "v2" => PayloadCodec::Varint,
        Ok(v) if v.trim() == "v3" => PayloadCodec::GroupVarint,
        _ => PayloadCodec::GroupVarintRank,
    }
}

fn compat_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let b = vb.intern("B");
    let b1 = vb.child("b1", b);
    let b2 = vb.child("b2", b);
    let d = vb.intern("D");
    let d1 = vb.child("d1", d);
    let a = vb.intern("a");
    let c = vb.intern("c");
    (vb.finish().unwrap(), vec![a, b, b1, b2, c, d, d1])
}

/// A deterministic, hierarchy-heavy workload with varied lengths and
/// empties — enough sequences to close several blocks per shard at a small
/// budget.
fn compat_sequences(items: &[ItemId], n: usize) -> Vec<Vec<ItemId>> {
    (0..n)
        .map(|i| {
            let len = (i * 7) % 9;
            (0..len)
                .map(|j| items[(i * 3 + j * 5) % items.len()])
                .collect()
        })
        .collect()
}

fn to_db(seqs: &[Vec<ItemId>]) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for seq in seqs {
        db.push(seq);
    }
    db
}

fn named_patterns(result: &LashResult, vocab: &Vocabulary) -> Vec<(Vec<String>, u64)> {
    let mut v: Vec<(Vec<String>, u64)> = result
        .patterns()
        .iter()
        .map(|p| (p.to_names(vocab), p.frequency))
        .collect();
    v.sort();
    v
}

#[test]
fn pinned_v2_corpus_scans_byte_identically() {
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 300);
    let dir = temp_dir("scan");
    v2_writer::write_v2_corpus(&dir, &vocab, &seqs, 3, 256);

    let reader = CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.manifest().version, 2);
    assert_eq!(reader.len(), 300);
    let back = reader.to_database().unwrap();
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(back.get(i), &seq[..], "sequence {i} differs");
    }
    // Several blocks really were written (the fixture re-blocks at 256 B),
    // so the v2 block-header parse path is exercised beyond one block.
    let blocks: u64 = reader.manifest().shards.iter().map(|s| s.blocks).sum();
    assert!(blocks > 3, "expected multi-block v2 fixture, got {blocks}");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pinned_v2_corpus_flists_and_mines_identically() {
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 400);
    let db = to_db(&seqs);
    let dir = temp_dir("mine");
    v2_writer::write_v2_corpus(&dir, &vocab, &seqs, 4, 512);

    let reader = CorpusReader::open(&dir).unwrap();
    // Header-only f-list from v2 sketches equals the in-memory compute.
    let flist = reader.flist().unwrap().expect("fixture writes sketches");
    let reference = FList::compute(&db, &vocab);
    for item in vocab.items() {
        assert_eq!(
            flist.frequency(item),
            reference.frequency(item),
            "f-list differs at {}",
            vocab.name(item)
        );
    }
    // Mining from v2 storage equals mining the same data in memory.
    let params = GsmParams::new(2, 1, 3).unwrap();
    let lash = Lash::default();
    let from_store = named_patterns(&reader.mine(&lash, &params).unwrap(), &vocab);
    let from_memory = named_patterns(&lash.mine(&db, &vocab, &params).unwrap(), &vocab);
    assert_eq!(from_store, from_memory, "v2 corpus mined differently");
    assert!(!from_store.is_empty(), "workload must produce patterns");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v2_corpus_grows_mixed_generations_and_migrates_via_compaction() {
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 250);
    let dir = temp_dir("migrate");
    v2_writer::write_v2_corpus(&dir, &vocab, &seqs, 3, 512);

    // Append a generation with the *current* writer: the corpus now mixes
    // v2 and current-codec segments, and every scan chains across both.
    let extra = compat_sequences(&items, 330);
    let mut incr = IncrementalWriter::open(&dir).unwrap();
    for seq in &extra[250..] {
        incr.append(seq).unwrap();
    }
    let manifest = incr.finish().unwrap();
    assert_eq!(
        manifest.version,
        2u32.max(effective_codec().format_version()),
        "manifest version must track the newest segment format"
    );

    let mut all = seqs.clone();
    all.extend_from_slice(&extra[250..]);
    let db = to_db(&all);
    let params = GsmParams::new(2, 1, 3).unwrap();
    let lash = Lash::default();
    let reference = named_patterns(&lash.mine(&db, &vocab, &params).unwrap(), &vocab);

    let mixed = CorpusReader::open(&dir).unwrap();
    assert_eq!(mixed.to_database().unwrap().len(), all.len());
    let mixed_mined = named_patterns(&mixed.mine(&lash, &params).unwrap(), &vocab);
    assert_eq!(
        mixed_mined, reference,
        "mixed v2+v3 corpus mined differently"
    );

    // Compact down to one generation: the merge re-blocks every v2 payload
    // with the current codec — compaction *is* the migration. (Under the CI
    // LASH_COMPACT_EVERY leg the seal above already compacted, so the
    // explicit call may legitimately find nothing to do.)
    let auto_compacted =
        std::env::var_os(lash_store::COMPACT_EVERY_ENV).is_some_and(|v| !v.is_empty());
    let stats =
        compact::compact(&dir, &CompactionConfig::default().with_max_generations(1)).unwrap();
    assert!(
        stats.is_some() || auto_compacted,
        "two generations must trigger a round"
    );
    let compacted = CorpusReader::open(&dir).unwrap();
    assert_eq!(compacted.num_generations(), 1);
    assert_eq!(
        compacted.manifest().version,
        2u32.max(effective_codec().format_version())
    );
    let back = compacted.to_database().unwrap();
    for (i, seq) in all.iter().enumerate() {
        assert_eq!(back.get(i), &seq[..], "sequence {i} changed in migration");
    }
    let compacted_mined = named_patterns(&compacted.mine(&lash, &params).unwrap(), &vocab);
    assert_eq!(
        compacted_mined, reference,
        "migration changed mining results"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pinned_v3_corpus_scans_flists_and_mines_identically() {
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 350);
    let db = to_db(&seqs);
    let dir = temp_dir("v3");
    v3_writer::write_v3_corpus(&dir, &vocab, &seqs, 3, 256);

    let reader = CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.manifest().version, 3);
    assert!(
        reader.manifest().rank_order.is_none(),
        "v3 manifests carry no rank order"
    );
    let back = reader.to_database().unwrap();
    for (i, seq) in seqs.iter().enumerate() {
        assert_eq!(back.get(i), &seq[..], "sequence {i} differs");
    }
    let blocks: u64 = reader.manifest().shards.iter().map(|s| s.blocks).sum();
    assert!(blocks > 3, "expected multi-block v3 fixture, got {blocks}");

    // Header-only f-list from the pinned v3 sketches equals the in-memory
    // compute, and mining from v3 storage equals mining in memory.
    let flist = reader.flist().unwrap().expect("fixture writes sketches");
    let reference = FList::compute(&db, &vocab);
    for item in vocab.items() {
        assert_eq!(
            flist.frequency(item),
            reference.frequency(item),
            "f-list differs at {}",
            vocab.name(item)
        );
    }
    let params = GsmParams::new(2, 1, 3).unwrap();
    let lash = Lash::default();
    let from_store = named_patterns(&reader.mine(&lash, &params).unwrap(), &vocab);
    let from_memory = named_patterns(&lash.mine(&db, &vocab, &params).unwrap(), &vocab);
    assert_eq!(from_store, from_memory, "v3 corpus mined differently");
    assert!(!from_store.is_empty(), "workload must produce patterns");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v3_corpus_grows_mixed_generations_and_migrates_via_compaction() {
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 250);
    let dir = temp_dir("v3-migrate");
    v3_writer::write_v3_corpus(&dir, &vocab, &seqs, 3, 512);

    // Append a generation with the *current* (v4-by-default) writer: the
    // corpus now mixes v3 and rank-encoded segments, and every scan chains
    // across both spaces.
    let extra = compat_sequences(&items, 330);
    let mut incr = IncrementalWriter::open(&dir).unwrap();
    for seq in &extra[250..] {
        incr.append(seq).unwrap();
    }
    let manifest = incr.finish().unwrap();
    assert_eq!(
        manifest.version,
        3u32.max(effective_codec().format_version()),
        "manifest version must track the newest segment format"
    );
    if manifest.version >= 4 {
        assert!(
            manifest.rank_order.is_some(),
            "a v4 manifest must carry the rank order its segments encode with"
        );
    }

    let mut all = seqs.clone();
    all.extend_from_slice(&extra[250..]);
    let db = to_db(&all);
    let params = GsmParams::new(2, 1, 3).unwrap();
    let lash = Lash::default();
    let reference = named_patterns(&lash.mine(&db, &vocab, &params).unwrap(), &vocab);

    let mixed = CorpusReader::open(&dir).unwrap();
    assert_eq!(mixed.to_database().unwrap().len(), all.len());
    let mixed_mined = named_patterns(&mixed.mine(&lash, &params).unwrap(), &vocab);
    assert_eq!(
        mixed_mined, reference,
        "mixed v3+v4 corpus mined differently"
    );

    // Compact down to one generation: the merge re-ranks every v3 payload
    // into the current codec — compaction *is* the v3→v4 migration.
    let auto_compacted =
        std::env::var_os(lash_store::COMPACT_EVERY_ENV).is_some_and(|v| !v.is_empty());
    let stats =
        compact::compact(&dir, &CompactionConfig::default().with_max_generations(1)).unwrap();
    assert!(
        stats.is_some() || auto_compacted,
        "two generations must trigger a round"
    );
    let compacted = CorpusReader::open(&dir).unwrap();
    assert_eq!(compacted.num_generations(), 1);
    assert_eq!(
        compacted.manifest().version,
        3u32.max(effective_codec().format_version())
    );
    if compacted.manifest().version >= 4 {
        assert!(compacted.manifest().rank_order.is_some());
    }
    let back = compacted.to_database().unwrap();
    for (i, seq) in all.iter().enumerate() {
        assert_eq!(back.get(i), &seq[..], "sequence {i} changed in migration");
    }
    let compacted_mined = named_patterns(&compacted.mine(&lash, &params).unwrap(), &vocab);
    assert_eq!(
        compacted_mined, reference,
        "migration changed mining results"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn requested_codec_controls_written_version() {
    // Under LASH_FORCE_CODEC both corpora collapse onto the forced codec;
    // the assertions compare against what the writer will actually do.
    let forced = std::env::var(FORCE_CODEC_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty());
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 60);
    let db = to_db(&seqs);
    for (codec, version) in [
        (PayloadCodec::Varint, 2),
        (PayloadCodec::GroupVarint, 3),
        (PayloadCodec::GroupVarintRank, 4),
    ] {
        let expected_version = match &forced {
            Some(_) => effective_codec().format_version(),
            None => version,
        };
        let dir = temp_dir("codec");
        lash_store::convert::write_database(
            &dir,
            &vocab,
            &db,
            StoreOptions::default().with_codec(codec),
        )
        .unwrap();
        let reader = CorpusReader::open(&dir).unwrap();
        assert_eq!(reader.manifest().version, expected_version);
        assert_eq!(reader.to_database().unwrap().len(), seqs.len());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

#[test]
fn pinned_corpus_stays_v2_through_codec_aware_appends() {
    // A corpus kept on the v2 codec for old readers can keep growing on v2:
    // `IncrementalWriter::open_with_codec` is the continuation of the
    // `with_codec` pin, so neither the segments nor the manifest upgrade.
    // (LASH_FORCE_CODEC still overrides both writers, so under the forced
    // legs the assertion tracks the forced codec instead.)
    let (vocab, items) = compat_vocab();
    let seqs = compat_sequences(&items, 80);
    let db = to_db(&seqs);
    let dir = temp_dir("pinned");
    lash_store::convert::write_database(
        &dir,
        &vocab,
        &db,
        StoreOptions::default().with_codec(PayloadCodec::Varint),
    )
    .unwrap();

    let mut incr =
        IncrementalWriter::open_with_codec(&dir, 64 * 1024, PayloadCodec::Varint).unwrap();
    let extra = compat_sequences(&items, 140);
    for seq in &extra[80..] {
        incr.append(seq).unwrap();
    }
    let manifest = incr.finish().unwrap();
    let forced = std::env::var(FORCE_CODEC_ENV)
        .ok()
        .filter(|v| !v.trim().is_empty())
        .is_some();
    // LASH_COMPACT_EVERY auto-compacts on seal, and compaction re-encodes
    // with the process-wide codec — so under either CI env the version
    // tracks that codec instead of the pin.
    let auto_compacted =
        std::env::var_os(lash_store::COMPACT_EVERY_ENV).is_some_and(|v| !v.is_empty());
    let expected_version = if forced || auto_compacted {
        effective_codec().format_version()
    } else {
        2
    };
    assert_eq!(
        manifest.version, expected_version,
        "pin must hold on append"
    );

    let reader = CorpusReader::open(&dir).unwrap();
    let back = reader.to_database().unwrap();
    assert_eq!(back.len(), 140);
    for (i, seq) in seqs.iter().chain(&extra[80..]).enumerate() {
        assert_eq!(back.get(i), &seq[..], "sequence {i}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
