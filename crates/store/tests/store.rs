//! Behavioral tests of the store: cold reopen, parallel scans, range
//! pruning, append-once enforcement, and corruption detection end-to-end.

use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::{ItemId, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_store::{CorpusReader, CorpusWriter, Partitioning, StoreError, StoreOptions};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("lash-store-test-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let b = vb.intern("B");
    let b1 = vb.child("b1", b);
    let b2 = vb.child("b2", b);
    let a = vb.intern("a");
    let c = vb.intern("c");
    (vb.finish().unwrap(), vec![a, b, b1, b2, c])
}

fn sample_db(items: &[ItemId], n: usize) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for i in 0..n {
        // Deterministic, varied lengths incl. empties.
        let len = i % 5;
        let seq: Vec<ItemId> = (0..len).map(|j| items[(i + j) % items.len()]).collect();
        db.push(&seq);
    }
    db
}

#[test]
fn cold_reopen_preserves_everything() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 100);
    let dir = temp_dir("cold");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(3))
        .with_block_budget(64);
    let manifest = lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    assert_eq!(manifest.num_sequences, 100);
    assert_eq!(manifest.shards.len(), 3);
    assert!(manifest.shards.iter().all(|s| s.sequences > 0));
    assert!(manifest.shards.iter().all(|s| s.blocks > 0));

    // Fresh process state: nothing shared with the writer but the files.
    let reader = CorpusReader::open(&dir).unwrap();
    assert_eq!(reader.len(), 100);
    assert_eq!(reader.manifest(), &manifest);
    let back = reader.to_database().unwrap();
    for i in 0..db.len() {
        assert_eq!(back.get(i), db.get(i));
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn par_scan_visits_every_shard_once() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 200);
    let dir = temp_dir("par");
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(5));
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let counts = reader
        .par_scan(4, |shard, scan| {
            let mut n = 0u64;
            for record in scan {
                record?;
                n += 1;
            }
            Ok((shard, n))
        })
        .unwrap();
    assert_eq!(counts.len(), 5);
    // Results arrive in shard order with per-shard counts matching stats.
    for (i, (shard, n)) in counts.iter().enumerate() {
        assert_eq!(*shard, i);
        assert_eq!(*n, reader.manifest().shards[i].sequences);
    }
    assert_eq!(counts.iter().map(|(_, n)| n).sum::<u64>(), 200);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn range_partitioning_supports_shard_pruning() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 100);
    let dir = temp_dir("range");
    let opts = StoreOptions::default().with_partitioning(Partitioning::range(4, 25));
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    // Ids 30..40 live entirely in shard 1 (ids 25..50).
    assert_eq!(reader.shards_overlapping(30..40), vec![1]);
    assert_eq!(reader.shards_overlapping(0..100), vec![0, 1, 2, 3]);
    assert_eq!(reader.shards_overlapping(99..100), vec![3]);
    // The pruned shard really contains those ids.
    let ids: Vec<u64> = reader
        .scan_shard(1)
        .unwrap()
        .map(|r| r.unwrap().0)
        .collect();
    assert_eq!(ids, (25..50).collect::<Vec<u64>>());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn append_once_is_enforced() {
    let (vocab, items) = small_vocab();
    let dir = temp_dir("once");
    let mut w = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    w.append(&[items[0]]).unwrap();
    w.finish().unwrap();
    match CorpusWriter::create(&dir, &vocab, StoreOptions::default()) {
        Err(StoreError::AlreadyExists(_)) => {}
        Err(other) => panic!("expected AlreadyExists, got {other:?}"),
        Ok(_) => panic!("expected AlreadyExists, got a writer"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unfinished_corpus_is_not_readable() {
    let (vocab, items) = small_vocab();
    let dir = temp_dir("unfinished");
    let mut w = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    w.append(&[items[0], items[1]]).unwrap();
    // No finish(): the manifest was never written.
    drop(w);
    assert!(CorpusReader::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unknown_items_are_rejected_at_append() {
    let (vocab, _) = small_vocab();
    let dir = temp_dir("unknown");
    let mut w = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    match w.append(&[ItemId::from_u32(1000)]) {
        Err(StoreError::UnknownItem(1000)) => {}
        other => panic!("expected UnknownItem, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_shards_is_rejected() {
    let (vocab, _) = small_vocab();
    let dir = temp_dir("zeroshards");
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(0));
    assert!(matches!(
        CorpusWriter::create(&dir, &vocab, opts),
        Err(StoreError::InvalidOptions(_))
    ));
}

#[test]
fn segment_corruption_is_detected_on_scan() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 50);
    let dir = temp_dir("corrupt");
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(1));
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    // Flip a byte deep inside the (only) segment file.
    let seg = dir.join("gen-00000").join("shard-00000.seg");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&seg, &bytes).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let outcome: Result<Vec<_>, _> = reader.scan_shard(0).unwrap().collect();
    assert!(outcome.is_err(), "flipped byte went undetected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncated_segment_is_detected_on_scan() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 50);
    let dir = temp_dir("trunc");
    let opts = StoreOptions::default().with_partitioning(Partitioning::hash(1));
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let seg = dir.join("gen-00000").join("shard-00000.seg");
    let bytes = std::fs::read(&seg).unwrap();
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let outcome: Result<Vec<_>, _> = reader.scan_shard(0).unwrap().collect();
    assert!(outcome.is_err(), "truncation went undetected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_is_detected_by_the_header_only_path() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 200);
    let dir = temp_dir("trunc-headers");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(1))
        .with_block_budget(64);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let seg = dir.join("gen-00000").join("shard-00000.seg");
    let bytes = std::fs::read(&seg).unwrap();

    // Cut inside the last block's payload: header frames all intact, so
    // only the length/count cross-checks can notice.
    std::fs::write(&seg, &bytes[..bytes.len() - 3]).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let outcome: Result<Vec<_>, _> = reader.block_headers(0).unwrap().collect();
    assert!(outcome.is_err(), "mid-payload truncation went undetected");
    assert!(
        reader.flist().is_err(),
        "flist accepted a truncated segment"
    );

    // Cut a whole trailing block off (truncate to just past the midpoint
    // frame boundary): the manifest block count must flag the shortfall.
    let header_count = reader.manifest().shards[0].blocks;
    assert!(header_count > 1);
    std::fs::write(&seg, &bytes[..bytes.len() / 2]).unwrap();
    let outcome: Result<Vec<_>, _> = reader.block_headers(0).unwrap().collect();
    assert!(outcome.is_err(), "missing trailing blocks went undetected");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_corpus_round_trips() {
    let (vocab, _) = small_vocab();
    let dir = temp_dir("empty");
    let w = CorpusWriter::create(&dir, &vocab, StoreOptions::default()).unwrap();
    let manifest = w.finish().unwrap();
    assert_eq!(manifest.num_sequences, 0);
    let reader = CorpusReader::open(&dir).unwrap();
    assert!(reader.is_empty());
    assert_eq!(reader.to_database().unwrap().len(), 0);
    assert_eq!(reader.scan().count(), 0);
    // Header-only f-list of an empty corpus: all zeros.
    let flist = reader.flist().unwrap().unwrap();
    for item in vocab.items() {
        assert_eq!(flist.frequency(item), 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn block_headers_skip_payloads_but_see_all_blocks() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 100);
    let dir = temp_dir("headers");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(32);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    for shard in 0..reader.num_shards() {
        let headers: Vec<_> = reader
            .block_headers(shard)
            .unwrap()
            .map(|h| h.unwrap())
            .collect();
        let stats = &reader.manifest().shards[shard];
        assert_eq!(headers.len() as u64, stats.blocks);
        assert_eq!(
            headers.iter().map(|h| h.records as u64).sum::<u64>(),
            stats.sequences
        );
        // Headers tile the shard's id range in order.
        for pair in headers.windows(2) {
            assert!(pair[0].last_seq < pair[1].first_seq);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batched_scan_matches_record_scan() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 120);
    let dir = temp_dir("batch");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(3))
        .with_block_budget(48);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    for shard in 0..reader.num_shards() {
        let by_record: Vec<(u64, Vec<ItemId>)> = reader
            .scan_shard(shard)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut by_batch: Vec<(u64, Vec<ItemId>)> = Vec::new();
        let mut scan = reader.scan_shard(shard).unwrap();
        let mut batches = 0u64;
        while let Some(batch) = scan.next_batch().unwrap() {
            batches += 1;
            assert!(!batch.is_empty());
            assert_eq!(
                batch.arena().len(),
                batch.iter().map(|(_, s)| s.len()).sum::<usize>()
            );
            for (id, seq) in batch.iter() {
                by_batch.push((id, seq.to_vec()));
            }
        }
        assert_eq!(by_batch, by_record);
        assert_eq!(batches, reader.manifest().shards[shard].blocks);
        assert_eq!(scan.blocks_decoded(), batches);
        assert_eq!(scan.blocks_pruned(), 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn block_filter_skips_payloads_without_reading_them() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 120);
    let dir = temp_dir("filter");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(1))
        .with_block_budget(48);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let total_blocks = reader.manifest().shards[0].blocks;
    assert!(total_blocks > 1, "need several blocks to make pruning real");

    // Rejecting every block scans nothing but still walks the whole file.
    let reject = |_: &lash_store::BlockHeader| false;
    let mut scan = reader.scan_shard_filtered(0, &reject).unwrap();
    assert!(scan.next_batch().unwrap().is_none());
    assert_eq!(scan.blocks_pruned(), total_blocks);
    assert_eq!(scan.blocks_decoded(), 0);

    // Accepting every block is the plain scan.
    let accept = |_: &lash_store::BlockHeader| true;
    let full: Vec<_> = reader
        .scan_shard_filtered(0, &accept)
        .unwrap()
        .map(|r| r.unwrap())
        .collect();
    assert_eq!(full.len() as u64, reader.manifest().shards[0].sequences);

    // A sketch-based filter keeps exactly the blocks naming the item — and
    // every kept sequence set is a superset of the item's occurrences.
    let b1 = vocab.lookup("b1").unwrap();
    let keep_b1 =
        |h: &lash_store::BlockHeader| h.sketch.iter().any(|&(item, _)| item == b1.as_u32());
    let mut scan = reader.scan_shard_filtered(0, &keep_b1).unwrap();
    let mut kept_ids = Vec::new();
    while let Some(batch) = scan.next_batch().unwrap() {
        for (id, _) in batch.iter() {
            kept_ids.push(id);
        }
    }
    assert!(scan.blocks_decoded() + scan.blocks_pruned() == total_blocks);
    for (id, seq) in db.iter().enumerate().map(|(i, s)| (i as u64, s)) {
        if seq.contains(&b1) {
            assert!(kept_ids.contains(&id), "sequence {id} with b1 was pruned");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_scan_of_an_empty_shard_yields_nothing() {
    use lash_core::ShardedCorpus;
    let (vocab, items) = small_vocab();
    // 10 sequences, 4 range shards of 100 ids each: shards 1..4 are empty.
    let db = sample_db(&items, 10);
    let dir = temp_dir("pruned-empty");
    let opts = StoreOptions::default().with_partitioning(Partitioning::range(4, 100));
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    for shard in 1..4 {
        assert_eq!(reader.manifest().shards[shard].sequences, 0);
        // Plain scan: clean end, no blocks.
        let mut scan = reader.scan_shard(shard).unwrap();
        assert!(scan.next_batch().unwrap().is_none());
        assert_eq!(scan.blocks_decoded(), 0);
        assert_eq!(scan.blocks_pruned(), 0);
        // Pruned scan: same — an empty segment must not error or loop.
        let mut seen = 0u64;
        reader
            .scan_shard_pruned(shard, &|_| true, &mut |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 0);
        reader
            .scan_shard_pruned(shard, &|_| false, &mut |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 0);
        // Header iteration agrees.
        assert_eq!(reader.block_headers(shard).unwrap().count(), 0);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_scan_where_every_block_is_pruned_skips_all_payloads() {
    use lash_core::ShardedCorpus;
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 120);
    let dir = temp_dir("pruned-all");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(48);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    // No item is ever relevant: every block's sketch proves it away, so the
    // scan decodes zero payloads but still walks (and length-checks) the
    // whole segment.
    for shard in 0..ShardedCorpus::num_shards(&reader) {
        let mut seen = 0u64;
        reader
            .scan_shard_pruned(shard, &|_| false, &mut |_, _| seen += 1)
            .unwrap();
        assert_eq!(seen, 0);
        let reject = |_: &lash_store::BlockHeader| false;
        let mut scan = reader.scan_shard_filtered(shard, &reject).unwrap();
        assert!(scan.next_batch().unwrap().is_none());
        assert_eq!(scan.blocks_decoded(), 0);
        assert_eq!(scan.blocks_pruned(), reader.manifest().shards[shard].blocks);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_scan_without_sketches_degrades_to_a_full_scan() {
    use lash_core::ShardedCorpus;
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 90);
    let dir = temp_dir("pruned-nosketches");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(48)
        .with_sketches(false);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    // A second generation, so the degradation also covers chained scans.
    let mut incr = lash_store::IncrementalWriter::open(&dir).unwrap();
    incr.append(&[items[0], items[2]]).unwrap();
    incr.finish().unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    assert!(!reader.manifest().sketches);
    // Sketch-less corpora cannot prove any block irrelevant: even an
    // always-false predicate must deliver every sequence, never skip data.
    let mut seen = 0u64;
    for shard in 0..ShardedCorpus::num_shards(&reader) {
        reader
            .scan_shard_pruned(shard, &|_| false, &mut |_, _| seen += 1)
            .unwrap();
    }
    assert_eq!(seen, db.len() as u64 + 1);
    // And the header-only f-list is unavailable, not wrong.
    assert!(reader.flist().unwrap().is_none());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn pruned_trait_scan_respects_the_relevance_contract() {
    use lash_core::ShardedCorpus;
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 100);
    let dir = temp_dir("pruned-trait");
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(48);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();

    // Nothing relevant → nothing decoded (sketches prove every block away).
    let mut seen = 0u64;
    for shard in 0..ShardedCorpus::num_shards(&reader) {
        reader
            .scan_shard_pruned(shard, &|_| false, &mut |_, _| seen += 1)
            .unwrap();
    }
    assert_eq!(seen, 0);

    // Everything relevant → the full corpus.
    let mut seen = 0u64;
    for shard in 0..ShardedCorpus::num_shards(&reader) {
        reader
            .scan_shard_pruned(shard, &|_| true, &mut |_, _| seen += 1)
            .unwrap();
    }
    assert_eq!(seen, db.len() as u64);

    // One relevant item → every sequence whose G1 closure holds it is kept.
    let b = vocab.lookup("B").unwrap();
    let mut kept = Vec::new();
    for shard in 0..ShardedCorpus::num_shards(&reader) {
        reader
            .scan_shard_pruned(shard, &|item| item == b, &mut |id, _| kept.push(id))
            .unwrap();
    }
    for (id, seq) in db.iter().enumerate().map(|(i, s)| (i as u64, s)) {
        // B is an ancestor of b1/b2 and itself — closure membership.
        let relevant = seq.iter().any(|&it| it == b || vocab.parent(it) == Some(b));
        if relevant {
            assert!(kept.contains(&id), "relevant sequence {id} was pruned");
        }
    }

    // A corpus without sketches never prunes.
    let dir2 = temp_dir("pruned-nosketch");
    let opts = StoreOptions::default()
        .with_block_budget(48)
        .with_sketches(false);
    lash_store::convert::write_database(&dir2, &vocab, &db, opts).unwrap();
    let reader2 = CorpusReader::open(&dir2).unwrap();
    let mut seen = 0u64;
    for shard in 0..ShardedCorpus::num_shards(&reader2) {
        reader2
            .scan_shard_pruned(shard, &|_| false, &mut |_, _| seen += 1)
            .unwrap();
    }
    assert_eq!(seen, db.len() as u64);
    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&dir2).unwrap();
}

#[test]
fn pruned_scan_hoists_the_relevance_predicate_per_scan() {
    // The fix under test: `scan_shard_pruned` evaluates `relevant` once per
    // vocabulary item per scan (a hoisted lookup table), not once per
    // (block, sketch entry) — while making *identical* pruning decisions.
    use lash_core::ShardedCorpus;
    use std::sync::atomic::AtomicUsize;

    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 400);
    let dir = temp_dir("pruned-hoist");
    // A tiny budget forces many blocks per shard, so the per-block cost of
    // the old behavior would be unmistakable in the call count.
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(32);
    lash_store::convert::write_database(&dir, &vocab, &db, opts).unwrap();
    let reader = CorpusReader::open(&dir).unwrap();
    let blocks: u64 = reader.manifest().shards.iter().map(|s| s.blocks).sum();
    assert!(
        blocks as usize > vocab.len(),
        "need more blocks ({blocks}) than vocabulary items ({}) for the count to discriminate",
        vocab.len()
    );

    let b = vocab.lookup("B").unwrap();
    for predicate in [
        (&|item: ItemId| item == b) as &(dyn Fn(ItemId) -> bool + Sync),
        &|_| false,
        &|item: ItemId| item.as_u32().is_multiple_of(2),
    ] {
        // Hoisted path, with every predicate evaluation counted.
        let calls = AtomicUsize::new(0);
        let counted = |item: ItemId| {
            calls.fetch_add(1, Ordering::Relaxed);
            predicate(item)
        };
        let mut pruned_ids: Vec<u64> = Vec::new();
        for shard in 0..ShardedCorpus::num_shards(&reader) {
            reader
                .scan_shard_pruned(shard, &counted, &mut |id, _| pruned_ids.push(id))
                .unwrap();
        }
        let shards = ShardedCorpus::num_shards(&reader);
        assert_eq!(
            calls.load(Ordering::Relaxed),
            vocab.len() * shards,
            "predicate must be evaluated exactly once per item per shard scan"
        );

        // Reference: the unhoisted per-block decision, straight from the
        // sketch — pruning decisions must be identical.
        let mut reference_ids: Vec<u64> = Vec::new();
        for shard in 0..reader.num_shards() {
            let filter = |header: &lash_store::BlockHeader| {
                header
                    .sketch
                    .iter()
                    .any(|&(item, _)| predicate(ItemId::from_u32(item)))
            };
            let mut scan = reader.scan_shard_filtered(shard, &filter).unwrap();
            while let Some(batch) = scan.next_batch().unwrap() {
                for (id, _) in batch.iter() {
                    reference_ids.push(id);
                }
            }
        }
        pruned_ids.sort_unstable();
        reference_ids.sort_unstable();
        assert_eq!(pruned_ids, reference_ids, "pruning decisions diverged");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
