//! A **pinned** format-v3 corpus writer, frozen at the byte layout
//! `lash-store` wrote before the rank-space (format-v4) change.
//!
//! Like `v2_writer.rs`, this is deliberately *not* the production writer
//! run with the group-varint codec: the production code evolves, and a
//! compatibility test that writes v3 bytes through it would silently start
//! testing whatever the current code does. This module re-implements the
//! v3 layout from the format documentation — the v2 manifest layout at
//! version 3, `LSEG` segment headers, codec-tagged block headers, and
//! **columnar** payloads (varint id deltas, then a group-varint lengths
//! column, then all items as one contiguous group-varint stream), with
//! block frames in the wide FNV checksum flavor — so the `format_compat`
//! suite proves that corpora written by *v3 builds* keep reading and
//! mining byte-identically through the current (v4-writing) reader.
//!
//! If this file ever needs editing for anything but a compile error, the
//! on-disk compatibility contract has been broken; stop and fix the reader
//! instead.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use lash_core::enumeration::g1_items;
use lash_core::{ItemId, Vocabulary};
use lash_encoding::frame;
use lash_encoding::group_varint;
use lash_encoding::varint;
use lash_encoding::FrameChecksum;

const MANIFEST_MAGIC: &[u8; 8] = b"LASHSTOR";
const SEGMENT_MAGIC: &[u8; 4] = b"LSEG";
const V3: u32 = 3;
/// The v3 group-varint codec's block-header tag.
const GV_TAG: u32 = 1;

/// The id hash (SplitMix64 finalizer) routing ids to shards — unchanged
/// since v2.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Clone, Default)]
struct ShardStats {
    sequences: u64,
    blocks: u64,
    payload_bytes: u64,
    min_seq: u64,
    max_seq: u64,
}

struct Block {
    id_deltas: Vec<u64>,
    lens: Vec<u32>,
    flat: Vec<u32>,
    records: u32,
    first_seq: u64,
    prev_seq: u64,
    items: u64,
    min_item: Option<u32>,
    max_item: Option<u32>,
    sketch: BTreeMap<u32, u32>,
}

impl Block {
    fn new() -> Block {
        Block {
            id_deltas: Vec::new(),
            lens: Vec::new(),
            flat: Vec::new(),
            records: 0,
            first_seq: 0,
            prev_seq: 0,
            items: 0,
            min_item: None,
            max_item: None,
            sketch: BTreeMap::new(),
        }
    }

    /// The columnar v3 payload: all id deltas as plain varints, then the
    /// lengths column, then the flattened item column, both group varint.
    fn encode_payload(&self, buf: &mut Vec<u8>) {
        for &delta in &self.id_deltas {
            varint::encode_u64(delta, buf);
        }
        group_varint::encode(&self.lens, buf);
        group_varint::encode(&self.flat, buf);
    }
}

/// The v3 block header: a leading codec tag, then the v2 fields.
fn encode_block_header_v3(block: &Block, buf: &mut Vec<u8>) {
    varint::encode_u32(GV_TAG, buf);
    varint::encode_u32(block.records, buf);
    varint::encode_u64(block.first_seq, buf);
    varint::encode_u64(block.prev_seq, buf);
    varint::encode_u64(block.items, buf);
    varint::encode_u32(block.min_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(block.max_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(block.sketch.len() as u32, buf);
    let mut prev = 0u32;
    for (&item, &count) in &block.sketch {
        varint::encode_u32(item - prev, buf);
        varint::encode_u32(count, buf);
        prev = item;
    }
}

fn flush_block(block: &mut Block, file: &mut BufWriter<File>, stats: &mut ShardStats) {
    if block.records == 0 {
        return;
    }
    let mut header = Vec::new();
    encode_block_header_v3(block, &mut header);
    let mut payload = Vec::new();
    block.encode_payload(&mut payload);
    // v3 block frames use the wide checksum flavor; the segment header
    // frame (written at create time) stays classic.
    frame::write_frame_with(&header, file, FrameChecksum::Fnv1aWide).unwrap();
    frame::write_frame_with(&payload, file, FrameChecksum::Fnv1aWide).unwrap();
    stats.blocks += 1;
    stats.payload_bytes += payload.len() as u64;
    *block = Block::new();
}

/// Writes `seqs` as a complete format-v3 corpus at `dir`: one generation,
/// hash partitioning over `shards` shards, G1 sketches enabled.
pub fn write_v3_corpus(
    dir: &Path,
    vocab: &Vocabulary,
    seqs: &[Vec<ItemId>],
    shards: u32,
    block_budget: usize,
) {
    let gen_dir = dir.join("gen-00000");
    fs::create_dir_all(&gen_dir).unwrap();

    let mut files: Vec<BufWriter<File>> = (0..shards)
        .map(|shard| {
            let path = gen_dir.join(format!("shard-{shard:05}.seg"));
            let mut file = BufWriter::new(File::create(path).unwrap());
            let mut header = Vec::new();
            header.extend_from_slice(SEGMENT_MAGIC);
            varint::encode_u32(V3, &mut header);
            varint::encode_u32(shard, &mut header);
            frame::write_frame(&header, &mut file).unwrap();
            file
        })
        .collect();
    let mut blocks: Vec<Block> = (0..shards).map(|_| Block::new()).collect();
    let mut stats: Vec<ShardStats> = (0..shards)
        .map(|_| ShardStats {
            min_seq: u64::MAX,
            ..ShardStats::default()
        })
        .collect();

    let mut total_items = 0u64;
    let mut g1 = Vec::new();
    for (id, seq) in seqs.iter().enumerate() {
        let id = id as u64;
        let shard = (splitmix64(id) % shards as u64) as usize;
        let block = &mut blocks[shard];
        if block.records == 0 {
            block.first_seq = id;
            block.prev_seq = id;
        }
        block.id_deltas.push(id - block.prev_seq);
        block.lens.push(seq.len() as u32);
        block.flat.extend(seq.iter().map(|item| item.as_u32()));
        block.prev_seq = id;
        block.records += 1;
        block.items += seq.len() as u64;
        total_items += seq.len() as u64;
        for item in seq {
            let v = item.as_u32();
            block.min_item = Some(block.min_item.map_or(v, |m| m.min(v)));
            block.max_item = Some(block.max_item.map_or(v, |m| m.max(v)));
        }
        g1_items(seq, vocab, &mut g1);
        for item in &g1 {
            *block.sketch.entry(item.as_u32()).or_insert(0) += 1;
        }
        stats[shard].sequences += 1;
        stats[shard].min_seq = stats[shard].min_seq.min(id);
        stats[shard].max_seq = stats[shard].max_seq.max(id);
        // The v3 budget cut looked at the columns' raw data bytes; for the
        // fixture an encoded-size probe is equivalent freezing-wise — block
        // boundaries are a writer policy, not a format invariant.
        let mut probe = Vec::new();
        block.encode_payload(&mut probe);
        if probe.len() >= block_budget {
            flush_block(block, &mut files[shard], &mut stats[shard]);
        }
    }
    for shard in 0..shards as usize {
        flush_block(&mut blocks[shard], &mut files[shard], &mut stats[shard]);
        files[shard].flush().unwrap();
    }

    // The v3 manifest: identical to the v2 layout at version 3 — the rank
    // frame is a v4 addition.
    let mut manifest = BufWriter::new(File::create(dir.join("MANIFEST.lash")).unwrap());
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    varint::encode_u32(V3, &mut buf);
    buf.push(0); // partitioning tag: hash
    varint::encode_u32(shards, &mut buf);
    varint::encode_u64(seqs.len() as u64, &mut buf);
    varint::encode_u64(total_items, &mut buf);
    buf.push(1); // sketches
    varint::encode_u32(1, &mut buf); // next_gen_id
    varint::encode_u32(1, &mut buf); // generation count
    frame::write_frame(&buf, &mut manifest).unwrap();

    buf.clear();
    varint::encode_u32(vocab.len() as u32, &mut buf);
    for item in vocab.items() {
        let name = vocab.name(item).as_bytes();
        varint::encode_u32(name.len() as u32, &mut buf);
        buf.extend_from_slice(name);
    }
    for item in vocab.items() {
        varint::encode_u32(vocab.parent(item).map_or(0, |p| p.as_u32() + 1), &mut buf);
    }
    frame::write_frame(&buf, &mut manifest).unwrap();

    buf.clear();
    varint::encode_u32(1, &mut buf); // one generation
    varint::encode_u32(0, &mut buf); // generation id
    varint::encode_u64(seqs.len() as u64, &mut buf);
    varint::encode_u64(total_items, &mut buf);
    varint::encode_u32(shards, &mut buf);
    for s in &stats {
        varint::encode_u64(s.sequences, &mut buf);
        varint::encode_u64(s.blocks, &mut buf);
        varint::encode_u64(s.payload_bytes, &mut buf);
        varint::encode_u64(s.min_seq, &mut buf);
        varint::encode_u64(s.max_seq, &mut buf);
    }
    frame::write_frame(&buf, &mut manifest).unwrap();
    manifest.flush().unwrap();
}
