//! A **pinned** format-v2 corpus writer, frozen at the byte layout
//! `lash-store` wrote before the group-varint (format-v3) change.
//!
//! This is deliberately *not* the production writer run with the varint
//! codec: the production code evolves, and a compatibility test that
//! writes v2 bytes through it would silently start testing whatever the
//! current code does. This module re-implements the v2 layout from the
//! format documentation — manifest header/vocabulary/generations frames,
//! `LSEG` segment headers, block header frames, and per-record
//! delta/zigzag-varint payloads, all in classic FNV-1a-32 frames — so the
//! `format_compat` suite proves that corpora written by *old builds* keep
//! reading and mining byte-identically through the current reader.
//!
//! If this file ever needs editing for anything but a compile error, the
//! on-disk compatibility contract has been broken; stop and fix the reader
//! instead.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::{BufWriter, Write};
use std::path::Path;

use lash_core::enumeration::g1_items;
use lash_core::{ItemId, Vocabulary};
use lash_encoding::frame;
use lash_encoding::varint;
use lash_encoding::zigzag;

const MANIFEST_MAGIC: &[u8; 8] = b"LASHSTOR";
const SEGMENT_MAGIC: &[u8; 4] = b"LSEG";
const V2: u32 = 2;

/// The v2 id hash (SplitMix64 finalizer) routing ids to shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[derive(Clone, Default)]
struct ShardStats {
    sequences: u64,
    blocks: u64,
    payload_bytes: u64,
    min_seq: u64,
    max_seq: u64,
}

struct Block {
    payload: Vec<u8>,
    records: u32,
    first_seq: u64,
    prev_seq: u64,
    items: u64,
    min_item: Option<u32>,
    max_item: Option<u32>,
    sketch: BTreeMap<u32, u32>,
}

impl Block {
    fn new() -> Block {
        Block {
            payload: Vec::new(),
            records: 0,
            first_seq: 0,
            prev_seq: 0,
            items: 0,
            min_item: None,
            max_item: None,
            sketch: BTreeMap::new(),
        }
    }
}

/// The v2 record encoding: varint id delta, varint length, first item as a
/// plain varint, every later item as a zigzag varint delta from its
/// predecessor.
fn encode_record_v2(id_delta: u64, items: &[ItemId], buf: &mut Vec<u8>) {
    varint::encode_u64(id_delta, buf);
    varint::encode_u32(items.len() as u32, buf);
    let mut prev = 0i64;
    for (i, item) in items.iter().enumerate() {
        let v = item.as_u32();
        if i == 0 {
            varint::encode_u32(v, buf);
        } else {
            varint::encode_u64(zigzag::encode_i64(v as i64 - prev), buf);
        }
        prev = v as i64;
    }
}

/// The v2 block header encoding: no codec tag — v2 payloads are implicitly
/// varint record streams.
fn encode_block_header_v2(block: &Block, buf: &mut Vec<u8>) {
    varint::encode_u32(block.records, buf);
    varint::encode_u64(block.first_seq, buf);
    varint::encode_u64(block.prev_seq, buf);
    varint::encode_u64(block.items, buf);
    varint::encode_u32(block.min_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(block.max_item.map_or(0, |v| v + 1), buf);
    varint::encode_u32(block.sketch.len() as u32, buf);
    let mut prev = 0u32;
    for (&item, &count) in &block.sketch {
        varint::encode_u32(item - prev, buf);
        varint::encode_u32(count, buf);
        prev = item;
    }
}

fn flush_block(block: &mut Block, file: &mut BufWriter<File>, stats: &mut ShardStats) {
    if block.records == 0 {
        return;
    }
    let mut header = Vec::new();
    encode_block_header_v2(block, &mut header);
    frame::write_frame(&header, file).unwrap();
    frame::write_frame(&block.payload, file).unwrap();
    stats.blocks += 1;
    stats.payload_bytes += block.payload.len() as u64;
    *block = Block::new();
}

/// Writes `seqs` as a complete format-v2 corpus at `dir`: one generation,
/// hash partitioning over `shards` shards, G1 sketches enabled.
pub fn write_v2_corpus(
    dir: &Path,
    vocab: &Vocabulary,
    seqs: &[Vec<ItemId>],
    shards: u32,
    block_budget: usize,
) {
    let gen_dir = dir.join("gen-00000");
    fs::create_dir_all(&gen_dir).unwrap();

    let mut files: Vec<BufWriter<File>> = (0..shards)
        .map(|shard| {
            let path = gen_dir.join(format!("shard-{shard:05}.seg"));
            let mut file = BufWriter::new(File::create(path).unwrap());
            let mut header = Vec::new();
            header.extend_from_slice(SEGMENT_MAGIC);
            varint::encode_u32(V2, &mut header);
            varint::encode_u32(shard, &mut header);
            frame::write_frame(&header, &mut file).unwrap();
            file
        })
        .collect();
    let mut blocks: Vec<Block> = (0..shards).map(|_| Block::new()).collect();
    let mut stats: Vec<ShardStats> = (0..shards)
        .map(|_| ShardStats {
            min_seq: u64::MAX,
            ..ShardStats::default()
        })
        .collect();

    let mut total_items = 0u64;
    let mut g1 = Vec::new();
    for (id, seq) in seqs.iter().enumerate() {
        let id = id as u64;
        let shard = (splitmix64(id) % shards as u64) as usize;
        let block = &mut blocks[shard];
        if block.records == 0 {
            block.first_seq = id;
            block.prev_seq = id;
        }
        encode_record_v2(id - block.prev_seq, seq, &mut block.payload);
        block.prev_seq = id;
        block.records += 1;
        block.items += seq.len() as u64;
        total_items += seq.len() as u64;
        for item in seq {
            let v = item.as_u32();
            block.min_item = Some(block.min_item.map_or(v, |m| m.min(v)));
            block.max_item = Some(block.max_item.map_or(v, |m| m.max(v)));
        }
        g1_items(seq, vocab, &mut g1);
        for item in &g1 {
            *block.sketch.entry(item.as_u32()).or_insert(0) += 1;
        }
        stats[shard].sequences += 1;
        stats[shard].min_seq = stats[shard].min_seq.min(id);
        stats[shard].max_seq = stats[shard].max_seq.max(id);
        if block.payload.len() >= block_budget {
            flush_block(block, &mut files[shard], &mut stats[shard]);
        }
    }
    for shard in 0..shards as usize {
        flush_block(&mut blocks[shard], &mut files[shard], &mut stats[shard]);
        files[shard].flush().unwrap();
    }

    // The v2 manifest: header, vocabulary, and generations frames.
    let mut manifest = BufWriter::new(File::create(dir.join("MANIFEST.lash")).unwrap());
    let mut buf = Vec::new();
    buf.extend_from_slice(MANIFEST_MAGIC);
    varint::encode_u32(V2, &mut buf);
    buf.push(0); // partitioning tag: hash
    varint::encode_u32(shards, &mut buf);
    varint::encode_u64(seqs.len() as u64, &mut buf);
    varint::encode_u64(total_items, &mut buf);
    buf.push(1); // sketches
    varint::encode_u32(1, &mut buf); // next_gen_id
    varint::encode_u32(1, &mut buf); // generation count
    frame::write_frame(&buf, &mut manifest).unwrap();

    buf.clear();
    varint::encode_u32(vocab.len() as u32, &mut buf);
    for item in vocab.items() {
        let name = vocab.name(item).as_bytes();
        varint::encode_u32(name.len() as u32, &mut buf);
        buf.extend_from_slice(name);
    }
    for item in vocab.items() {
        varint::encode_u32(vocab.parent(item).map_or(0, |p| p.as_u32() + 1), &mut buf);
    }
    frame::write_frame(&buf, &mut manifest).unwrap();

    buf.clear();
    varint::encode_u32(1, &mut buf); // one generation
    varint::encode_u32(0, &mut buf); // generation id
    varint::encode_u64(seqs.len() as u64, &mut buf);
    varint::encode_u64(total_items, &mut buf);
    varint::encode_u32(shards, &mut buf);
    for s in &stats {
        varint::encode_u64(s.sequences, &mut buf);
        varint::encode_u64(s.blocks, &mut buf);
        varint::encode_u64(s.payload_bytes, &mut buf);
        varint::encode_u64(s.min_seq, &mut buf);
        varint::encode_u64(s.max_seq, &mut buf);
    }
    frame::write_frame(&buf, &mut manifest).unwrap();
    manifest.flush().unwrap();
}
