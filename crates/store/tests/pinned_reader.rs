//! Regression tests for snapshot-safe compaction: a live [`CorpusReader`]
//! pins the generation set it opened — including its mapped segment cache —
//! and compaction must never unlink a pinned file. Replaced directories are
//! deleted by the **last** pin release, not by the compaction round.
//!
//! Written to hold under every CI env matrix: with `LASH_COMPACT_EVERY=1`
//! the staged generations may already be collapsed at seal time, so the
//! assertions are phrased as set differences between the reader's manifest
//! and the post-compaction manifest rather than absolute generation counts.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use lash_core::{ItemId, SequenceDatabase, Vocabulary, VocabularyBuilder};
use lash_store::compact::{self, CompactionConfig};
use lash_store::{CorpusReader, CorpusWriter, IncrementalWriter, Partitioning, StoreOptions};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lash-store-pin-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let b = vb.intern("B");
    let b1 = vb.child("b1", b);
    let b2 = vb.child("b2", b);
    let a = vb.intern("a");
    let c = vb.intern("c");
    (vb.finish().unwrap(), vec![a, b, b1, b2, c])
}

fn sample_db(items: &[ItemId], n: usize) -> SequenceDatabase {
    let mut db = SequenceDatabase::new();
    for i in 0..n {
        let len = 1 + i % 4;
        let seq: Vec<ItemId> = (0..len).map(|j| items[(i + j) % items.len()]).collect();
        db.push(&seq);
    }
    db
}

/// Writes `db` in `k` staged generations (one `CorpusWriter`, then
/// `IncrementalWriter`s).
fn write_in_generations(dir: &Path, vocab: &Vocabulary, db: &SequenceDatabase, k: usize) {
    let opts = StoreOptions::default()
        .with_partitioning(Partitioning::hash(2))
        .with_block_budget(64);
    let per = db.len().div_ceil(k).max(1);
    let mut writer = CorpusWriter::create(dir, vocab, opts).unwrap();
    for i in 0..per.min(db.len()) {
        writer.append(db.get(i)).unwrap();
    }
    writer.finish().unwrap();
    let mut next = per;
    while next < db.len() {
        let mut incr = IncrementalWriter::open(dir).unwrap();
        for i in next..(next + per).min(db.len()) {
            incr.append(db.get(i)).unwrap();
        }
        incr.finish().unwrap();
        next += per;
    }
}

fn generation_ids(reader: &CorpusReader) -> BTreeSet<u32> {
    reader.generations().iter().map(|g| g.id).collect()
}

fn generation_dirs(dir: &Path, ids: &BTreeSet<u32>) -> Vec<PathBuf> {
    ids.iter()
        .map(|id| dir.join(lash_store::format::generation_dir_name(*id)))
        .collect()
}

/// Every sequence of the corpus through the explicit **mmap** scan path
/// (`scan_shard_mapped` always maps, whatever `LASH_SCAN_MODE` says), read
/// back in id order.
fn mapped_read_back(reader: &CorpusReader) -> Vec<(u64, Vec<ItemId>)> {
    let mut rows: Vec<(u64, Vec<ItemId>)> = Vec::new();
    for shard in 0..reader.num_shards() {
        reader
            .scan_shard_mapped(shard, &mut |id, items| rows.push((id, items.to_vec())))
            .unwrap();
    }
    rows.sort_by_key(|(id, _)| *id);
    rows
}

#[test]
fn mmap_reader_survives_compaction_replacing_its_generations() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 200);
    let dir = temp_dir("mmap");
    write_in_generations(&dir, &vocab, &db, 5);

    let pinned = CorpusReader::open(&dir).unwrap();
    let pinned_ids = generation_ids(&pinned);
    let pinned_dirs = generation_dirs(&dir, &pinned_ids);
    // Scan once up front through the mmap path: this is the snapshot the
    // reader must still be able to reproduce after compaction.
    let before = mapped_read_back(&pinned);
    assert_eq!(before.len(), db.len());

    // Compact everything down to one generation while the reader is live.
    let config = CompactionConfig::default()
        .with_max_generations(1)
        .with_fan_in(3)
        .with_block_budget(64)
        .with_merge_parallelism(2);
    let stats = compact::compact(&dir, &config).unwrap();
    let after_compact = CorpusReader::open(&dir).unwrap();
    let new_ids = generation_ids(&after_compact);
    let replaced: BTreeSet<u32> = pinned_ids.difference(&new_ids).copied().collect();
    if stats.is_some() {
        assert!(
            !replaced.is_empty(),
            "a round ran, so some generation of the pinned snapshot was replaced"
        );
    }

    // While the original reader is live, every directory of its snapshot —
    // replaced or not — must still exist: compaction defers those deletes.
    for gen_dir in &pinned_dirs {
        assert!(
            gen_dir.exists(),
            "compaction deleted pinned generation dir {gen_dir:?}"
        );
    }
    // And its mapped scans still see the exact same bytes.
    let after = mapped_read_back(&pinned);
    assert_eq!(before, after, "pinned snapshot changed under compaction");

    // The new reader sees the same logical content through the merged set.
    let merged = mapped_read_back(&after_compact);
    assert_eq!(before, merged);

    // The last pin release performs the deferred deletes: replaced dirs go,
    // live ones stay (the new reader pins them, but they are not doomed).
    drop(pinned);
    for id in &replaced {
        let gen_dir = dir.join(lash_store::format::generation_dir_name(*id));
        assert!(
            !gen_dir.exists(),
            "deferred delete of replaced generation {id} never ran"
        );
    }
    for gen_dir in generation_dirs(&dir, &new_ids) {
        assert!(gen_dir.exists(), "live generation dir {gen_dir:?} deleted");
    }
    drop(after_compact);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn two_readers_release_in_either_order() {
    let (vocab, items) = small_vocab();
    let db = sample_db(&items, 120);
    let dir = temp_dir("two-readers");
    write_in_generations(&dir, &vocab, &db, 4);

    let first = CorpusReader::open(&dir).unwrap();
    let second = CorpusReader::open(&dir).unwrap();
    let pinned_ids = generation_ids(&first);
    let config = CompactionConfig::default()
        .with_max_generations(1)
        .with_block_budget(64);
    compact::compact(&dir, &config).unwrap();
    let new_ids = generation_ids(&CorpusReader::open(&dir).unwrap());
    let replaced: BTreeSet<u32> = pinned_ids.difference(&new_ids).copied().collect();

    drop(first);
    // `second` still pins the same snapshot: nothing may be deleted yet.
    for gen_dir in generation_dirs(&dir, &pinned_ids) {
        assert!(gen_dir.exists(), "delete ran with a pin still live");
    }
    assert_eq!(mapped_read_back(&second).len(), db.len());
    drop(second);
    for id in &replaced {
        assert!(!dir
            .join(lash_store::format::generation_dir_name(*id))
            .exists());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
