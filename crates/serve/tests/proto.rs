//! Property tests for the wire protocol: decoding is total. Arbitrary
//! queries round-trip exactly; arbitrary byte soup, truncations, and
//! single-bit flips of valid envelopes decode to a typed error or a value —
//! never a panic, never an unbounded allocation.

use lash_core::ItemId;
use lash_index::{PatternHit, Query, QueryError, QueryReply};
use lash_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
};
use proptest::prelude::*;

fn ids(raw: &[u32]) -> Vec<ItemId> {
    raw.iter().map(|&v| ItemId::from_u32(v)).collect()
}

/// Builds one of the four query kinds from flattened fuzz inputs.
fn query_from(kind: u8, items: &[u32], n: u64, flag: bool) -> Query {
    match kind % 4 {
        0 => Query::Support { items: ids(items) },
        1 => Query::Enumerate {
            prefix: ids(items),
            limit: flag.then_some(n as usize),
        },
        2 => Query::TopK {
            prefix: ids(items),
            k: n as usize,
        },
        _ => Query::Generalized { items: ids(items) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..20),
        n in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let req = Request::new(id, query_from(kind, &items, n, flag));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        prop_assert_eq!(decode_request(&buf).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(
        id in any::<u64>(),
        hits in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 1..8), any::<u64>()),
            0..10,
        ),
    ) {
        let reply = QueryReply::Patterns(
            hits.iter()
                .map(|(items, f)| PatternHit { items: ids(items), frequency: *f })
                .collect(),
        );
        let resp = Response { id, reply };
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        prop_assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    /// Arbitrary bytes never panic the request decoder, and failures are
    /// typed.
    #[test]
    fn byte_soup_decodes_totally(payload in prop::collection::vec(any::<u8>(), 0..200)) {
        match decode_request(&payload) {
            Ok(req) => prop_assert_eq!(req.version, lash_serve::ENVELOPE_VERSION),
            Err((_, e)) => prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            )),
        }
        // The response decoder is equally total.
        if let Err(e) = decode_response(&payload) {
            prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            ));
        }
    }

    /// Truncating a valid envelope at any point decodes totally (usually a
    /// typed error; a prefix that happens to be self-delimiting may still
    /// parse).
    #[test]
    fn truncations_decode_totally(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..12),
        cut in any::<u16>(),
    ) {
        let req = Request::new(id, query_from(kind, &items, 3, true));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = cut as usize % (buf.len() + 1);
        let _ = decode_request(&buf[..cut]);
    }

    /// Flipping any single bit of a valid envelope decodes totally.
    #[test]
    fn bit_flips_decode_totally(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..12),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let req = Request::new(id, query_from(kind, &items, 9, false));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let i = byte as usize % buf.len();
        buf[i] ^= 1 << bit;
        let _ = decode_request(&buf);
    }
}
