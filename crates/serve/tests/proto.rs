//! Property tests for the wire protocol: decoding is total. Arbitrary
//! queries round-trip exactly; arbitrary byte soup, truncations, and
//! single-bit flips of valid envelopes decode to a typed error or a value —
//! never a panic, never an unbounded allocation.

use lash_core::ItemId;
use lash_index::{PatternHit, Query, QueryError, QueryReply};
use lash_obs::window::WindowStat;
use lash_serve::proto::{
    decode_inbound, decode_reply, decode_request, decode_response, encode_admin_request,
    encode_admin_response, encode_request, encode_response, AdminReply, AdminRequest, Inbound,
    ReplyBody, Request, Response,
};
use proptest::prelude::*;

fn ids(raw: &[u32]) -> Vec<ItemId> {
    raw.iter().map(|&v| ItemId::from_u32(v)).collect()
}

/// Builds one of the four query kinds from flattened fuzz inputs.
fn query_from(kind: u8, items: &[u32], n: u64, flag: bool) -> Query {
    match kind % 4 {
        0 => Query::Support { items: ids(items) },
        1 => Query::Enumerate {
            prefix: ids(items),
            limit: flag.then_some(n as usize),
        },
        2 => Query::TopK {
            prefix: ids(items),
            k: n as usize,
        },
        _ => Query::Generalized { items: ids(items) },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn requests_round_trip(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..20),
        n in any::<u64>(),
        flag in any::<bool>(),
    ) {
        let req = Request::new(id, query_from(kind, &items, n, flag));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        prop_assert_eq!(decode_request(&buf).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(
        id in any::<u64>(),
        hits in prop::collection::vec(
            (prop::collection::vec(any::<u32>(), 1..8), any::<u64>()),
            0..10,
        ),
    ) {
        let reply = QueryReply::Patterns(
            hits.iter()
                .map(|(items, f)| PatternHit { items: ids(items), frequency: *f })
                .collect(),
        );
        let resp = Response { id, reply };
        let mut buf = Vec::new();
        encode_response(&resp, &mut buf);
        prop_assert_eq!(decode_response(&buf).unwrap(), resp);
    }

    /// Arbitrary bytes never panic the request decoder, and failures are
    /// typed.
    #[test]
    fn byte_soup_decodes_totally(payload in prop::collection::vec(any::<u8>(), 0..200)) {
        match decode_request(&payload) {
            Ok(req) => prop_assert_eq!(req.version, lash_serve::ENVELOPE_VERSION),
            Err((_, e)) => prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            )),
        }
        // The response decoder is equally total.
        if let Err(e) = decode_response(&payload) {
            prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            ));
        }
    }

    /// Truncating a valid envelope at any point decodes totally (usually a
    /// typed error; a prefix that happens to be self-delimiting may still
    /// parse).
    #[test]
    fn truncations_decode_totally(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..12),
        cut in any::<u16>(),
    ) {
        let req = Request::new(id, query_from(kind, &items, 3, true));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let cut = cut as usize % (buf.len() + 1);
        let _ = decode_request(&buf[..cut]);
    }

    /// Flipping any single bit of a valid envelope decodes totally.
    #[test]
    fn bit_flips_decode_totally(
        id in any::<u64>(),
        kind in any::<u8>(),
        items in prop::collection::vec(any::<u32>(), 0..12),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let req = Request::new(id, query_from(kind, &items, 9, false));
        let mut buf = Vec::new();
        encode_request(&req, &mut buf);
        let i = byte as usize % buf.len();
        buf[i] ^= 1 << bit;
        let _ = decode_request(&buf);
    }
}

/// Builds one of the five admin request kinds from flattened fuzz inputs.
fn admin_request_from(kind: u8, n: u32, flag: bool) -> AdminRequest {
    match kind % 5 {
        0 => AdminRequest::Metrics,
        1 => AdminRequest::Health,
        2 => AdminRequest::SlowOps { max: n },
        3 => AdminRequest::RecentEvents { max: n },
        _ => AdminRequest::Profile { reset: flag },
    }
}

/// Printable-ASCII strings up to `max_len` bytes (the shimmed proptest has
/// no regex strategies).
fn ascii_string(max_len: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max_len)
        .prop_map(|bytes| bytes.into_iter().map(|b| b as char).collect())
}

/// Builds one of the four admin reply kinds from flattened fuzz inputs.
/// Each `stats` row is 7 values: window_us, count, sum, p50, p95, p99, max.
fn admin_reply_from(
    kind: u8,
    text: &str,
    lines: &[String],
    stats: &[Vec<u64>],
    a: u64,
    b: u64,
) -> AdminReply {
    match kind % 4 {
        0 => AdminReply::Metrics {
            text: text.to_string(),
            windows: stats
                .iter()
                .enumerate()
                .map(|(i, s)| WindowStat {
                    name: format!("metric_{i}"),
                    window_us: s[0],
                    count: s[1],
                    sum: s[2],
                    p50: s[3],
                    p95: s[4],
                    p99: s[5],
                    max: s[6],
                })
                .collect(),
        },
        1 => AdminReply::Health {
            phase: text.to_string(),
            fields: lines.iter().map(|l| (l.clone(), a)).collect(),
        },
        2 => AdminReply::Lines(lines.to_vec()),
        _ => AdminReply::Profile {
            hz: a,
            samples: b,
            folded: text.to_string(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn admin_requests_round_trip(
        id in any::<u64>(),
        kind in any::<u8>(),
        n in any::<u32>(),
        flag in any::<bool>(),
    ) {
        let req = admin_request_from(kind, n, flag);
        let mut buf = Vec::new();
        encode_admin_request(id, &req, &mut buf);
        match decode_inbound(&buf).unwrap() {
            Inbound::Admin(call) => {
                prop_assert_eq!(call.id, id);
                prop_assert_eq!(call.request, req);
            }
            Inbound::Query(_) => prop_assert!(false, "admin envelope decoded as a query"),
        }
    }

    #[test]
    fn admin_replies_round_trip(
        id in any::<u64>(),
        kind in any::<u8>(),
        text in ascii_string(80),
        lines in prop::collection::vec(ascii_string(40), 0..6),
        stats in prop::collection::vec(prop::collection::vec(any::<u64>(), 7..8), 0..4),
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let reply = admin_reply_from(kind, &text, &lines, &stats, a, b);
        let mut buf = Vec::new();
        encode_admin_response(id, &reply, &mut buf);
        let (rid, body) = decode_reply(&buf).unwrap();
        prop_assert_eq!(rid, id);
        prop_assert_eq!(body, ReplyBody::Admin(reply));
    }

    /// Arbitrary bytes never panic the inbound or reply decoders — the
    /// admin lane is as total as the query lane.
    #[test]
    fn admin_byte_soup_decodes_totally(payload in prop::collection::vec(any::<u8>(), 0..300)) {
        if let Err((_, e)) = decode_inbound(&payload) {
            prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            ));
        }
        if let Err(e) = decode_reply(&payload) {
            prop_assert!(matches!(
                e,
                QueryError::Malformed(_) | QueryError::UnsupportedVersion { .. }
            ));
        }
    }

    /// Truncating or bit-flipping a valid admin envelope (either
    /// direction) decodes totally.
    #[test]
    fn admin_mutations_decode_totally(
        id in any::<u64>(),
        kind in any::<u8>(),
        n in any::<u32>(),
        lines in prop::collection::vec(ascii_string(20), 0..4),
        cut in any::<u16>(),
        byte in any::<u16>(),
        bit in 0u8..8,
    ) {
        let req = admin_request_from(kind, n, false);
        let mut buf = Vec::new();
        encode_admin_request(id, &req, &mut buf);
        let cut_at = cut as usize % (buf.len() + 1);
        let _ = decode_inbound(&buf[..cut_at]);
        let i = byte as usize % buf.len();
        buf[i] ^= 1 << bit;
        let _ = decode_inbound(&buf);

        let reply = AdminReply::Lines(lines);
        let mut buf = Vec::new();
        encode_admin_response(id, &reply, &mut buf);
        let cut_at = cut as usize % (buf.len() + 1);
        let _ = decode_reply(&buf[..cut_at]);
        let i = byte as usize % buf.len();
        buf[i] ^= 1 << bit;
        let _ = decode_reply(&buf);
    }
}
