//! End-to-end daemon tests: a real listener on a loopback port, real
//! clients, refresh rounds racing query storms, and deliberately corrupted
//! byte streams that must come back as typed errors — never a hang, never
//! a panic, never a silently dropped request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lash_core::{GsmParams, ItemId, Lash, Vocabulary, VocabularyBuilder};
use lash_encoding::frame::{self, FrameChecksum};
use lash_index::{Query, QueryError, QueryReply};
use lash_serve::proto::{self, Request};
use lash_serve::{
    AdminReply, AdminRequest, Client, Lifecycle, ServeConfig, Server, MAGIC, PROTOCOL_VERSION,
};
use lash_store::{CorpusWriter, StoreOptions};

fn temp_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("lash-serve-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let b = vb.intern("B");
    let b1 = vb.child("b1", b);
    let b2 = vb.child("b2", b);
    let a = vb.intern("a");
    let c = vb.intern("c");
    (vb.finish().unwrap(), vec![a, b1, b2, c])
}

fn seed_sequences(items: &[ItemId], count: usize, salt: usize) -> Vec<Vec<ItemId>> {
    (0..count)
        .map(|i| {
            let len = 2 + (i + salt) % 3;
            (0..len)
                .map(|j| items[(i + j + salt) % items.len()])
                .collect()
        })
        .collect()
}

/// A daemon over a freshly seeded corpus, ready to serve.
fn boot(tag: &str, config: &ServeConfig) -> (Lifecycle, Server, PathBuf) {
    let root = temp_dir(tag);
    let corpus = root.join("corpus");
    let (vocab, items) = small_vocab();
    let mut writer = CorpusWriter::create(&corpus, &vocab, StoreOptions::default()).unwrap();
    for seq in seed_sequences(&items, 300, 0) {
        writer.append(&seq).unwrap();
    }
    writer.finish().unwrap();
    let lifecycle = Lifecycle::bootstrap(
        &corpus,
        root.join("index"),
        Lash::default(),
        GsmParams::new(2, 1, 4).unwrap(),
        config,
    )
    .unwrap();
    let server =
        Server::start_with_health(lifecycle.service(), config, lifecycle.health()).unwrap();
    (lifecycle, server, root)
}

#[test]
fn queries_over_tcp_match_in_process_execution() {
    let config = ServeConfig::default();
    let (lifecycle, server, root) = boot("e2e", &config);
    let service = lifecycle.service();
    let mut client = Client::connect(server.local_addr()).unwrap();

    let (_, items) = small_vocab();
    let queries = [
        Query::Enumerate {
            prefix: vec![],
            limit: None,
        },
        Query::TopK {
            prefix: vec![],
            k: 5,
        },
        Query::Support {
            items: vec![items[0]],
        },
        Query::Generalized {
            items: vec![items[1], items[3]],
        },
    ];
    for query in &queries {
        let remote = client.query(query).unwrap();
        let local = service.execute(query).unwrap();
        assert_eq!(remote, local, "wire answer diverged for {query:?}");
    }

    // An unknown item comes back as a typed error on a live connection…
    let reply = client
        .query(&Query::Support {
            items: vec![ItemId::from_u32(9999)],
        })
        .unwrap();
    assert_eq!(reply, QueryReply::Error(QueryError::UnknownItem(9999)));
    // …and the connection still answers afterwards.
    let reply = client
        .query(&Query::TopK {
            prefix: vec![],
            k: 1,
        })
        .unwrap();
    assert!(matches!(reply, QueryReply::Patterns(_)));

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// Raw-socket handshake helper for the corruption tests.
fn raw_handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut hello = [0u8; 5];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4] = PROTOCOL_VERSION;
    stream.write_all(&hello).unwrap();
    let mut ack = [0u8; 1];
    stream.read_exact(&mut ack).unwrap();
    assert_eq!(ack[0], PROTOCOL_VERSION);
    stream
}

fn read_reply(stream: &mut TcpStream) -> proto::Response {
    let mut buf = Vec::new();
    let len = frame::read_frame_into(stream, &mut buf, FrameChecksum::Fnv1a)
        .unwrap()
        .expect("a response frame");
    proto::decode_response(&buf[..len]).unwrap()
}

#[test]
fn corrupted_frame_gets_typed_error_then_close() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("corrupt", &config);
    let mut stream = raw_handshake(server.local_addr());

    // A valid frame with one payload bit flipped: the checksum must catch
    // it and the server must answer with a typed id-0 error, then close.
    let mut payload = Vec::new();
    proto::encode_request(
        &Request::new(
            7,
            Query::TopK {
                prefix: vec![],
                k: 1,
            },
        ),
        &mut payload,
    );
    let mut framed = Vec::new();
    frame::write_frame(&payload, &mut framed).unwrap();
    let flip = framed.len() - 5; // inside the payload, not the trailer
    framed[flip] ^= 0x01;
    stream.write_all(&framed).unwrap();
    // Close our write half so a server that (wrongly) kept reading would
    // hit EOF instead of hanging the test.
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let resp = read_reply(&mut stream);
    assert_eq!(resp.id, 0, "frame-level corruption has no request id");
    assert!(
        matches!(resp.reply, QueryReply::Error(QueryError::Malformed(_))),
        "{:?}",
        resp.reply
    );
    // The server closed its half: the stream drains to EOF.
    let mut rest = Vec::new();
    stream.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn truncated_frame_gets_typed_error() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("truncate", &config);
    let mut stream = raw_handshake(server.local_addr());

    let mut payload = Vec::new();
    proto::encode_request(
        &Request::new(
            3,
            Query::Enumerate {
                prefix: vec![],
                limit: None,
            },
        ),
        &mut payload,
    );
    let mut framed = Vec::new();
    frame::write_frame(&payload, &mut framed).unwrap();
    // Send only half the frame, then shut the write half: the server's
    // read sees EOF mid-frame — truncation, a typed error, then close.
    stream.write_all(&framed[..framed.len() / 2]).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let resp = read_reply(&mut stream);
    assert_eq!(resp.id, 0);
    assert!(matches!(
        resp.reply,
        QueryReply::Error(QueryError::Malformed(_))
    ));

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn envelope_garbage_keeps_the_connection_alive() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("envelope", &config);
    let mut stream = raw_handshake(server.local_addr());

    // A perfectly framed payload of garbage: envelope-level failure, so
    // the reply is typed AND the connection survives.
    frame::write_frame(&[0xFF, 0xFF, 0xFF], &mut stream).unwrap();
    let resp = read_reply(&mut stream);
    assert!(
        matches!(resp.reply, QueryReply::Error(_)),
        "{:?}",
        resp.reply
    );

    let mut payload = Vec::new();
    proto::encode_request(
        &Request::new(
            11,
            Query::TopK {
                prefix: vec![],
                k: 2,
            },
        ),
        &mut payload,
    );
    frame::write_frame(&payload, &mut stream).unwrap();
    let resp = read_reply(&mut stream);
    assert_eq!(resp.id, 11, "same connection answers after envelope error");
    assert!(matches!(resp.reply, QueryReply::Patterns(_)));

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn wrong_handshake_version_gets_typed_error() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("version", &config);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut hello = [0u8; 5];
    hello[..4].copy_from_slice(&MAGIC);
    hello[4] = PROTOCOL_VERSION + 9;
    stream.write_all(&hello).unwrap();

    let resp = read_reply(&mut stream);
    assert_eq!(
        resp.reply,
        QueryReply::Error(QueryError::UnsupportedVersion {
            requested: (PROTOCOL_VERSION + 9) as u32,
            serving: PROTOCOL_VERSION as u32,
        })
    );
    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The admin lane answers every request kind over TCP while the same
/// daemon serves queries on another connection — the operational plane's
/// acceptance bar.
#[test]
fn admin_lane_answers_while_serving_queries() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("admin", &config);
    let addr = server.local_addr();

    let mut query_client = Client::connect(addr).unwrap();
    let mut admin_client = Client::connect(addr).unwrap();
    for _ in 0..20 {
        let reply = query_client
            .query(&Query::TopK {
                prefix: vec![],
                k: 3,
            })
            .unwrap();
        assert!(matches!(reply, QueryReply::Patterns(_)));
    }

    match admin_client.admin(&AdminRequest::Metrics).unwrap() {
        AdminReply::Metrics { text, windows } => {
            assert!(
                text.contains("index_queries_served"),
                "metrics exposition misses the query counter:\n{text}"
            );
            assert!(
                windows.iter().any(|w| w.name == "query.requests"),
                "windowed readouts miss query.requests: {windows:?}"
            );
            assert!(
                windows
                    .iter()
                    .any(|w| w.name == "serve.queue.wait_us" && w.count > 0),
                "queue-wait window never saw a request: {windows:?}"
            );
        }
        other => panic!("expected a Metrics reply, got {other:?}"),
    }

    match admin_client.admin(&AdminRequest::Health).unwrap() {
        AdminReply::Health { phase, fields } => {
            assert_eq!(phase, "serving");
            let get = |key: &str| {
                fields
                    .iter()
                    .find(|(k, _)| k == key)
                    .map(|(_, v)| *v)
                    .unwrap_or_else(|| panic!("health reply misses {key}: {fields:?}"))
            };
            assert!(get("workers") >= 1);
            assert!(get("uptime_us") > 0);
            assert!(get("store_sequences") > 0);
            get("queue_depth");
            get("inflight");
            get("snapshot_age_us");
        }
        other => panic!("expected a Health reply, got {other:?}"),
    }

    match admin_client
        .admin(&AdminRequest::RecentEvents { max: 50 })
        .unwrap()
    {
        AdminReply::Lines(lines) => {
            assert!(!lines.is_empty(), "the ring must hold recent events");
            assert!(lines.len() <= 50);
            // Ring dumps are windows, not whole traces: schema-only mode.
            let (_, stats) =
                lash_obs::validate::validate_str_schema_only(&lines.join("\n")).unwrap();
            assert_eq!(stats.events as usize, lines.len());
        }
        other => panic!("expected a Lines reply, got {other:?}"),
    }

    match admin_client
        .admin(&AdminRequest::SlowOps { max: 5 })
        .unwrap()
    {
        AdminReply::Lines(lines) => assert!(lines.len() <= 5),
        other => panic!("expected a Lines reply, got {other:?}"),
    }

    match admin_client
        .admin(&AdminRequest::Profile { reset: false })
        .unwrap()
    {
        AdminReply::Profile { folded, .. } => {
            // The profiler thread may not be running under tests; the reply
            // must still be well-formed folded text (possibly empty).
            for line in folded.lines() {
                assert!(line.rsplit_once(' ').is_some(), "bad folded line: {line}");
            }
        }
        other => panic!("expected a Profile reply, got {other:?}"),
    }

    // The query connection is still alive after all the admin traffic.
    let reply = query_client
        .query(&Query::TopK {
            prefix: vec![],
            k: 1,
        })
        .unwrap();
    assert!(matches!(reply, QueryReply::Patterns(_)));

    // Queue instrumentation reached the lifetime metrics too.
    let snap = lash_obs::global()
        .histogram("serve.queue.wait_us")
        .snapshot();
    assert!(snap.count > 0, "queue-wait histogram never recorded");

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// A garbage admin envelope (valid frame, undecodable body) must come back
/// as a typed error and leave the connection serving both lanes.
#[test]
fn garbage_admin_envelope_keeps_connection_serving() {
    let config = ServeConfig::default();
    let (_lifecycle, server, root) = boot("admin-garbage", &config);
    let mut stream = raw_handshake(server.local_addr());

    // Envelope version + id + an admin tag (0x12 = SlowOps) with its max
    // count missing: decodes to Malformed on the admin path.
    let mut payload = Vec::new();
    proto::encode_admin_request(9, &AdminRequest::SlowOps { max: 3 }, &mut payload);
    payload.truncate(payload.len() - 1);
    frame::write_frame(&payload, &mut stream).unwrap();
    let resp = read_reply(&mut stream);
    assert!(
        matches!(resp.reply, QueryReply::Error(QueryError::Malformed(_))),
        "{:?}",
        resp.reply
    );

    // Same connection: a well-formed admin request still answers…
    let mut payload = Vec::new();
    proto::encode_admin_request(10, &AdminRequest::Health, &mut payload);
    frame::write_frame(&payload, &mut stream).unwrap();
    let mut buf = Vec::new();
    let len = frame::read_frame_into(&mut stream, &mut buf, FrameChecksum::Fnv1a)
        .unwrap()
        .expect("an admin reply frame");
    let (id, body) = proto::decode_reply(&buf[..len]).unwrap();
    assert_eq!(id, 10);
    assert!(matches!(
        body,
        proto::ReplyBody::Admin(AdminReply::Health { .. })
    ));

    // …and so does a query.
    let mut payload = Vec::new();
    proto::encode_request(
        &Request::new(
            11,
            Query::TopK {
                prefix: vec![],
                k: 1,
            },
        ),
        &mut payload,
    );
    frame::write_frame(&payload, &mut stream).unwrap();
    let resp = read_reply(&mut stream);
    assert_eq!(resp.id, 11);
    assert!(matches!(resp.reply, QueryReply::Patterns(_)));

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}

/// The acceptance bar in miniature: concurrent clients hammer the daemon
/// while the lifecycle keeps ingesting, compacting, and swapping; every
/// request gets a non-error answer.
#[test]
fn query_storm_across_refresh_rounds_loses_nothing() {
    let config = ServeConfig::default().with_worker_threads(2);
    let (mut lifecycle, server, root) = boot("storm", &config);
    let addr = server.local_addr();
    let (_, items) = small_vocab();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for t in 0..4 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let reply = client
                    .query(&Query::TopK {
                        prefix: vec![],
                        k: 1 + t,
                    })
                    .expect("transport must survive refresh rounds");
                assert!(
                    matches!(reply, QueryReply::Patterns(_)),
                    "query failed mid-storm: {reply:?}"
                );
                answered += 1;
            }
            answered
        }));
    }

    // Refresh rounds race the storm: ingest, compact (rate-limited), mine,
    // swap — the storm must never observe an error.
    for round in 1..=3u64 {
        let batch = seed_sequences(&items, 120, round as usize);
        let refs: Vec<&[ItemId]> = batch.iter().map(Vec::as_slice).collect();
        lifecycle.ingest(refs).unwrap();
        let stats = lifecycle.refresh().unwrap();
        assert_eq!(stats.round, round);
        assert!(stats.patterns > 0);
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients.into_iter().map(|c| c.join().unwrap()).sum();
    assert!(total > 0, "the storm must actually have run");

    server.shutdown();
    std::fs::remove_dir_all(&root).unwrap();
}
