//! The daemon's refresh half: one [`Lifecycle`] owns a corpus directory
//! and an index root, and drives ingest → seal → compact → mine → index →
//! [`QueryService::swap`] rounds while the [`crate::Server`] answers
//! queries against whatever snapshot is current.
//!
//! The interlock with the store layer is what makes this safe to run
//! *beside* serving:
//!
//! - Compaction is **snapshot-safe**: any `CorpusReader` opened by a miner
//!   (or anyone else) pins its generation set; compaction defers deleting
//!   replaced directories until the last pin drops.
//! - Compaction is **rate-limited**: the round's merge I/O is capped at
//!   [`crate::ServeConfig::compaction_bytes_per_sec`], so a background
//!   merge cannot starve the serving threads.
//! - Index swap is **atomic**: in-flight batches finish on the snapshot
//!   they started with; the replaced index directory is deleted
//!   immediately (a [`lash_index::PatternIndexReader`] loads fully into
//!   memory at open, so live snapshots never touch its files again).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lash_core::{GsmParams, ItemId, Lash};
use lash_index::{PatternIndexReader, QueryService};
use lash_store::compact::{self, CompactionConfig, CompactionStats};
use lash_store::{CorpusReader, IncrementalWriter};

use crate::{Result, ServeConfig};

/// What one [`Lifecycle::refresh`] round did.
#[derive(Debug, Clone, Default)]
pub struct RefreshStats {
    /// The round number (bootstrap is round 0).
    pub round: u64,
    /// Sequences in the corpus snapshot that was mined.
    pub sequences: u64,
    /// Patterns mined and indexed.
    pub patterns: u64,
    /// What compaction did this round, when it ran.
    pub compaction: Option<CompactionStats>,
}

/// Drives the ingest → compact → mine → index → swap loop for one corpus.
pub struct Lifecycle {
    corpus_dir: PathBuf,
    index_root: PathBuf,
    service: Arc<QueryService>,
    lash: Lash,
    params: GsmParams,
    compaction: CompactionConfig,
    round: u64,
    live_index: PathBuf,
}

impl Lifecycle {
    /// Mines the existing corpus at `corpus_dir` once, lays the result out
    /// as `index_root/index-0`, and wraps it in a fresh [`QueryService`].
    pub fn bootstrap(
        corpus_dir: impl AsRef<Path>,
        index_root: impl AsRef<Path>,
        lash: Lash,
        params: GsmParams,
        config: &ServeConfig,
    ) -> Result<Lifecycle> {
        let corpus_dir = corpus_dir.as_ref().to_path_buf();
        let index_root = index_root.as_ref().to_path_buf();
        std::fs::create_dir_all(&index_root)?;
        let compaction =
            CompactionConfig::default().with_merge_rate_limit(config.compaction_bytes_per_sec);
        let (live_index, _, _) = mine_and_index(&corpus_dir, &index_root, &lash, &params, 0)?;
        let service = Arc::new(QueryService::new(PatternIndexReader::open(&live_index)?));
        Ok(Lifecycle {
            corpus_dir,
            index_root,
            service,
            lash,
            params,
            compaction,
            round: 0,
            live_index,
        })
    }

    /// The serving handle — hand this to [`crate::Server::start`]. Swaps
    /// performed by [`Lifecycle::refresh`] are visible to every holder.
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// The corpus directory this lifecycle ingests into.
    pub fn corpus_dir(&self) -> &Path {
        &self.corpus_dir
    }

    /// Appends `sequences` as one sealed generation. Returns how many were
    /// written.
    pub fn ingest<'a>(&mut self, sequences: impl IntoIterator<Item = &'a [ItemId]>) -> Result<u64> {
        let mut writer = IncrementalWriter::open(&self.corpus_dir)?;
        let mut appended = 0u64;
        for seq in sequences {
            writer.append(seq)?;
            appended += 1;
        }
        writer.finish()?;
        Ok(appended)
    }

    /// One refresh round: compact (rate-limited, snapshot-safe), re-mine,
    /// write the next index generation, swap it live, delete the replaced
    /// index directory.
    pub fn refresh(&mut self) -> Result<RefreshStats> {
        self.round += 1;
        let round = self.round;
        let _span = lash_obs::span!("serve.refresh", round = round);

        let compaction = compact::compact(&self.corpus_dir, &self.compaction)?;
        let (new_dir, sequences, patterns) = mine_and_index(
            &self.corpus_dir,
            &self.index_root,
            &self.lash,
            &self.params,
            round,
        )?;
        self.service.swap(PatternIndexReader::open(&new_dir)?);
        // The replaced index loaded fully into memory at open: snapshots
        // still serving it never re-read its files, so the directory can
        // go now rather than waiting for the last snapshot to drop.
        let old = std::mem::replace(&mut self.live_index, new_dir);
        let _ = std::fs::remove_dir_all(old);

        lash_obs::global().emit_event(
            "refresh",
            "serve.refresh",
            &[
                ("round", round.into()),
                ("sequences", sequences.into()),
                ("patterns", patterns.into()),
            ],
        );
        Ok(RefreshStats {
            round,
            sequences,
            patterns,
            compaction,
        })
    }
}

/// Mines the corpus and writes `index_root/index-<round>`, replacing any
/// stale directory of the same name from a crashed earlier run.
fn mine_and_index(
    corpus_dir: &Path,
    index_root: &Path,
    lash: &Lash,
    params: &GsmParams,
    round: u64,
) -> Result<(PathBuf, u64, u64)> {
    let reader = CorpusReader::open(corpus_dir)?;
    let result = reader.mine(lash, params)?;
    let patterns = result.patterns();
    let dir = index_root.join(format!("index-{round}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    lash_index::write_patterns(&dir, reader.vocabulary(), patterns)?;
    Ok((dir, reader.len(), patterns.len() as u64))
}
