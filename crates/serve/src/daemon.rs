//! The daemon's refresh half: one [`Lifecycle`] owns a corpus directory
//! and an index root, and drives ingest → seal → compact → mine → index →
//! [`QueryService::swap`] rounds while the [`crate::Server`] answers
//! queries against whatever snapshot is current.
//!
//! The interlock with the store layer is what makes this safe to run
//! *beside* serving:
//!
//! - Compaction is **snapshot-safe**: any `CorpusReader` opened by a miner
//!   (or anyone else) pins its generation set; compaction defers deleting
//!   replaced directories until the last pin drops.
//! - Compaction is **rate-limited**: the round's merge I/O is capped at
//!   [`crate::ServeConfig::compaction_bytes_per_sec`], so a background
//!   merge cannot starve the serving threads.
//! - Index swap is **atomic**: in-flight batches finish on the snapshot
//!   they started with; the replaced index directory is deleted
//!   immediately (a [`lash_index::PatternIndexReader`] loads fully into
//!   memory at open, so live snapshots never touch its files again).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use lash_core::{GsmParams, ItemId, Lash};
use lash_index::{PatternIndexReader, QueryService};
use lash_store::compact::{self, CompactionConfig, CompactionStats};
use lash_store::{CorpusReader, IncrementalWriter};

use crate::ops::{HealthState, Phase};
use crate::{Result, ServeConfig};

/// What one [`Lifecycle::refresh`] round did.
#[derive(Debug, Clone, Default)]
pub struct RefreshStats {
    /// The round number (bootstrap is round 0).
    pub round: u64,
    /// Sequences in the corpus snapshot that was mined.
    pub sequences: u64,
    /// Patterns mined and indexed.
    pub patterns: u64,
    /// What compaction did this round, when it ran.
    pub compaction: Option<CompactionStats>,
}

/// Drives the ingest → compact → mine → index → swap loop for one corpus.
pub struct Lifecycle {
    corpus_dir: PathBuf,
    index_root: PathBuf,
    service: Arc<QueryService>,
    lash: Lash,
    params: GsmParams,
    compaction: CompactionConfig,
    round: u64,
    live_index: PathBuf,
    health: Arc<HealthState>,
}

impl Lifecycle {
    /// Mines the existing corpus at `corpus_dir` once, lays the result out
    /// as `index_root/index-0`, and wraps it in a fresh [`QueryService`].
    pub fn bootstrap(
        corpus_dir: impl AsRef<Path>,
        index_root: impl AsRef<Path>,
        lash: Lash,
        params: GsmParams,
        config: &ServeConfig,
    ) -> Result<Lifecycle> {
        let corpus_dir = corpus_dir.as_ref().to_path_buf();
        let index_root = index_root.as_ref().to_path_buf();
        std::fs::create_dir_all(&index_root)?;
        let compaction =
            CompactionConfig::default().with_merge_rate_limit(config.compaction_bytes_per_sec);
        let health = Arc::new(HealthState::new());
        let (live_index, _, _) =
            mine_and_index(&corpus_dir, &index_root, &lash, &params, 0, &health)?;
        let service = Arc::new(QueryService::new(PatternIndexReader::open(&live_index)?));
        health.record_swap(0);
        health.set_phase(Phase::Serving);
        Ok(Lifecycle {
            corpus_dir,
            index_root,
            service,
            lash,
            params,
            compaction,
            round: 0,
            live_index,
            health,
        })
    }

    /// The serving handle — hand this to [`crate::Server::start`]. Swaps
    /// performed by [`Lifecycle::refresh`] are visible to every holder.
    pub fn service(&self) -> Arc<QueryService> {
        Arc::clone(&self.service)
    }

    /// The live health state this lifecycle publishes into — hand this to
    /// [`crate::Server::start_with_health`] so the admin lane's `Health`
    /// reply reports lifecycle phase, snapshot age, and throttle state.
    pub fn health(&self) -> Arc<HealthState> {
        Arc::clone(&self.health)
    }

    /// The corpus directory this lifecycle ingests into.
    pub fn corpus_dir(&self) -> &Path {
        &self.corpus_dir
    }

    /// Appends `sequences` as one sealed generation. Returns how many were
    /// written.
    pub fn ingest<'a>(&mut self, sequences: impl IntoIterator<Item = &'a [ItemId]>) -> Result<u64> {
        self.health.set_phase(Phase::Ingest);
        let result = (|| {
            let mut writer = IncrementalWriter::open(&self.corpus_dir)?;
            let mut appended = 0u64;
            for seq in sequences {
                writer.append(seq)?;
                appended += 1;
            }
            writer.finish()?;
            Ok(appended)
        })();
        self.health.set_phase(Phase::Serving);
        result
    }

    /// One refresh round: compact (rate-limited, snapshot-safe), re-mine,
    /// write the next index generation, swap it live, delete the replaced
    /// index directory.
    pub fn refresh(&mut self) -> Result<RefreshStats> {
        self.round += 1;
        let round = self.round;
        let _span = lash_obs::span!("serve.refresh", round = round);
        self.health.set_round(round);

        self.health.set_phase(Phase::Compact);
        let compaction = compact::compact(&self.corpus_dir, &self.compaction)?;
        if let Some(stats) = &compaction {
            self.health
                .add_throttle_wait_us(stats.throttle_wait.as_micros().min(u64::MAX as u128) as u64);
        }
        let (new_dir, sequences, patterns) = mine_and_index(
            &self.corpus_dir,
            &self.index_root,
            &self.lash,
            &self.params,
            round,
            &self.health,
        )?;
        self.health.set_phase(Phase::Swap);
        self.service.swap(PatternIndexReader::open(&new_dir)?);
        self.health.record_swap(round);
        // The replaced index loaded fully into memory at open: snapshots
        // still serving it never re-read its files, so the directory can
        // go now rather than waiting for the last snapshot to drop.
        let old = std::mem::replace(&mut self.live_index, new_dir);
        let _ = std::fs::remove_dir_all(old);

        lash_obs::global().emit_event(
            "refresh",
            "serve.refresh",
            &[
                ("round", round.into()),
                ("sequences", sequences.into()),
                ("patterns", patterns.into()),
            ],
        );
        self.health.set_phase(Phase::Serving);
        // Each round is one lifecycle "flight": re-arm the recorder so the
        // first error of the *next* round can dump its own context.
        lash_obs::flight::rearm();
        Ok(RefreshStats {
            round,
            sequences,
            patterns,
            compaction,
        })
    }
}

/// Mines the corpus and writes `index_root/index-<round>`, replacing any
/// stale directory of the same name from a crashed earlier run.
fn mine_and_index(
    corpus_dir: &Path,
    index_root: &Path,
    lash: &Lash,
    params: &GsmParams,
    round: u64,
    health: &HealthState,
) -> Result<(PathBuf, u64, u64)> {
    health.set_phase(Phase::Mine);
    let reader = CorpusReader::open(corpus_dir)?;
    health.set_store(reader.num_generations() as u64, reader.len());
    let result = reader.mine(lash, params)?;
    let patterns = result.patterns();
    health.set_phase(Phase::Index);
    let dir = index_root.join(format!("index-{round}"));
    if dir.exists() {
        std::fs::remove_dir_all(&dir)?;
    }
    lash_index::write_patterns(&dir, reader.vocabulary(), patterns)?;
    Ok((dir, reader.len(), patterns.len() as u64))
}
