//! Daemon health state: the lifecycle publishes what it is doing
//! ([`Phase`], snapshot generation/age, store shape, cumulative compaction
//! throttle wait) into one lock-free [`HealthState`], and the server's
//! admin lane reads it to answer `Health` — so "what is the daemon doing"
//! is answerable even while a refresh round is mid-compaction and the
//! worker pool is saturated.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// What the lifecycle is doing right now. `Serving` is the steady state
/// between rounds; the others name the active step of a bootstrap or
/// refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// No lifecycle attached (a bare [`crate::Server`]), or not started.
    Idle = 0,
    /// Appending sequences to the corpus.
    Ingest = 1,
    /// Merging store generations (rate-limited, snapshot-safe).
    Compact = 2,
    /// Re-mining the corpus.
    Mine = 3,
    /// Writing the next index generation.
    Index = 4,
    /// Swapping the new snapshot live.
    Swap = 5,
    /// Between rounds: queries are answered, no refresh step is active.
    Serving = 6,
}

impl Phase {
    /// The phase's wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::Ingest => "ingest",
            Phase::Compact => "compact",
            Phase::Mine => "mine",
            Phase::Index => "index",
            Phase::Swap => "swap",
            Phase::Serving => "serving",
        }
    }

    fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::Ingest,
            2 => Phase::Compact,
            3 => Phase::Mine,
            4 => Phase::Index,
            5 => Phase::Swap,
            6 => Phase::Serving,
            _ => Phase::Idle,
        }
    }
}

/// The daemon's live health gauges. One instance is shared between the
/// [`crate::Lifecycle`] (writer) and the [`crate::Server`]'s admin lane
/// (reader); every field is an atomic, so neither side ever blocks the
/// other.
#[derive(Debug)]
pub struct HealthState {
    started: Instant,
    phase: AtomicU8,
    round: AtomicU64,
    snapshot_generation: AtomicU64,
    snapshot_at_us: AtomicU64,
    store_generations: AtomicU64,
    store_sequences: AtomicU64,
    throttle_wait_us: AtomicU64,
}

impl Default for HealthState {
    fn default() -> HealthState {
        HealthState::new()
    }
}

impl HealthState {
    /// A fresh state in [`Phase::Idle`], with the uptime clock started.
    pub fn new() -> HealthState {
        HealthState {
            started: Instant::now(),
            phase: AtomicU8::new(Phase::Idle as u8),
            round: AtomicU64::new(0),
            snapshot_generation: AtomicU64::new(0),
            snapshot_at_us: AtomicU64::new(0),
            store_generations: AtomicU64::new(0),
            store_sequences: AtomicU64::new(0),
            throttle_wait_us: AtomicU64::new(0),
        }
    }

    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Microseconds since this state was created (daemon start).
    pub fn uptime_us(&self) -> u64 {
        self.now_us()
    }

    /// Publishes the current lifecycle phase.
    pub fn set_phase(&self, phase: Phase) {
        self.phase.store(phase as u8, Ordering::Release);
    }

    /// The current lifecycle phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::Acquire))
    }

    /// Publishes the refresh round being (or just) run.
    pub fn set_round(&self, round: u64) {
        self.round.store(round, Ordering::Relaxed);
    }

    /// Records that index generation `generation` was swapped live now —
    /// resets the snapshot-age clock.
    pub fn record_swap(&self, generation: u64) {
        self.snapshot_generation
            .store(generation, Ordering::Relaxed);
        self.snapshot_at_us.store(self.now_us(), Ordering::Relaxed);
    }

    /// Microseconds since the serving snapshot was swapped live (the
    /// daemon's data freshness). Zero before the first swap is recorded.
    pub fn snapshot_age_us(&self) -> u64 {
        self.now_us()
            .saturating_sub(self.snapshot_at_us.load(Ordering::Relaxed))
    }

    /// Publishes the store's shape (generation and sequence counts) after
    /// an open, seal, or compaction.
    pub fn set_store(&self, generations: u64, sequences: u64) {
        self.store_generations.store(generations, Ordering::Relaxed);
        self.store_sequences.store(sequences, Ordering::Relaxed);
    }

    /// Adds one round's compaction throttle wait to the cumulative total
    /// (how long the rate limiter held the merge back — the "is compaction
    /// throttled" signal).
    pub fn add_throttle_wait_us(&self, us: u64) {
        self.throttle_wait_us.fetch_add(us, Ordering::Relaxed);
    }

    /// The lifecycle-side health fields, as `Health` reply rows. The
    /// server appends its own (queue depth, inflight, workers, request
    /// counters) before answering.
    pub fn fields(&self) -> Vec<(String, u64)> {
        [
            ("uptime_us", self.uptime_us()),
            ("round", self.round.load(Ordering::Relaxed)),
            (
                "snapshot_generation",
                self.snapshot_generation.load(Ordering::Relaxed),
            ),
            ("snapshot_age_us", self.snapshot_age_us()),
            (
                "store_generations",
                self.store_generations.load(Ordering::Relaxed),
            ),
            (
                "store_sequences",
                self.store_sequences.load(Ordering::Relaxed),
            ),
            (
                "throttle_wait_us",
                self.throttle_wait_us.load(Ordering::Relaxed),
            ),
        ]
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_round_trip_and_name() {
        for phase in [
            Phase::Idle,
            Phase::Ingest,
            Phase::Compact,
            Phase::Mine,
            Phase::Index,
            Phase::Swap,
            Phase::Serving,
        ] {
            assert_eq!(Phase::from_u8(phase as u8), phase);
            assert!(!phase.name().is_empty());
        }
        let state = HealthState::new();
        assert_eq!(state.phase(), Phase::Idle);
        state.set_phase(Phase::Compact);
        assert_eq!(state.phase(), Phase::Compact);
    }

    #[test]
    fn fields_carry_the_published_values() {
        let state = HealthState::new();
        state.set_round(3);
        state.record_swap(2);
        state.set_store(4, 1000);
        state.add_throttle_wait_us(250);
        state.add_throttle_wait_us(250);
        let fields = state.fields();
        let get = |key: &str| {
            fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("round"), 3);
        assert_eq!(get("snapshot_generation"), 2);
        assert_eq!(get("store_generations"), 4);
        assert_eq!(get("store_sequences"), 1000);
        assert_eq!(get("throttle_wait_us"), 500);
    }
}
