//! `lash-serve`: a long-lived query daemon over the pattern index.
//!
//! The pieces below turn the in-process [`lash_index::QueryService`] into a
//! network service without changing its semantics:
//!
//! - [`proto`] — a versioned, length-prefixed, checksummed wire protocol
//!   (the same frame layout the store's segment files use), with typed
//!   [`lash_index::QueryError`] replies instead of dropped connections.
//! - [`server`] — a small thread-per-core accept/worker pool that batches
//!   queued requests and answers each batch against **one** index snapshot,
//!   amortizing snapshot acquisition across the batch.
//! - [`client`] — a minimal blocking client speaking the same protocol,
//!   used by the examples, the saturation bench, and the tests.
//! - [`daemon`] — the refresh lifecycle: ingest → seal → compact (pinned
//!   readers keep their snapshots; see `lash-store`'s generation pinning) →
//!   mine → index → [`lash_index::QueryService::swap`], continuously,
//!   while the server answers queries.
//! - [`ops`] — the daemon's live health state ([`HealthState`]): the
//!   lifecycle publishes its phase, snapshot age, and throttle state; the
//!   server's *admin lane* ([`proto::AdminRequest`], answered on reader
//!   threads, never queued behind query batches) reads it to serve
//!   `Health`, alongside `Metrics`, `SlowOps`, `RecentEvents`, and
//!   `Profile`.
//!
//! Configuration follows the workspace's builder convention
//! ([`ServeConfig`], cf. `StoreOptions` / `EngineConfig`): plain `pub`
//! fields plus chainable `with_*` setters that clamp into valid ranges.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

pub mod client;
pub mod daemon;
pub mod ops;
pub mod proto;
pub mod server;

pub use client::Client;
pub use daemon::Lifecycle;
pub use ops::{HealthState, Phase};
pub use proto::{
    AdminCall, AdminReply, AdminRequest, Inbound, ReplyBody, Request, Response, ENVELOPE_VERSION,
    MAGIC, PROTOCOL_VERSION,
};
pub use server::Server;

/// Everything the daemon layer can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or filesystem error.
    Io(std::io::Error),
    /// A configuration value rejected at startup.
    InvalidConfig(&'static str),
    /// The store layer failed during a lifecycle round.
    Store(lash_store::StoreError),
    /// The index layer failed during a lifecycle round.
    Index(lash_index::IndexError),
    /// Mining failed during a lifecycle round.
    Mine(lash_core::error::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve i/o error: {e}"),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve configuration: {msg}"),
            ServeError::Store(e) => write!(f, "serve store error: {e}"),
            ServeError::Index(e) => write!(f, "serve index error: {e}"),
            ServeError::Mine(e) => write!(f, "serve mining error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::InvalidConfig(_) => None,
            ServeError::Store(e) => Some(e),
            ServeError::Index(e) => Some(e),
            ServeError::Mine(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<lash_store::StoreError> for ServeError {
    fn from(e: lash_store::StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<lash_index::IndexError> for ServeError {
    fn from(e: lash_index::IndexError) -> Self {
        ServeError::Index(e)
    }
}

impl From<lash_core::error::Error> for ServeError {
    fn from(e: lash_core::error::Error) -> Self {
        ServeError::Mine(e)
    }
}

/// Result alias for the serve layer.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Daemon configuration: where to listen, how wide the worker pool is, how
/// long a worker waits to grow a batch, and how hard background compaction
/// may hit the disk while serving.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The address the listener binds (`"127.0.0.1:0"` picks a free port;
    /// [`Server::local_addr`](crate::server::Server::local_addr) reports
    /// the choice).
    pub addr: String,
    /// Worker threads answering query batches; `0` (the default) uses one
    /// per available core, capped at 8.
    pub worker_threads: usize,
    /// After picking up the first queued request, a worker waits at most
    /// this long for more to join the batch. Zero disables batching
    /// entirely (every request is its own batch).
    pub batch_window: Duration,
    /// Upper bound on requests answered per batch (clamped to ≥ 1).
    pub batch_max: usize,
    /// Byte-rate budget handed to background compaction
    /// ([`lash_store::compact::CompactionConfig::merge_bytes_per_sec`]) so
    /// a merge round cannot starve serving threads. `None` compacts
    /// unthrottled.
    pub compaction_bytes_per_sec: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: 0,
            batch_window: Duration::from_micros(500),
            batch_max: 64,
            compaction_bytes_per_sec: Some(64 * 1024 * 1024),
        }
    }
}

impl ServeConfig {
    /// Sets the bind address.
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Sets the worker-thread count (`0` = one per available core, ≤ 8).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n;
        self
    }

    /// Sets how long a worker waits to grow a batch past its first request.
    pub fn with_batch_window(mut self, window: Duration) -> Self {
        self.batch_window = window;
        self
    }

    /// Sets the per-batch request cap (clamped to ≥ 1).
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Sets (or clears) the background-compaction byte-rate budget.
    pub fn with_compaction_rate_limit(mut self, bytes_per_sec: Option<u64>) -> Self {
        self.compaction_bytes_per_sec = bytes_per_sec.map(|b| b.max(1));
        self
    }

    /// The effective worker count.
    pub(crate) fn effective_workers(&self) -> usize {
        if self.worker_threads != 0 {
            return self.worker_threads;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
    }
}
