//! A minimal blocking client for the daemon protocol: handshake, send
//! framed requests, read framed responses. One [`Client`] is one
//! connection; it is deliberately not thread-safe (clone connections, not
//! clients) — the examples, the saturation bench, and the tests all drive
//! one client per thread.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use lash_encoding::frame::{self, FrameChecksum};
use lash_index::{Query, QueryError, QueryReply};

use crate::proto::{self, AdminReply, AdminRequest, ReplyBody, Request, Response};
use crate::proto::{MAGIC, PROTOCOL_VERSION};

/// A connected, handshaken client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
    scratch: Vec<u8>,
    next_id: u64,
}

fn io_invalid(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connects and performs the protocol handshake.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        // Request/response frames are small; leaving Nagle on couples the
        // send side to the peer's delayed ACKs and caps a pipelined client
        // at ~25 batches/s regardless of how fast the server answers.
        stream.set_nodelay(true)?;
        let mut hello = [0u8; 5];
        hello[..4].copy_from_slice(&MAGIC);
        hello[4] = PROTOCOL_VERSION;
        stream.write_all(&hello)?;
        let mut ack = [0u8; 1];
        stream.read_exact(&mut ack)?;
        if ack[0] != PROTOCOL_VERSION {
            return Err(io_invalid(format!(
                "server answered handshake with version {}, client speaks {}",
                ack[0], PROTOCOL_VERSION
            )));
        }
        Ok(Client {
            stream,
            buf: Vec::new(),
            scratch: Vec::new(),
            next_id: 1,
        })
    }

    /// Sends a request without waiting for its reply (pipelining). Returns
    /// the id the eventual [`Response`] will carry.
    pub fn send(&mut self, query: &Query) -> std::io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        let req = Request::new(id, query.clone());
        proto::encode_request(&req, &mut self.scratch);
        frame::write_frame(&self.scratch, &mut self.stream)?;
        Ok(id)
    }

    /// Reads the next response off the wire, in server order.
    pub fn recv(&mut self) -> std::io::Result<Response> {
        match frame::read_frame_into(&mut self.stream, &mut self.buf, FrameChecksum::Fnv1a)? {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(len) => proto::decode_response(&self.buf[..len])
                .map_err(|e| io_invalid(format!("undecodable response: {e}"))),
        }
    }

    /// Sends one query and waits for its reply — the simple call shape.
    /// Protocol-level failures come back as `Ok(QueryReply::Error(..))`;
    /// only transport failures are `Err`.
    pub fn query(&mut self, query: &Query) -> std::io::Result<QueryReply> {
        let id = self.send(query)?;
        let resp = self.recv()?;
        if resp.id != id && !matches!(resp.reply, QueryReply::Error(_)) {
            return Err(io_invalid(format!(
                "response id {} does not match request id {id}",
                resp.id
            )));
        }
        Ok(resp.reply)
    }

    /// Like [`Client::query`], but flattens protocol errors into
    /// [`QueryError`] for callers that want one error channel.
    pub fn query_checked(
        &mut self,
        query: &Query,
    ) -> std::io::Result<std::result::Result<QueryReply, QueryError>> {
        Ok(match self.query(query)? {
            QueryReply::Error(e) => Err(e),
            reply => Ok(reply),
        })
    }

    /// Sends one admin request and waits for its reply. Call-and-response
    /// only: do not interleave with pipelined [`Client::send`]s whose
    /// replies are still outstanding (ops tooling uses a dedicated
    /// connection; so should you).
    pub fn admin(&mut self, request: &AdminRequest) -> std::io::Result<AdminReply> {
        let id = self.next_id;
        self.next_id += 1;
        proto::encode_admin_request(id, request, &mut self.scratch);
        frame::write_frame(&self.scratch, &mut self.stream)?;
        match frame::read_frame_into(&mut self.stream, &mut self.buf, FrameChecksum::Fnv1a)? {
            None => Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Some(len) => match proto::decode_reply(&self.buf[..len])
                .map_err(|e| io_invalid(format!("undecodable admin reply: {e}")))?
            {
                (rid, ReplyBody::Admin(reply)) if rid == id => Ok(reply),
                (rid, ReplyBody::Admin(_)) => Err(io_invalid(format!(
                    "admin reply id {rid} does not match request id {id}"
                ))),
                (_, ReplyBody::Query(QueryReply::Error(e))) => {
                    Err(io_invalid(format!("server rejected admin request: {e}")))
                }
                (rid, ReplyBody::Query(_)) => Err(io_invalid(format!(
                    "query reply {rid} arrived where an admin reply was expected"
                ))),
            },
        }
    }
}
