//! The wire protocol: versioned, checksummed request/response envelopes
//! over a byte stream.
//!
//! A connection opens with a 5-byte handshake — the [`MAGIC`] bytes plus
//! one protocol-version byte — which the server answers with its own
//! version byte before any frames flow. After the handshake, every message
//! in either direction is one `lash-encoding` frame (varint length prefix,
//! payload, FNV-1a checksum trailer — the exact frame layout segment files
//! use, so corruption detection is shared with the store).
//!
//! Frame payloads are **envelopes**. Inbound envelopes carry either a
//! *query* (tags `0x01..=0x04`, executed by the worker pool) or an *admin*
//! request (tags `0x10..=0x14`, answered inline on the connection's reader
//! thread — the dedicated ops lane, never queued behind query batches):
//!
//! ```text
//! request  := envelope_version:u32v  id:u64v  (query | admin)
//! query    := 0x01 items                         (Support)
//!           | 0x02 items (0x00 | 0x01 limit:u64v) (Enumerate)
//!           | 0x03 items k:u64v                  (TopK)
//!           | 0x04 items                         (Generalized)
//! admin    := 0x10                                (Metrics)
//!           | 0x11                                (Health)
//!           | 0x12 max:u32v                       (SlowOps)
//!           | 0x13 max:u32v                       (RecentEvents)
//!           | 0x14 reset:u8                       (Profile)
//! items    := count:u32v  item:u32v ...
//!
//! response := envelope_version:u32v  id:u64v  reply
//! reply    := 0x01 (0x00 | 0x01 support:u64v)    (Support)
//!           | 0x02 count:u32v hit ...            (Patterns)
//!           | 0x03 error                          (Error)
//!           | 0x04 adminreply                     (Admin)
//! hit      := items  frequency:u64v
//! error    := 0x01 item:u32v                      (UnknownItem)
//!           | 0x02 msg                            (Malformed)
//!           | 0x03 requested:u32v serving:u32v    (UnsupportedVersion)
//!           | 0x04 msg                            (Internal)
//! adminreply := 0x01 text count:u32v window ...   (Metrics)
//!           | 0x02 msg count:u32v field ...       (Health: phase, gauges)
//!           | 0x03 count:u32v text ...            (Lines)
//!           | 0x04 hz:u64v samples:u64v text      (Profile: folded stacks)
//! window   := msg window_us:u64v count:u64v sum:u64v
//!             p50:u64v p95:u64v p99:u64v max:u64v
//! field    := msg value:u64v
//! msg      := len:u32v utf8-bytes                 (≤ 4 KiB)
//! text     := len:u32v utf8-bytes                 (≤ 1 MiB)
//! ```
//!
//! Decoding is **total**: any byte sequence either decodes or fails with a
//! typed [`QueryError::Malformed`] — never a panic, never unbounded
//! allocation (every count is validated against the bytes actually
//! present before reserving). A request whose id was readable before the
//! rest went bad fails with that id attached, so the server can answer the
//! right in-flight request with the error.

use lash_encoding::varint;
use lash_index::{PatternHit, Query, QueryError, QueryReply};
use lash_obs::window::WindowStat;

use lash_core::ItemId;

/// The 4 bytes a client leads with; anything else is not this protocol and
/// the connection is closed without a reply.
pub const MAGIC: [u8; 4] = *b"LSHQ";

/// The protocol version this build speaks, exchanged in the handshake.
pub const PROTOCOL_VERSION: u8 = 1;

/// The envelope version stamped on every request/response payload.
pub const ENVELOPE_VERSION: u32 = 1;

/// Longest `msg` field accepted when decoding (diagnostic strings only).
const MAX_MESSAGE_BYTES: usize = 4096;

/// Longest `text` field accepted when decoding admin replies — metric
/// exposition, ring dumps, and folded profiles are far larger than
/// diagnostics, but still bounded.
const MAX_ADMIN_TEXT_BYTES: usize = 1 << 20;

/// One query on the wire: an id the client correlates the reply by, the
/// envelope version, and the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the [`Response`].
    pub id: u64,
    /// Envelope version ([`ENVELOPE_VERSION`] for requests this build
    /// encodes).
    pub version: u32,
    /// The query to execute.
    pub query: Query,
}

impl Request {
    /// A current-version request.
    pub fn new(id: u64, query: Query) -> Request {
        Request {
            id,
            version: ENVELOPE_VERSION,
            query,
        }
    }
}

/// One reply on the wire, correlated to its [`Request`] by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's id — `0` when the failing request's id was itself
    /// unreadable.
    pub id: u64,
    /// The outcome, errors included ([`QueryReply::Error`]).
    pub reply: QueryReply,
}

/// An operational request on the admin lane. Admin requests share the
/// connection, handshake, and frame transport with queries but are
/// answered inline by the reader thread — they never wait behind a query
/// batch, so `Health` answers even when the worker pool is saturated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminRequest {
    /// The full metric dump: Prometheus-style text exposition of the
    /// lifetime metrics plus every windowed metric's readout.
    Metrics,
    /// Lifecycle phase, snapshot age/generation, store shape, queue depth,
    /// inflight requests, compaction throttle state.
    Health,
    /// The most recent `slow_op` events from the flight-recorder ring
    /// (newest last), at most `max` lines (`0` = no cap).
    SlowOps {
        /// Maximum lines returned; `0` means everything in the ring.
        max: u32,
    },
    /// The raw tail of the flight-recorder ring (every event kind), at
    /// most `max` lines (`0` = no cap).
    RecentEvents {
        /// Maximum lines returned; `0` means everything in the ring.
        max: u32,
    },
    /// The sampling profiler's aggregate as folded-stacks text.
    Profile {
        /// Clear the aggregate after reading it (profile one workload
        /// phase: reset, run, dump).
        reset: bool,
    },
}

/// An operational reply on the admin lane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminReply {
    /// Answer to [`AdminRequest::Metrics`].
    Metrics {
        /// Prometheus-style text exposition of the lifetime metrics.
        text: String,
        /// Windowed readouts: rates and last-N-seconds percentiles.
        windows: Vec<WindowStat>,
    },
    /// Answer to [`AdminRequest::Health`].
    Health {
        /// Lifecycle phase name (`serving`, `compact`, `mine`, ...).
        phase: String,
        /// Named gauges: `uptime_us`, `queue_depth`, `inflight`,
        /// `snapshot_age_us`, `store_generations`, `throttle_wait_us`, ...
        fields: Vec<(String, u64)>,
    },
    /// Answer to [`AdminRequest::SlowOps`] / [`AdminRequest::RecentEvents`]:
    /// JSONL event lines, oldest first.
    Lines(Vec<String>),
    /// Answer to [`AdminRequest::Profile`].
    Profile {
        /// Sampling frequency the profiler runs at (0 = not running).
        hz: u64,
        /// Samples behind the aggregate.
        samples: u64,
        /// Folded-stacks text (`path;path;path count` per line).
        folded: String,
    },
}

/// An admin request with its envelope fields, as decoded by
/// [`decode_inbound`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdminCall {
    /// Client-chosen correlation id, echoed in the reply envelope.
    pub id: u64,
    /// Envelope version.
    pub version: u32,
    /// The operational request itself.
    pub request: AdminRequest,
}

/// Anything a client may send after the handshake: a query for the worker
/// pool or an admin call for the reader thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inbound {
    /// A data query (tags `0x01..=0x04`).
    Query(Request),
    /// An operational request (tags `0x10..=0x14`).
    Admin(AdminCall),
}

/// Anything a server may answer with: a query reply or an admin reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplyBody {
    /// A query outcome (reply tags `0x01..=0x03`).
    Query(QueryReply),
    /// An admin outcome (reply tag `0x04`).
    Admin(AdminReply),
}

// ---------------------------------------------------------------- encoding

fn encode_items(items: &[ItemId], buf: &mut Vec<u8>) {
    varint::encode_u32(items.len() as u32, buf);
    for item in items {
        varint::encode_u32(item.as_u32(), buf);
    }
}

fn encode_msg(msg: &str, buf: &mut Vec<u8>) {
    let bytes = &msg.as_bytes()[..msg.len().min(MAX_MESSAGE_BYTES)];
    varint::encode_u32(bytes.len() as u32, buf);
    buf.extend_from_slice(bytes);
}

/// Serializes `req` as a frame payload into `buf` (cleared first).
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(req.version, buf);
    varint::encode_u64(req.id, buf);
    match &req.query {
        Query::Support { items } => {
            buf.push(0x01);
            encode_items(items, buf);
        }
        Query::Enumerate { prefix, limit } => {
            buf.push(0x02);
            encode_items(prefix, buf);
            match limit {
                None => buf.push(0x00),
                Some(n) => {
                    buf.push(0x01);
                    varint::encode_u64(*n as u64, buf);
                }
            }
        }
        Query::TopK { prefix, k } => {
            buf.push(0x03);
            encode_items(prefix, buf);
            varint::encode_u64(*k as u64, buf);
        }
        Query::Generalized { items } => {
            buf.push(0x04);
            encode_items(items, buf);
        }
    }
}

/// Serializes `resp` as a frame payload into `buf` (cleared first).
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(ENVELOPE_VERSION, buf);
    varint::encode_u64(resp.id, buf);
    match &resp.reply {
        QueryReply::Support(support) => {
            buf.push(0x01);
            match support {
                None => buf.push(0x00),
                Some(f) => {
                    buf.push(0x01);
                    varint::encode_u64(*f, buf);
                }
            }
        }
        QueryReply::Patterns(hits) => {
            buf.push(0x02);
            varint::encode_u32(hits.len() as u32, buf);
            for hit in hits {
                encode_items(&hit.items, buf);
                varint::encode_u64(hit.frequency, buf);
            }
        }
        QueryReply::Error(e) => {
            buf.push(0x03);
            match e {
                QueryError::UnknownItem(id) => {
                    buf.push(0x01);
                    varint::encode_u32(*id, buf);
                }
                QueryError::Malformed(msg) => {
                    buf.push(0x02);
                    encode_msg(msg, buf);
                }
                QueryError::UnsupportedVersion { requested, serving } => {
                    buf.push(0x03);
                    varint::encode_u32(*requested, buf);
                    varint::encode_u32(*serving, buf);
                }
                QueryError::Internal(msg) => {
                    buf.push(0x04);
                    encode_msg(msg, buf);
                }
            }
        }
    }
}

fn encode_text(text: &str, buf: &mut Vec<u8>) {
    let mut end = text.len().min(MAX_ADMIN_TEXT_BYTES);
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    let bytes = &text.as_bytes()[..end];
    varint::encode_u32(bytes.len() as u32, buf);
    buf.extend_from_slice(bytes);
}

/// Serializes an admin request as a frame payload into `buf` (cleared
/// first).
pub fn encode_admin_request(id: u64, req: &AdminRequest, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(ENVELOPE_VERSION, buf);
    varint::encode_u64(id, buf);
    match req {
        AdminRequest::Metrics => buf.push(0x10),
        AdminRequest::Health => buf.push(0x11),
        AdminRequest::SlowOps { max } => {
            buf.push(0x12);
            varint::encode_u32(*max, buf);
        }
        AdminRequest::RecentEvents { max } => {
            buf.push(0x13);
            varint::encode_u32(*max, buf);
        }
        AdminRequest::Profile { reset } => {
            buf.push(0x14);
            buf.push(u8::from(*reset));
        }
    }
}

/// Serializes an admin reply as a frame payload into `buf` (cleared
/// first).
pub fn encode_admin_response(id: u64, reply: &AdminReply, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(ENVELOPE_VERSION, buf);
    varint::encode_u64(id, buf);
    buf.push(0x04);
    match reply {
        AdminReply::Metrics { text, windows } => {
            buf.push(0x01);
            encode_text(text, buf);
            varint::encode_u32(windows.len() as u32, buf);
            for w in windows {
                encode_msg(&w.name, buf);
                for v in [w.window_us, w.count, w.sum, w.p50, w.p95, w.p99, w.max] {
                    varint::encode_u64(v, buf);
                }
            }
        }
        AdminReply::Health { phase, fields } => {
            buf.push(0x02);
            encode_msg(phase, buf);
            varint::encode_u32(fields.len() as u32, buf);
            for (key, value) in fields {
                encode_msg(key, buf);
                varint::encode_u64(*value, buf);
            }
        }
        AdminReply::Lines(lines) => {
            buf.push(0x03);
            varint::encode_u32(lines.len() as u32, buf);
            for line in lines {
                encode_text(line, buf);
            }
        }
        AdminReply::Profile {
            hz,
            samples,
            folded,
        } => {
            buf.push(0x04);
            varint::encode_u64(*hz, buf);
            varint::encode_u64(*samples, buf);
            encode_text(folded, buf);
        }
    }
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked cursor over an envelope payload. Every read fails with
/// a `Malformed` description instead of panicking or over-reading.
struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a [u8]) -> Cursor<'a> {
        Cursor { input, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn read_u8(&mut self, what: &str) -> Result<u8, QueryError> {
        let Some(&b) = self.input.get(self.pos) else {
            return Err(QueryError::Malformed(format!("truncated before {what}")));
        };
        self.pos += 1;
        Ok(b)
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, QueryError> {
        let (v, n) = varint::decode_u32(&self.input[self.pos..])
            .map_err(|e| QueryError::Malformed(format!("{what}: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn read_u64(&mut self, what: &str) -> Result<u64, QueryError> {
        let (v, n) = varint::decode_u64(&self.input[self.pos..])
            .map_err(|e| QueryError::Malformed(format!("{what}: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a count-prefixed item list. The count is validated against the
    /// bytes actually present (each item is ≥ 1 byte), so a hostile count
    /// cannot drive a huge allocation.
    fn read_items(&mut self, what: &str) -> Result<Vec<ItemId>, QueryError> {
        let count = self.read_u32(what)? as usize;
        if count > self.remaining() {
            return Err(QueryError::Malformed(format!(
                "{what}: count {count} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(ItemId::from_u32(self.read_u32(what)?));
        }
        Ok(items)
    }

    fn read_msg(&mut self, what: &str) -> Result<String, QueryError> {
        self.read_len_prefixed(what, MAX_MESSAGE_BYTES)
    }

    /// Like [`Cursor::read_msg`] but with the admin-reply size cap: metric
    /// dumps and folded profiles are bigger than diagnostic strings.
    fn read_text(&mut self, what: &str) -> Result<String, QueryError> {
        self.read_len_prefixed(what, MAX_ADMIN_TEXT_BYTES)
    }

    fn read_len_prefixed(&mut self, what: &str, cap: usize) -> Result<String, QueryError> {
        let len = self.read_u32(what)? as usize;
        if len > cap.min(self.remaining()) {
            return Err(QueryError::Malformed(format!(
                "{what}: message length {len} out of bounds"
            )));
        }
        let bytes = &self.input[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| QueryError::Malformed(format!("{what}: message is not UTF-8")))
    }

    fn expect_end(&self) -> Result<(), QueryError> {
        if self.remaining() != 0 {
            return Err(QueryError::Malformed(format!(
                "{} trailing bytes after envelope",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Decodes a *query* request envelope — [`decode_inbound`] restricted to
/// the query tags; an admin request fails as `Malformed` here.
pub fn decode_request(payload: &[u8]) -> Result<Request, (u64, QueryError)> {
    match decode_inbound(payload)? {
        Inbound::Query(req) => Ok(req),
        Inbound::Admin(call) => Err((
            call.id,
            QueryError::Malformed("admin request on the query decode path".to_string()),
        )),
    }
}

/// Decodes an inbound envelope: a query for the worker pool or an admin
/// call for the reader thread. On failure the error carries the request id
/// when it was readable before the bytes went bad (`0` otherwise), so the
/// server can address its error reply to the right request.
pub fn decode_inbound(payload: &[u8]) -> Result<Inbound, (u64, QueryError)> {
    let mut c = Cursor::new(payload);
    let version = c.read_u32("envelope version").map_err(|e| (0, e))?;
    if version != ENVELOPE_VERSION {
        return Err((
            0,
            QueryError::UnsupportedVersion {
                requested: version,
                serving: ENVELOPE_VERSION,
            },
        ));
    }
    let id = c.read_u64("request id").map_err(|e| (0, e))?;
    let fail = |e| (id, e);
    let tag = c.read_u8("query tag").map_err(fail)?;
    if (0x10..=0x14).contains(&tag) {
        let request = match tag {
            0x10 => AdminRequest::Metrics,
            0x11 => AdminRequest::Health,
            0x12 => AdminRequest::SlowOps {
                max: c.read_u32("slow-ops max").map_err(fail)?,
            },
            0x13 => AdminRequest::RecentEvents {
                max: c.read_u32("recent-events max").map_err(fail)?,
            },
            _ => AdminRequest::Profile {
                reset: match c.read_u8("profile reset flag").map_err(fail)? {
                    0x00 => false,
                    0x01 => true,
                    other => {
                        return Err(fail(QueryError::Malformed(format!(
                            "profile reset flag {other:#04x}"
                        ))))
                    }
                },
            },
        };
        c.expect_end().map_err(fail)?;
        return Ok(Inbound::Admin(AdminCall {
            id,
            version,
            request,
        }));
    }
    let query = match tag {
        0x01 => Query::Support {
            items: c.read_items("support items").map_err(fail)?,
        },
        0x02 => {
            let prefix = c.read_items("enumerate prefix").map_err(fail)?;
            let limit = match c.read_u8("enumerate limit flag").map_err(fail)? {
                0x00 => None,
                0x01 => Some(c.read_u64("enumerate limit").map_err(fail)? as usize),
                other => {
                    return Err(fail(QueryError::Malformed(format!(
                        "enumerate limit flag {other:#04x}"
                    ))))
                }
            };
            Query::Enumerate { prefix, limit }
        }
        0x03 => Query::TopK {
            prefix: c.read_items("top-k prefix").map_err(fail)?,
            k: c.read_u64("top-k k").map_err(fail)? as usize,
        },
        0x04 => Query::Generalized {
            items: c.read_items("generalized items").map_err(fail)?,
        },
        other => {
            return Err(fail(QueryError::Malformed(format!(
                "unknown query tag {other:#04x}"
            ))))
        }
    };
    c.expect_end().map_err(fail)?;
    Ok(Inbound::Query(Request { id, version, query }))
}

/// Decodes a *query* response envelope — [`decode_reply`] restricted to
/// the query reply tags; an admin reply fails as `Malformed` here.
pub fn decode_response(payload: &[u8]) -> Result<Response, QueryError> {
    match decode_reply(payload)? {
        (id, ReplyBody::Query(reply)) => Ok(Response { id, reply }),
        (_, ReplyBody::Admin(_)) => Err(QueryError::Malformed(
            "admin reply on the query decode path".to_string(),
        )),
    }
}

/// Decodes any response envelope — query reply or admin reply — returning
/// the correlation id and the body.
pub fn decode_reply(payload: &[u8]) -> Result<(u64, ReplyBody), QueryError> {
    let mut c = Cursor::new(payload);
    let version = c.read_u32("envelope version")?;
    if version != ENVELOPE_VERSION {
        return Err(QueryError::UnsupportedVersion {
            requested: version,
            serving: ENVELOPE_VERSION,
        });
    }
    let id = c.read_u64("response id")?;
    let tag = c.read_u8("reply tag")?;
    if tag == 0x04 {
        let reply = decode_admin_reply(&mut c)?;
        c.expect_end()?;
        return Ok((id, ReplyBody::Admin(reply)));
    }
    let reply = match tag {
        0x01 => QueryReply::Support(match c.read_u8("support flag")? {
            0x00 => None,
            0x01 => Some(c.read_u64("support value")?),
            other => return Err(QueryError::Malformed(format!("support flag {other:#04x}"))),
        }),
        0x02 => {
            let count = c.read_u32("pattern count")? as usize;
            if count > c.remaining() {
                return Err(QueryError::Malformed(format!(
                    "pattern count {count} exceeds {} remaining bytes",
                    c.remaining()
                )));
            }
            let mut hits = Vec::with_capacity(count);
            for _ in 0..count {
                let items = c.read_items("pattern items")?;
                let frequency = c.read_u64("pattern frequency")?;
                hits.push(PatternHit { items, frequency });
            }
            QueryReply::Patterns(hits)
        }
        0x03 => QueryReply::Error(match c.read_u8("error code")? {
            0x01 => QueryError::UnknownItem(c.read_u32("unknown item id")?),
            0x02 => QueryError::Malformed(c.read_msg("malformed message")?),
            0x03 => QueryError::UnsupportedVersion {
                requested: c.read_u32("requested version")?,
                serving: c.read_u32("serving version")?,
            },
            0x04 => QueryError::Internal(c.read_msg("internal message")?),
            other => {
                return Err(QueryError::Malformed(format!(
                    "unknown error code {other:#04x}"
                )))
            }
        }),
        other => {
            return Err(QueryError::Malformed(format!(
                "unknown reply tag {other:#04x}"
            )))
        }
    };
    c.expect_end()?;
    Ok((id, ReplyBody::Query(reply)))
}

fn decode_admin_reply(c: &mut Cursor) -> Result<AdminReply, QueryError> {
    match c.read_u8("admin reply tag")? {
        0x01 => {
            let text = c.read_text("metrics text")?;
            let count = c.read_u32("window count")? as usize;
            if count > c.remaining() {
                return Err(QueryError::Malformed(format!(
                    "window count {count} exceeds {} remaining bytes",
                    c.remaining()
                )));
            }
            let mut windows = Vec::with_capacity(count);
            for _ in 0..count {
                let name = c.read_msg("window name")?;
                let mut vals = [0u64; 7];
                for (what, v) in [
                    "window span",
                    "window count",
                    "window sum",
                    "window p50",
                    "window p95",
                    "window p99",
                    "window max",
                ]
                .iter()
                .zip(vals.iter_mut())
                {
                    *v = c.read_u64(what)?;
                }
                windows.push(WindowStat {
                    name,
                    window_us: vals[0],
                    count: vals[1],
                    sum: vals[2],
                    p50: vals[3],
                    p95: vals[4],
                    p99: vals[5],
                    max: vals[6],
                });
            }
            Ok(AdminReply::Metrics { text, windows })
        }
        0x02 => {
            let phase = c.read_msg("health phase")?;
            let count = c.read_u32("health field count")? as usize;
            if count > c.remaining() {
                return Err(QueryError::Malformed(format!(
                    "health field count {count} exceeds {} remaining bytes",
                    c.remaining()
                )));
            }
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = c.read_msg("health field key")?;
                let value = c.read_u64("health field value")?;
                fields.push((key, value));
            }
            Ok(AdminReply::Health { phase, fields })
        }
        0x03 => {
            let count = c.read_u32("line count")? as usize;
            if count > c.remaining() {
                return Err(QueryError::Malformed(format!(
                    "line count {count} exceeds {} remaining bytes",
                    c.remaining()
                )));
            }
            let mut lines = Vec::with_capacity(count);
            for _ in 0..count {
                lines.push(c.read_text("event line")?);
            }
            Ok(AdminReply::Lines(lines))
        }
        0x04 => Ok(AdminReply::Profile {
            hz: c.read_u64("profile hz")?,
            samples: c.read_u64("profile samples")?,
            folded: c.read_text("profile folded stacks")?,
        }),
        other => Err(QueryError::Malformed(format!(
            "unknown admin reply tag {other:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ItemId> {
        raw.iter().map(|&v| ItemId::from_u32(v)).collect()
    }

    #[test]
    fn request_round_trips_every_query_kind() {
        let queries = [
            Query::Support {
                items: ids(&[3, 1]),
            },
            Query::Enumerate {
                prefix: vec![],
                limit: None,
            },
            Query::Enumerate {
                prefix: ids(&[7]),
                limit: Some(10),
            },
            Query::TopK {
                prefix: ids(&[0, 2]),
                k: 5,
            },
            Query::Generalized { items: ids(&[9]) },
        ];
        let mut buf = Vec::new();
        for (i, query) in queries.into_iter().enumerate() {
            let req = Request::new(i as u64 + 1, query);
            encode_request(&req, &mut buf);
            assert_eq!(decode_request(&buf).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips_replies_and_errors() {
        let replies = [
            QueryReply::Support(None),
            QueryReply::Support(Some(42)),
            QueryReply::Patterns(vec![PatternHit {
                items: ids(&[1, 2, 3]),
                frequency: 7,
            }]),
            QueryReply::Error(QueryError::UnknownItem(99)),
            QueryReply::Error(QueryError::Malformed("bad tag".into())),
            QueryReply::Error(QueryError::UnsupportedVersion {
                requested: 9,
                serving: 1,
            }),
            QueryReply::Error(QueryError::Internal("index io".into())),
        ];
        let mut buf = Vec::new();
        for (i, reply) in replies.into_iter().enumerate() {
            let resp = Response {
                id: i as u64,
                reply,
            };
            encode_response(&resp, &mut buf);
            assert_eq!(decode_response(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_counts_fail_without_allocating() {
        // Support query claiming u32::MAX items in a 3-byte body.
        let mut buf = Vec::new();
        varint::encode_u32(ENVELOPE_VERSION, &mut buf);
        varint::encode_u64(5, &mut buf);
        buf.push(0x01);
        varint::encode_u32(u32::MAX, &mut buf);
        let (id, err) = decode_request(&buf).unwrap_err();
        assert_eq!(id, 5, "readable id must survive the failure");
        assert!(matches!(err, QueryError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut buf = Vec::new();
        varint::encode_u32(ENVELOPE_VERSION + 7, &mut buf);
        varint::encode_u64(1, &mut buf);
        buf.push(0x01);
        varint::encode_u32(0, &mut buf);
        let (_, err) = decode_request(&buf).unwrap_err();
        assert_eq!(
            err,
            QueryError::UnsupportedVersion {
                requested: ENVELOPE_VERSION + 7,
                serving: ENVELOPE_VERSION,
            }
        );
    }

    #[test]
    fn admin_request_round_trips_every_kind() {
        let requests = [
            AdminRequest::Metrics,
            AdminRequest::Health,
            AdminRequest::SlowOps { max: 0 },
            AdminRequest::SlowOps { max: 100 },
            AdminRequest::RecentEvents { max: 7 },
            AdminRequest::Profile { reset: false },
            AdminRequest::Profile { reset: true },
        ];
        let mut buf = Vec::new();
        for (i, request) in requests.into_iter().enumerate() {
            let id = i as u64 + 10;
            encode_admin_request(id, &request, &mut buf);
            let decoded = decode_inbound(&buf).unwrap();
            assert_eq!(
                decoded,
                Inbound::Admin(AdminCall {
                    id,
                    version: ENVELOPE_VERSION,
                    request
                })
            );
        }
    }

    #[test]
    fn admin_reply_round_trips_every_kind() {
        let replies = [
            AdminReply::Metrics {
                text: "# TYPE x counter\nx 1\n".into(),
                windows: vec![WindowStat {
                    name: "query.support_us".into(),
                    window_us: 60_000_000,
                    count: 10,
                    sum: 1_000,
                    p50: 64,
                    p95: 128,
                    p99: 256,
                    max: 300,
                }],
            },
            AdminReply::Metrics {
                text: String::new(),
                windows: vec![],
            },
            AdminReply::Health {
                phase: "serving".into(),
                fields: vec![("uptime_us".into(), 12345), ("queue_depth".into(), 0)],
            },
            AdminReply::Lines(vec!["{\"event\":\"span\"}".into(), String::new()]),
            AdminReply::Profile {
                hz: 97,
                samples: 4242,
                folded: "serve.batch;query.request 40\n".into(),
            },
        ];
        let mut buf = Vec::new();
        for (i, reply) in replies.into_iter().enumerate() {
            encode_admin_response(i as u64, &reply, &mut buf);
            let (id, body) = decode_reply(&buf).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(body, ReplyBody::Admin(reply));
        }
    }

    #[test]
    fn query_decoders_reject_admin_envelopes_with_types_intact() {
        let mut buf = Vec::new();
        encode_admin_request(9, &AdminRequest::Health, &mut buf);
        let (id, err) = decode_request(&buf).unwrap_err();
        assert_eq!(id, 9, "the id survives the lane mismatch");
        assert!(matches!(err, QueryError::Malformed(_)));

        encode_admin_response(9, &AdminReply::Lines(vec![]), &mut buf);
        assert!(matches!(
            decode_response(&buf),
            Err(QueryError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_admin_counts_fail_without_allocating() {
        // An admin Metrics reply claiming u32::MAX windows with no bytes.
        let mut buf = Vec::new();
        varint::encode_u32(ENVELOPE_VERSION, &mut buf);
        varint::encode_u64(1, &mut buf);
        buf.push(0x04); // admin reply
        buf.push(0x01); // metrics
        varint::encode_u32(0, &mut buf); // empty text
        varint::encode_u32(u32::MAX, &mut buf); // hostile window count
        assert!(matches!(decode_reply(&buf), Err(QueryError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::new(1, Query::Support { items: vec![] }), &mut buf);
        buf.push(0xFF);
        let (id, err) = decode_request(&buf).unwrap_err();
        assert_eq!(id, 1);
        assert!(matches!(err, QueryError::Malformed(_)));
    }
}
