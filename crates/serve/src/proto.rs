//! The wire protocol: versioned, checksummed request/response envelopes
//! over a byte stream.
//!
//! A connection opens with a 5-byte handshake — the [`MAGIC`] bytes plus
//! one protocol-version byte — which the server answers with its own
//! version byte before any frames flow. After the handshake, every message
//! in either direction is one `lash-encoding` frame (varint length prefix,
//! payload, FNV-1a checksum trailer — the exact frame layout segment files
//! use, so corruption detection is shared with the store).
//!
//! Frame payloads are **envelopes**:
//!
//! ```text
//! request  := envelope_version:u32v  id:u64v  query
//! query    := 0x01 items                         (Support)
//!           | 0x02 items (0x00 | 0x01 limit:u64v) (Enumerate)
//!           | 0x03 items k:u64v                  (TopK)
//!           | 0x04 items                         (Generalized)
//! items    := count:u32v  item:u32v ...
//!
//! response := envelope_version:u32v  id:u64v  reply
//! reply    := 0x01 (0x00 | 0x01 support:u64v)    (Support)
//!           | 0x02 count:u32v hit ...            (Patterns)
//!           | 0x03 error                          (Error)
//! hit      := items  frequency:u64v
//! error    := 0x01 item:u32v                      (UnknownItem)
//!           | 0x02 msg                            (Malformed)
//!           | 0x03 requested:u32v serving:u32v    (UnsupportedVersion)
//!           | 0x04 msg                            (Internal)
//! msg      := len:u32v utf8-bytes
//! ```
//!
//! Decoding is **total**: any byte sequence either decodes or fails with a
//! typed [`QueryError::Malformed`] — never a panic, never unbounded
//! allocation (every count is validated against the bytes actually
//! present before reserving). A request whose id was readable before the
//! rest went bad fails with that id attached, so the server can answer the
//! right in-flight request with the error.

use lash_encoding::varint;
use lash_index::{PatternHit, Query, QueryError, QueryReply};

use lash_core::ItemId;

/// The 4 bytes a client leads with; anything else is not this protocol and
/// the connection is closed without a reply.
pub const MAGIC: [u8; 4] = *b"LSHQ";

/// The protocol version this build speaks, exchanged in the handshake.
pub const PROTOCOL_VERSION: u8 = 1;

/// The envelope version stamped on every request/response payload.
pub const ENVELOPE_VERSION: u32 = 1;

/// Longest `msg` field accepted when decoding (diagnostic strings only).
const MAX_MESSAGE_BYTES: usize = 4096;

/// One query on the wire: an id the client correlates the reply by, the
/// envelope version, and the query itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Client-chosen correlation id, echoed verbatim in the [`Response`].
    pub id: u64,
    /// Envelope version ([`ENVELOPE_VERSION`] for requests this build
    /// encodes).
    pub version: u32,
    /// The query to execute.
    pub query: Query,
}

impl Request {
    /// A current-version request.
    pub fn new(id: u64, query: Query) -> Request {
        Request {
            id,
            version: ENVELOPE_VERSION,
            query,
        }
    }
}

/// One reply on the wire, correlated to its [`Request`] by id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The request's id — `0` when the failing request's id was itself
    /// unreadable.
    pub id: u64,
    /// The outcome, errors included ([`QueryReply::Error`]).
    pub reply: QueryReply,
}

// ---------------------------------------------------------------- encoding

fn encode_items(items: &[ItemId], buf: &mut Vec<u8>) {
    varint::encode_u32(items.len() as u32, buf);
    for item in items {
        varint::encode_u32(item.as_u32(), buf);
    }
}

fn encode_msg(msg: &str, buf: &mut Vec<u8>) {
    let bytes = &msg.as_bytes()[..msg.len().min(MAX_MESSAGE_BYTES)];
    varint::encode_u32(bytes.len() as u32, buf);
    buf.extend_from_slice(bytes);
}

/// Serializes `req` as a frame payload into `buf` (cleared first).
pub fn encode_request(req: &Request, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(req.version, buf);
    varint::encode_u64(req.id, buf);
    match &req.query {
        Query::Support { items } => {
            buf.push(0x01);
            encode_items(items, buf);
        }
        Query::Enumerate { prefix, limit } => {
            buf.push(0x02);
            encode_items(prefix, buf);
            match limit {
                None => buf.push(0x00),
                Some(n) => {
                    buf.push(0x01);
                    varint::encode_u64(*n as u64, buf);
                }
            }
        }
        Query::TopK { prefix, k } => {
            buf.push(0x03);
            encode_items(prefix, buf);
            varint::encode_u64(*k as u64, buf);
        }
        Query::Generalized { items } => {
            buf.push(0x04);
            encode_items(items, buf);
        }
    }
}

/// Serializes `resp` as a frame payload into `buf` (cleared first).
pub fn encode_response(resp: &Response, buf: &mut Vec<u8>) {
    buf.clear();
    varint::encode_u32(ENVELOPE_VERSION, buf);
    varint::encode_u64(resp.id, buf);
    match &resp.reply {
        QueryReply::Support(support) => {
            buf.push(0x01);
            match support {
                None => buf.push(0x00),
                Some(f) => {
                    buf.push(0x01);
                    varint::encode_u64(*f, buf);
                }
            }
        }
        QueryReply::Patterns(hits) => {
            buf.push(0x02);
            varint::encode_u32(hits.len() as u32, buf);
            for hit in hits {
                encode_items(&hit.items, buf);
                varint::encode_u64(hit.frequency, buf);
            }
        }
        QueryReply::Error(e) => {
            buf.push(0x03);
            match e {
                QueryError::UnknownItem(id) => {
                    buf.push(0x01);
                    varint::encode_u32(*id, buf);
                }
                QueryError::Malformed(msg) => {
                    buf.push(0x02);
                    encode_msg(msg, buf);
                }
                QueryError::UnsupportedVersion { requested, serving } => {
                    buf.push(0x03);
                    varint::encode_u32(*requested, buf);
                    varint::encode_u32(*serving, buf);
                }
                QueryError::Internal(msg) => {
                    buf.push(0x04);
                    encode_msg(msg, buf);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- decoding

/// A bounds-checked cursor over an envelope payload. Every read fails with
/// a `Malformed` description instead of panicking or over-reading.
struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a [u8]) -> Cursor<'a> {
        Cursor { input, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn read_u8(&mut self, what: &str) -> Result<u8, QueryError> {
        let Some(&b) = self.input.get(self.pos) else {
            return Err(QueryError::Malformed(format!("truncated before {what}")));
        };
        self.pos += 1;
        Ok(b)
    }

    fn read_u32(&mut self, what: &str) -> Result<u32, QueryError> {
        let (v, n) = varint::decode_u32(&self.input[self.pos..])
            .map_err(|e| QueryError::Malformed(format!("{what}: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    fn read_u64(&mut self, what: &str) -> Result<u64, QueryError> {
        let (v, n) = varint::decode_u64(&self.input[self.pos..])
            .map_err(|e| QueryError::Malformed(format!("{what}: {e}")))?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a count-prefixed item list. The count is validated against the
    /// bytes actually present (each item is ≥ 1 byte), so a hostile count
    /// cannot drive a huge allocation.
    fn read_items(&mut self, what: &str) -> Result<Vec<ItemId>, QueryError> {
        let count = self.read_u32(what)? as usize;
        if count > self.remaining() {
            return Err(QueryError::Malformed(format!(
                "{what}: count {count} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        let mut items = Vec::with_capacity(count);
        for _ in 0..count {
            items.push(ItemId::from_u32(self.read_u32(what)?));
        }
        Ok(items)
    }

    fn read_msg(&mut self, what: &str) -> Result<String, QueryError> {
        let len = self.read_u32(what)? as usize;
        if len > MAX_MESSAGE_BYTES.min(self.remaining()) {
            return Err(QueryError::Malformed(format!(
                "{what}: message length {len} out of bounds"
            )));
        }
        let bytes = &self.input[self.pos..self.pos + len];
        self.pos += len;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| QueryError::Malformed(format!("{what}: message is not UTF-8")))
    }

    fn expect_end(&self) -> Result<(), QueryError> {
        if self.remaining() != 0 {
            return Err(QueryError::Malformed(format!(
                "{} trailing bytes after envelope",
                self.remaining()
            )));
        }
        Ok(())
    }
}

/// Decodes a request envelope. On failure the error carries the request id
/// when it was readable before the bytes went bad (`0` otherwise), so the
/// server can address its error reply to the right request.
pub fn decode_request(payload: &[u8]) -> Result<Request, (u64, QueryError)> {
    let mut c = Cursor::new(payload);
    let version = c.read_u32("envelope version").map_err(|e| (0, e))?;
    if version != ENVELOPE_VERSION {
        return Err((
            0,
            QueryError::UnsupportedVersion {
                requested: version,
                serving: ENVELOPE_VERSION,
            },
        ));
    }
    let id = c.read_u64("request id").map_err(|e| (0, e))?;
    let fail = |e| (id, e);
    let tag = c.read_u8("query tag").map_err(fail)?;
    let query = match tag {
        0x01 => Query::Support {
            items: c.read_items("support items").map_err(fail)?,
        },
        0x02 => {
            let prefix = c.read_items("enumerate prefix").map_err(fail)?;
            let limit = match c.read_u8("enumerate limit flag").map_err(fail)? {
                0x00 => None,
                0x01 => Some(c.read_u64("enumerate limit").map_err(fail)? as usize),
                other => {
                    return Err(fail(QueryError::Malformed(format!(
                        "enumerate limit flag {other:#04x}"
                    ))))
                }
            };
            Query::Enumerate { prefix, limit }
        }
        0x03 => Query::TopK {
            prefix: c.read_items("top-k prefix").map_err(fail)?,
            k: c.read_u64("top-k k").map_err(fail)? as usize,
        },
        0x04 => Query::Generalized {
            items: c.read_items("generalized items").map_err(fail)?,
        },
        other => {
            return Err(fail(QueryError::Malformed(format!(
                "unknown query tag {other:#04x}"
            ))))
        }
    };
    c.expect_end().map_err(fail)?;
    Ok(Request { id, version, query })
}

/// Decodes a response envelope (the client side of the exchange).
pub fn decode_response(payload: &[u8]) -> Result<Response, QueryError> {
    let mut c = Cursor::new(payload);
    let version = c.read_u32("envelope version")?;
    if version != ENVELOPE_VERSION {
        return Err(QueryError::UnsupportedVersion {
            requested: version,
            serving: ENVELOPE_VERSION,
        });
    }
    let id = c.read_u64("response id")?;
    let tag = c.read_u8("reply tag")?;
    let reply = match tag {
        0x01 => QueryReply::Support(match c.read_u8("support flag")? {
            0x00 => None,
            0x01 => Some(c.read_u64("support value")?),
            other => return Err(QueryError::Malformed(format!("support flag {other:#04x}"))),
        }),
        0x02 => {
            let count = c.read_u32("pattern count")? as usize;
            if count > c.remaining() {
                return Err(QueryError::Malformed(format!(
                    "pattern count {count} exceeds {} remaining bytes",
                    c.remaining()
                )));
            }
            let mut hits = Vec::with_capacity(count);
            for _ in 0..count {
                let items = c.read_items("pattern items")?;
                let frequency = c.read_u64("pattern frequency")?;
                hits.push(PatternHit { items, frequency });
            }
            QueryReply::Patterns(hits)
        }
        0x03 => QueryReply::Error(match c.read_u8("error code")? {
            0x01 => QueryError::UnknownItem(c.read_u32("unknown item id")?),
            0x02 => QueryError::Malformed(c.read_msg("malformed message")?),
            0x03 => QueryError::UnsupportedVersion {
                requested: c.read_u32("requested version")?,
                serving: c.read_u32("serving version")?,
            },
            0x04 => QueryError::Internal(c.read_msg("internal message")?),
            other => {
                return Err(QueryError::Malformed(format!(
                    "unknown error code {other:#04x}"
                )))
            }
        }),
        other => {
            return Err(QueryError::Malformed(format!(
                "unknown reply tag {other:#04x}"
            )))
        }
    };
    c.expect_end()?;
    Ok(Response { id, reply })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ItemId> {
        raw.iter().map(|&v| ItemId::from_u32(v)).collect()
    }

    #[test]
    fn request_round_trips_every_query_kind() {
        let queries = [
            Query::Support {
                items: ids(&[3, 1]),
            },
            Query::Enumerate {
                prefix: vec![],
                limit: None,
            },
            Query::Enumerate {
                prefix: ids(&[7]),
                limit: Some(10),
            },
            Query::TopK {
                prefix: ids(&[0, 2]),
                k: 5,
            },
            Query::Generalized { items: ids(&[9]) },
        ];
        let mut buf = Vec::new();
        for (i, query) in queries.into_iter().enumerate() {
            let req = Request::new(i as u64 + 1, query);
            encode_request(&req, &mut buf);
            assert_eq!(decode_request(&buf).unwrap(), req);
        }
    }

    #[test]
    fn response_round_trips_replies_and_errors() {
        let replies = [
            QueryReply::Support(None),
            QueryReply::Support(Some(42)),
            QueryReply::Patterns(vec![PatternHit {
                items: ids(&[1, 2, 3]),
                frequency: 7,
            }]),
            QueryReply::Error(QueryError::UnknownItem(99)),
            QueryReply::Error(QueryError::Malformed("bad tag".into())),
            QueryReply::Error(QueryError::UnsupportedVersion {
                requested: 9,
                serving: 1,
            }),
            QueryReply::Error(QueryError::Internal("index io".into())),
        ];
        let mut buf = Vec::new();
        for (i, reply) in replies.into_iter().enumerate() {
            let resp = Response {
                id: i as u64,
                reply,
            };
            encode_response(&resp, &mut buf);
            assert_eq!(decode_response(&buf).unwrap(), resp);
        }
    }

    #[test]
    fn hostile_counts_fail_without_allocating() {
        // Support query claiming u32::MAX items in a 3-byte body.
        let mut buf = Vec::new();
        varint::encode_u32(ENVELOPE_VERSION, &mut buf);
        varint::encode_u64(5, &mut buf);
        buf.push(0x01);
        varint::encode_u32(u32::MAX, &mut buf);
        let (id, err) = decode_request(&buf).unwrap_err();
        assert_eq!(id, 5, "readable id must survive the failure");
        assert!(matches!(err, QueryError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut buf = Vec::new();
        varint::encode_u32(ENVELOPE_VERSION + 7, &mut buf);
        varint::encode_u64(1, &mut buf);
        buf.push(0x01);
        varint::encode_u32(0, &mut buf);
        let (_, err) = decode_request(&buf).unwrap_err();
        assert_eq!(
            err,
            QueryError::UnsupportedVersion {
                requested: ENVELOPE_VERSION + 7,
                serving: ENVELOPE_VERSION,
            }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        encode_request(&Request::new(1, Query::Support { items: vec![] }), &mut buf);
        buf.push(0xFF);
        let (id, err) = decode_request(&buf).unwrap_err();
        assert_eq!(id, 1);
        assert!(matches!(err, QueryError::Malformed(_)));
    }
}
