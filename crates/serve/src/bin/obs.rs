//! The `obs` CLI: offline tooling over `LASH_OBS_JSONL` event streams,
//! plus live operational views over a running daemon's admin lane.
//!
//! ```text
//! obs trace-view   <events.jsonl> [--trace <hex-id>] [--all | --top <n>]
//! obs validate     <events.jsonl> [--schema-only]
//! obs profile-view <folded.txt>
//! obs admin        <metrics|health|slow-ops|recent|profile> --addr HOST:PORT
//!                  [--max <n>] [--reset]
//! obs top          --addr HOST:PORT [--once] [--interval <ms>]
//! ```
//!
//! `trace-view` rebuilds the span forest and renders each trace as an
//! indented tree with total and self wall time per span, flagging the
//! hottest root-to-leaf path with `◆`. By default only the largest trace
//! (most spans) is shown; `--top <n>` shows the n largest, `--all` every
//! one, `--trace <hex-id>` exactly one. `validate` runs the same checks
//! as the `obs-validate` binary (`--schema-only` skips the trace-graph
//! checks — the right mode for ring dumps and `RecentEvents` output,
//! whose parents may have scrolled out of the window).
//!
//! The live commands speak the daemon's admin lane (never queued behind
//! query batches): `admin` issues one request and prints the raw reply,
//! `profile-view` renders folded-stacks text (from `obs admin profile` or
//! a CI artifact) as a ranked table, and `top` polls `Health` + `Metrics`
//! + `Profile` into a one-screen live view.

use std::time::Duration;

use lash_obs::trace::TraceCtx;
use lash_obs::{admin_view, tree, validate};
use lash_serve::{AdminReply, AdminRequest, Client};

fn usage() -> ! {
    eprintln!(
        "usage: obs trace-view   <events.jsonl> [--trace <hex-id>] [--all | --top <n>]\n\
                obs validate     <events.jsonl> [--schema-only]\n\
                obs profile-view <folded.txt>\n\
                obs admin        <metrics|health|slow-ops|recent|profile> --addr HOST:PORT [--max <n>] [--reset]\n\
                obs top          --addr HOST:PORT [--once] [--interval <ms>]"
    );
    std::process::exit(2);
}

fn read(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(contents) => contents,
        Err(e) => {
            eprintln!("obs: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn parse_events(path: &str) -> Vec<validate::ParsedEvent> {
    match validate::validate_str(&read(path)) {
        Ok((events, _)) => events,
        Err(e) => {
            eprintln!("obs: {path}: {e}");
            eprintln!("obs: (run `obs validate {path}` for the full check)");
            std::process::exit(1);
        }
    }
}

fn trace_view(args: &[String]) {
    let mut path = None;
    let mut pick: Option<u64> = None;
    let mut limit = 1usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--trace" => {
                let id = it.next().unwrap_or_else(|| usage());
                match TraceCtx::parse_id(id) {
                    Some(id) => pick = Some(id),
                    None => {
                        eprintln!("obs: --trace wants a hex id, got {id:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--all" => limit = 0,
            "--top" => {
                limit = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ if path.is_none() && !arg.starts_with('-') => path = Some(arg.clone()),
            _ => usage(),
        }
    }
    let path = path.unwrap_or_else(|| usage());
    let forest = tree::build_forest(&parse_events(&path));
    if forest.is_empty() {
        eprintln!("obs: {path} holds no spans");
        std::process::exit(1);
    }
    let rendered = match pick {
        Some(id) => match forest.iter().find(|t| t.trace_id == id) {
            Some(trace) => tree::render_trace(trace),
            None => {
                eprintln!(
                    "obs: no trace {} in {path} ({} traces present)",
                    TraceCtx::format_id(id),
                    forest.len()
                );
                std::process::exit(1);
            }
        },
        None => tree::render_forest(&forest, limit),
    };
    // Written through `write!`, not `print!`: a downstream `head` closing
    // the pipe early must not turn into a panic.
    use std::io::Write;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if write!(out, "{rendered}").is_err() {
        return;
    }
    if pick.is_none() && limit != 0 && forest.len() > limit {
        let _ = writeln!(
            out,
            "({} more trace(s) — use --all, --top <n>, or --trace <hex-id>)",
            forest.len() - limit
        );
    }
}

fn validate_cmd(args: &[String]) {
    let (path, schema_only) = match args {
        [path] => (path, false),
        [path, flag] | [flag, path] if flag == "--schema-only" => (path, true),
        _ => usage(),
    };
    let contents = read(path);
    let result = if schema_only {
        validate::validate_str_schema_only(&contents)
    } else {
        validate::validate_str(&contents)
    };
    match result {
        Ok((_, stats)) if stats.events > 0 => println!(
            "obs: {} events OK ({} spans, {} slow-ops, {} admins, {} traces{}) in {path}",
            stats.events,
            stats.spans,
            stats.slow_ops,
            stats.admins,
            stats.traces,
            if schema_only { ", schema-only" } else { "" },
        ),
        Ok(_) => {
            eprintln!(
                "obs: {path} holds no events — was {} set?",
                lash_obs::JSONL_ENV
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("obs: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn profile_view(args: &[String]) {
    let [path] = args else { usage() };
    print!("{}", admin_view::render_profile(&read(path)));
}

/// Parses `--addr HOST:PORT` plus any command-specific flags out of `args`.
struct AdminArgs {
    addr: String,
    max: u32,
    reset: bool,
    once: bool,
    interval: Duration,
    positional: Vec<String>,
}

fn parse_admin_args(args: &[String]) -> AdminArgs {
    let mut out = AdminArgs {
        addr: String::new(),
        max: 0,
        reset: false,
        once: false,
        interval: Duration::from_millis(1000),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => out.addr = it.next().unwrap_or_else(|| usage()).clone(),
            "--max" => {
                out.max = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--reset" => out.reset = true,
            "--once" => out.once = true,
            "--interval" => {
                let ms: u64 = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .unwrap_or_else(|| usage());
                out.interval = Duration::from_millis(ms.max(50));
            }
            _ if !arg.starts_with('-') => out.positional.push(arg.clone()),
            _ => usage(),
        }
    }
    if out.addr.is_empty() {
        eprintln!("obs: --addr HOST:PORT is required for live commands");
        std::process::exit(2);
    }
    out
}

fn connect(addr: &str) -> Client {
    match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("obs: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    }
}

fn call(client: &mut Client, request: &AdminRequest) -> AdminReply {
    match client.admin(request) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("obs: admin request failed: {e}");
            std::process::exit(1);
        }
    }
}

fn admin_cmd(args: &[String]) {
    let parsed = parse_admin_args(args);
    let [what] = parsed.positional.as_slice() else {
        usage()
    };
    let request = match what.as_str() {
        "metrics" => AdminRequest::Metrics,
        "health" => AdminRequest::Health,
        "slow-ops" => AdminRequest::SlowOps { max: parsed.max },
        "recent" => AdminRequest::RecentEvents { max: parsed.max },
        "profile" => AdminRequest::Profile {
            reset: parsed.reset,
        },
        _ => usage(),
    };
    let mut client = connect(&parsed.addr);
    match call(&mut client, &request) {
        AdminReply::Metrics { text, windows } => {
            print!("{text}");
            for w in &windows {
                println!(
                    "# window {} window_us={} count={} sum={} p50={} p95={} p99={} max={}",
                    w.name, w.window_us, w.count, w.sum, w.p50, w.p95, w.p99, w.max
                );
            }
        }
        AdminReply::Health { phase, fields } => {
            println!("phase {phase}");
            for (key, value) in &fields {
                println!("{key} {value}");
            }
        }
        AdminReply::Lines(lines) => {
            for line in &lines {
                println!("{line}");
            }
        }
        AdminReply::Profile {
            hz,
            samples,
            folded,
        } => {
            eprintln!("# profiler hz={hz} samples={samples}");
            print!("{folded}");
        }
    }
}

/// One `top` refresh: scrape Health + Metrics + Profile into a snapshot.
fn scrape_top(client: &mut Client) -> admin_view::TopSnapshot {
    let mut snap = admin_view::TopSnapshot::default();
    if let AdminReply::Health { phase, fields } = call(client, &AdminRequest::Health) {
        snap.phase = phase;
        snap.health = fields;
    }
    if let AdminReply::Metrics { windows, .. } = call(client, &AdminRequest::Metrics) {
        snap.windows = windows;
    }
    if let AdminReply::Profile {
        samples, folded, ..
    } = call(client, &AdminRequest::Profile { reset: false })
    {
        snap.profile_samples = samples;
        snap.profile_folded = folded;
    }
    snap
}

fn top_cmd(args: &[String]) {
    let parsed = parse_admin_args(args);
    if !parsed.positional.is_empty() {
        usage();
    }
    let mut client = connect(&parsed.addr);
    loop {
        let view = admin_view::render_top(&scrape_top(&mut client));
        if parsed.once {
            print!("{view}");
            return;
        }
        // ANSI clear + home: one-screen live view, refreshed in place.
        print!("\x1b[2J\x1b[H{view}");
        use std::io::Write;
        let _ = std::io::stdout().flush();
        std::thread::sleep(parsed.interval);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "trace-view" => trace_view(rest),
        Some((cmd, rest)) if cmd == "validate" => validate_cmd(rest),
        Some((cmd, rest)) if cmd == "profile-view" => profile_view(rest),
        Some((cmd, rest)) if cmd == "admin" => admin_cmd(rest),
        Some((cmd, rest)) if cmd == "top" => top_cmd(rest),
        _ => usage(),
    }
}
