//! The `lash-serve` daemon binary: boots (or adopts) a corpus, serves the
//! mined pattern index over TCP, and keeps refreshing it — ingest → seal →
//! rate-limited compaction → re-mine → index → swap — while clients query.
//!
//! ```text
//! lash-serve [--addr HOST:PORT] [--dir PATH] [--rounds N] [--once]
//! ```
//!
//! - `--addr`: bind address (default `127.0.0.1:0`; the chosen address is
//!   printed as `listening on <addr>` so scripts can scrape it).
//! - `--dir`: working directory holding `corpus/` and `index/` (default: a
//!   fresh temp directory). A missing corpus is seeded with a small
//!   deterministic demo dataset.
//! - `--rounds`: lifecycle rounds to drive before settling into
//!   serve-only mode (default 3).
//! - `--once`: exit after the first **query-carrying** client connection
//!   closes (and the rounds are done) — the CI smoke mode. Admin-only
//!   connections (`obs top`, metrics scrapes) never trigger the exit.
//!
//! The daemon starts the span-stack sampling profiler when
//! `LASH_OBS_PROFILE_HZ` is set, and dumps the obs flight recorder on
//! panic and on error exit so post-mortems have the last events in hand.

use std::time::Duration;

use lash_core::{GsmParams, ItemId, Lash, Vocabulary, VocabularyBuilder};
use lash_serve::{Lifecycle, ServeConfig, Server};
use lash_store::{CorpusWriter, StoreOptions};

struct Args {
    addr: String,
    dir: std::path::PathBuf,
    rounds: u64,
    once: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        dir: std::env::temp_dir().join(format!("lash-serve-{}", std::process::id())),
        rounds: 3,
        once: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => args.addr = it.next().ok_or("--addr needs a value")?,
            "--dir" => args.dir = it.next().ok_or("--dir needs a value")?.into(),
            "--rounds" => {
                args.rounds = it
                    .next()
                    .ok_or("--rounds needs a value")?
                    .parse()
                    .map_err(|e| format!("--rounds: {e}"))?
            }
            "--once" => args.once = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

/// The demo vocabulary: a tiny two-level product hierarchy, enough for the
/// generalized queries to have something to generalize to.
fn demo_vocab() -> (Vocabulary, Vec<ItemId>) {
    let mut vb = VocabularyBuilder::new();
    let mut leaves = Vec::new();
    for cat in ["food", "tools", "media"] {
        let parent = vb.intern(cat);
        for i in 0..5 {
            leaves.push(vb.child(&format!("{cat}-{i}"), parent));
        }
    }
    (vb.finish().expect("demo vocabulary"), leaves)
}

/// Deterministic demo sequences from a splitmix-style generator: no RNG
/// dependency, same corpus every run.
fn demo_sequences(leaves: &[ItemId], count: usize, salt: u64) -> Vec<Vec<ItemId>> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64.wrapping_add(salt);
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    (0..count)
        .map(|_| {
            let len = 2 + (next() % 5) as usize;
            (0..len)
                .map(|_| leaves[(next() % leaves.len() as u64) as usize])
                .collect()
        })
        .collect()
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lash-serve: {e}");
            std::process::exit(2);
        }
    };
    // A panic anywhere in the daemon dumps the flight recorder before the
    // default hook prints the backtrace — the ring's last events are the
    // post-mortem context.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if let Some(path) = lash_obs::flight::dump_now("panic") {
            eprintln!("lash-serve: flight recorder dumped to {}", path.display());
        }
        default_hook(info);
    }));
    lash_obs::profiler::start_from_env();
    if let Err(e) = run(&args) {
        eprintln!("lash-serve: {e}");
        if let Some(path) = lash_obs::flight::dump_now("error-exit") {
            eprintln!("lash-serve: flight recorder dumped to {}", path.display());
        }
        std::process::exit(1);
    }
}

fn run(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let corpus_dir = args.dir.join("corpus");
    let index_root = args.dir.join("index");
    let (vocab, leaves) = demo_vocab();
    // A path probe, not an open probe: a failed open would dump the obs
    // flight recorder into the event log the smoke harness validates.
    if !corpus_dir.join(lash_store::format::MANIFEST_FILE).exists() {
        std::fs::create_dir_all(&args.dir)?;
        let _ = std::fs::remove_dir_all(&corpus_dir);
        let mut writer = CorpusWriter::create(&corpus_dir, &vocab, StoreOptions::default())?;
        for seq in demo_sequences(&leaves, 2_000, 0) {
            writer.append(&seq)?;
        }
        writer.finish()?;
        eprintln!("seeded demo corpus at {}", corpus_dir.display());
    }

    let config = ServeConfig::default().with_addr(args.addr.clone());
    let params = GsmParams::new(5, 1, 4)?;
    let mut lifecycle =
        Lifecycle::bootstrap(&corpus_dir, &index_root, Lash::default(), params, &config)?;
    let server = Server::start_with_health(lifecycle.service(), &config, lifecycle.health())?;
    // The scrape-able line scripts and the smoke test wait for.
    println!("listening on {}", server.local_addr());

    // Admin-only connections (scrapes, `obs top`) also disconnect; waiting
    // on query-carrying ones keeps `--once` pinned to the real client.
    let disconnects = lash_obs::global().counter("serve.query_disconnects");
    for round in 1..=args.rounds {
        let batch = demo_sequences(&leaves, 500, round);
        let refs: Vec<&[ItemId]> = batch.iter().map(Vec::as_slice).collect();
        lifecycle.ingest(refs)?;
        let stats = lifecycle.refresh()?;
        eprintln!(
            "round {}: {} sequences, {} patterns, compaction {}",
            stats.round,
            stats.sequences,
            stats.patterns,
            match &stats.compaction {
                Some(c) => format!(
                    "merged {} generations ({}ms throttled)",
                    c.generations_merged,
                    c.throttle_wait.as_millis()
                ),
                None => "skipped".to_string(),
            }
        );
        if args.once && disconnects.get() > 0 {
            break;
        }
    }
    if args.once {
        // Serve until the first client has come and gone, then exit so the
        // smoke harness gets a clean process exit.
        while disconnects.get() == 0 {
            std::thread::sleep(Duration::from_millis(20));
        }
        server.shutdown();
        return Ok(());
    }
    eprintln!("serving; ctrl-c to stop");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}
