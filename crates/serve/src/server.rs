//! The daemon's serving half: an accept loop, per-connection frame
//! readers, and a small worker pool that answers **batches** of queued
//! requests against one index snapshot each.
//!
//! Why batches: [`QueryService::execute`] acquires a snapshot per call — a
//! read-lock plus an `Arc` bump. Under a saturating client load that
//! acquisition dominates the cheap queries. The workers here drain the
//! shared queue in gulps (up to [`crate::ServeConfig::batch_max`], waiting
//! [`crate::ServeConfig::batch_window`] for stragglers after the first
//! request) and call [`QueryService::execute_batch`], which snapshots
//! once. A batch is also the unit of swap consistency: every request in it
//! is answered by the same index generation.
//!
//! Failure policy: *envelope* problems (bad tag, hostile count, unknown
//! version) come back as typed [`QueryReply::Error`] responses and the
//! connection lives on; *frame* problems (checksum mismatch, truncation)
//! poison the stream — the reader answers with a best-effort id-0 error
//! and closes, because after a bad frame the byte stream can no longer be
//! trusted to re-synchronize.
//!
//! Admin requests ([`proto::AdminRequest`]) never enter the worker queue:
//! the reader thread that decoded one answers it inline from registry
//! snapshots and the shared [`HealthState`] — the dedicated ops lane. A
//! `Health` probe therefore answers in reader-thread time even when every
//! worker is pinned inside a query batch and the queue is deep.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lash_encoding::frame::{self, FrameChecksum};
use lash_index::{Query, QueryError, QueryReply, QueryService};
use lash_obs::{profiler, FieldValue};

use crate::ops::HealthState;
use crate::proto::{self, AdminCall, AdminReply, AdminRequest, Inbound, Response};
use crate::proto::{MAGIC, PROTOCOL_VERSION};
use crate::{Result, ServeConfig};

/// Registry handles resolved once at startup; the per-request path never
/// touches the registry's maps.
struct Metrics {
    connections: lash_obs::Counter,
    disconnects: lash_obs::Counter,
    query_disconnects: lash_obs::Counter,
    requests: lash_obs::Counter,
    responses: lash_obs::Counter,
    error_replies: lash_obs::Counter,
    frame_errors: lash_obs::Counter,
    admin_requests: lash_obs::Counter,
    batches: lash_obs::Counter,
    batch_size: lash_obs::Histogram,
    batch_us: lash_obs::Histogram,
    queue_depth: lash_obs::Gauge,
    queue_wait_us: lash_obs::Histogram,
    queue_wait_win: lash_obs::window::WindowedHistogram,
}

impl Metrics {
    fn new() -> Metrics {
        let obs = lash_obs::global();
        Metrics {
            connections: obs.counter("serve.connections"),
            disconnects: obs.counter("serve.disconnects"),
            query_disconnects: obs.counter("serve.query_disconnects"),
            requests: obs.counter("serve.requests"),
            responses: obs.counter("serve.responses"),
            error_replies: obs.counter("serve.error_replies"),
            frame_errors: obs.counter("serve.frame_errors"),
            admin_requests: obs.counter("serve.admin_requests"),
            batches: obs.counter("serve.batches"),
            batch_size: obs.histogram("serve.batch_size"),
            batch_us: obs.histogram("serve.batch_us"),
            queue_depth: obs.gauge("serve.queue.depth"),
            queue_wait_us: obs.histogram("serve.queue.wait_us"),
            queue_wait_win: obs.windowed_histogram("serve.queue.wait_us"),
        }
    }
}

/// One decoded (or failed-to-decode) request waiting for a worker, plus
/// the write half it is answered on.
struct Job {
    id: u64,
    query: std::result::Result<Query, QueryError>,
    out: Arc<Mutex<TcpStream>>,
    /// When the reader queued this job — the start of its queue wait.
    enqueued: Instant,
}

/// State shared by the acceptor, connection readers, and workers.
struct Shared {
    service: Arc<QueryService>,
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    shutdown: AtomicBool,
    /// Clones of every live connection, kept so shutdown can unblock the
    /// readers parked in `read_frame_into`.
    conns: Mutex<Vec<TcpStream>>,
    reader_threads: Mutex<Vec<JoinHandle<()>>>,
    metrics: Metrics,
    batch_max: usize,
    batch_window: Duration,
    /// Live queue length, mirrored into the `serve.queue.depth` gauge —
    /// kept as its own atomic so the admin lane reads it without taking
    /// the queue lock.
    depth: AtomicU64,
    /// Requests currently inside a worker's batch execution.
    inflight: AtomicU64,
    /// Worker-pool width, reported by `Health`.
    workers: u64,
    /// Lifecycle gauges, shared with the [`crate::Lifecycle`] when the
    /// daemon wires one in ([`Server::start_with_health`]).
    health: Arc<HealthState>,
}

/// A running daemon: the listener, its worker pool, and every live
/// connection. Dropping (or calling [`Server::shutdown`]) stops accepting,
/// unblocks the readers, drains queued requests, and joins every thread.
pub struct Server {
    local_addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts serving `service` with a private,
    /// lifecycle-less [`HealthState`] (phase stays `idle`; the admin lane
    /// still answers with server-side fields).
    pub fn start(service: Arc<QueryService>, config: &ServeConfig) -> Result<Server> {
        Server::start_with_health(service, config, Arc::new(HealthState::new()))
    }

    /// Binds `config.addr` and starts serving `service`, answering
    /// `Health` admin requests from `health` — the daemon passes its
    /// [`crate::Lifecycle`]'s state so phase, snapshot age, and throttle
    /// wait are live.
    pub fn start_with_health(
        service: Arc<QueryService>,
        config: &ServeConfig,
        health: Arc<HealthState>,
    ) -> Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            service,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            reader_threads: Mutex::new(Vec::new()),
            metrics: Metrics::new(),
            batch_max: config.batch_max.max(1),
            batch_window: config.batch_window,
            depth: AtomicU64::new(0),
            inflight: AtomicU64::new(0),
            workers: config.effective_workers() as u64,
            health,
        });
        let mut workers = Vec::new();
        for i in 0..config.effective_workers() {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("lash-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(crate::ServeError::Io)?,
            );
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("lash-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(crate::ServeError::Io)?
        };
        Ok(Server {
            local_addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The address actually bound (resolves the port when the config asked
    /// for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the daemon: no new connections, live readers unblocked and
    /// joined, queued requests answered, workers joined.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor with one throwaway connection to ourselves.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        // Unblock every reader parked in a frame read.
        for conn in self.shared.conns.lock().expect("conns lock").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        self.shared.available.notify_all();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers: Vec<_> = self
            .shared
            .reader_threads
            .lock()
            .expect("reader threads lock")
            .drain(..)
            .collect();
        for reader in readers {
            let _ = reader.join();
        }
        // Readers are gone, so the queue can only drain now; wake the
        // workers until every one has observed shutdown + empty queue.
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        shared.metrics.connections.inc();
        // Response frames are small and latency-sensitive; Nagle would
        // hold them hostage to the client's delayed ACKs.
        let _ = stream.set_nodelay(true);
        if let Ok(clone) = stream.try_clone() {
            shared.conns.lock().expect("conns lock").push(clone);
        }
        let shared_for_conn = Arc::clone(shared);
        let handle = std::thread::Builder::new()
            .name("lash-serve-conn".to_string())
            .spawn(move || {
                let queries = serve_connection(stream, &shared_for_conn).unwrap_or(0);
                shared_for_conn.metrics.disconnects.inc();
                // Count data-carrying clients separately: ops scrapes
                // (admin-only connections) must not look like departing
                // query clients to `--once`-style wait loops.
                if queries > 0 {
                    shared_for_conn.metrics.query_disconnects.inc();
                }
            });
        if let Ok(handle) = handle {
            shared
                .reader_threads
                .lock()
                .expect("reader threads lock")
                .push(handle);
        }
    }
}

/// Writes one response frame to a connection's (mutex-guarded) write half.
fn write_response(out: &Mutex<TcpStream>, resp: &Response, scratch: &mut Vec<u8>) -> bool {
    proto::encode_response(resp, scratch);
    let mut stream = out.lock().expect("connection write lock");
    frame::write_frame(scratch, &mut *stream).is_ok()
}

/// The per-connection reader: handshake, then frames → decoded jobs for
/// the worker pool, admin requests answered inline. Returns how many
/// *query* jobs the connection contributed over its lifetime.
fn serve_connection(mut stream: TcpStream, shared: &Arc<Shared>) -> std::io::Result<u64> {
    // Handshake: 4 magic bytes + the client's protocol version, answered
    // with the server's version byte. A magic mismatch is not this
    // protocol at all — close without bytes. A version mismatch gets a
    // typed error frame so a future client learns *why* before the close.
    let mut hello = [0u8; 5];
    stream.read_exact(&mut hello)?;
    if hello[..4] != MAGIC {
        return Ok(0);
    }
    let out = Arc::new(Mutex::new(stream.try_clone()?));
    let mut scratch = Vec::new();
    if hello[4] != PROTOCOL_VERSION {
        let resp = Response {
            id: 0,
            reply: QueryReply::Error(QueryError::UnsupportedVersion {
                requested: hello[4] as u32,
                serving: PROTOCOL_VERSION as u32,
            }),
        };
        write_response(&out, &resp, &mut scratch);
        return Ok(0);
    }
    stream.write_all(&[PROTOCOL_VERSION])?;

    let mut buf = Vec::new();
    let mut queries = 0u64;
    loop {
        match frame::read_frame_into(&mut stream, &mut buf, FrameChecksum::Fnv1a) {
            // Clean EOF between frames: the client hung up.
            Ok(None) => return Ok(queries),
            Ok(Some(len)) => {
                shared.metrics.requests.inc();
                let job = match proto::decode_inbound(&buf[..len]) {
                    // The admin lane: answered here on the reader thread,
                    // never queued — ops traffic cannot wait behind query
                    // batches, and a saturated pool cannot starve `Health`.
                    Ok(Inbound::Admin(call)) => {
                        answer_admin(shared, &call, &out, &mut scratch);
                        continue;
                    }
                    Ok(Inbound::Query(req)) => {
                        queries += 1;
                        Job {
                            id: req.id,
                            query: Ok(req.query),
                            out: Arc::clone(&out),
                            enqueued: Instant::now(),
                        }
                    }
                    Err((id, err)) => Job {
                        id,
                        query: Err(err),
                        out: Arc::clone(&out),
                        enqueued: Instant::now(),
                    },
                };
                let mut queue = shared.queue.lock().expect("queue lock");
                queue.push_back(job);
                let depth = queue.len() as u64;
                drop(queue);
                shared.depth.store(depth, Ordering::Relaxed);
                shared.metrics.queue_depth.set(depth);
                shared.available.notify_one();
            }
            // A corrupt or truncated frame: the stream cannot be re-synced,
            // so answer best-effort (the request id is unknowable) and
            // close. The typed reply is what distinguishes "your bytes were
            // damaged in transit" from a silent drop.
            Err(e) => {
                shared.metrics.frame_errors.inc();
                lash_obs::flight::record_error("serve.frame", &e.to_string());
                let resp = Response {
                    id: 0,
                    reply: QueryReply::Error(QueryError::Malformed(format!(
                        "unreadable frame: {e}"
                    ))),
                };
                write_response(&out, &resp, &mut scratch);
                let _ = stream.shutdown(Shutdown::Both);
                return Ok(queries);
            }
        }
    }
}

/// Builds and writes the reply to one admin call — the reader-thread ops
/// lane. Every branch reads registry/health snapshots; none touches the
/// worker queue.
fn answer_admin(shared: &Shared, call: &AdminCall, out: &Mutex<TcpStream>, scratch: &mut Vec<u8>) {
    shared.metrics.admin_requests.inc();
    let obs = lash_obs::global();
    let kind = match call.request {
        AdminRequest::Metrics => "metrics",
        AdminRequest::Health => "health",
        AdminRequest::SlowOps { .. } => "slow_ops",
        AdminRequest::RecentEvents { .. } => "recent_events",
        AdminRequest::Profile { .. } => "profile",
    };
    let reply = match &call.request {
        AdminRequest::Metrics => AdminReply::Metrics {
            text: obs.render_text(),
            windows: obs.window_stats(),
        },
        AdminRequest::Health => {
            let health = &shared.health;
            let mut fields = health.fields();
            fields.push((
                "queue_depth".to_string(),
                shared.depth.load(Ordering::Relaxed),
            ));
            fields.push((
                "inflight".to_string(),
                shared.inflight.load(Ordering::Relaxed),
            ));
            fields.push(("workers".to_string(), shared.workers));
            fields.push(("requests".to_string(), shared.metrics.requests.get()));
            fields.push(("responses".to_string(), shared.metrics.responses.get()));
            fields.push((
                "error_replies".to_string(),
                shared.metrics.error_replies.get(),
            ));
            AdminReply::Health {
                phase: health.phase().name().to_string(),
                fields,
            }
        }
        AdminRequest::SlowOps { max } => {
            AdminReply::Lines(tail_lines(
                obs.dump_recent()
                    .into_iter()
                    // The ring holds rendered JSON: the event classifier is
                    // a fixed key, so a substring probe is exact enough and
                    // avoids re-parsing every line on the ops path.
                    .filter(|l| l.contains("\"event\":\"slow_op\""))
                    .collect(),
                *max,
            ))
        }
        AdminRequest::RecentEvents { max } => {
            AdminReply::Lines(tail_lines(obs.dump_recent(), *max))
        }
        AdminRequest::Profile { reset } => {
            let reply = AdminReply::Profile {
                hz: profiler::configured_hz(),
                samples: profiler::samples_taken(),
                folded: profiler::folded(),
            };
            if *reset {
                profiler::reset();
            }
            reply
        }
    };
    obs.emit_event("admin", "serve.admin", &[("kind", FieldValue::from(kind))]);
    proto::encode_admin_response(call.id, &reply, scratch);
    let mut stream = out.lock().expect("connection write lock");
    let _ = frame::write_frame(scratch, &mut *stream);
}

/// The newest `max` lines (all of them when `max == 0`), oldest first.
fn tail_lines(mut lines: Vec<String>, max: u32) -> Vec<String> {
    let max = max as usize;
    if max > 0 && lines.len() > max {
        lines.drain(..lines.len() - max);
    }
    lines
}

/// The batching worker: drain a gulp of jobs, answer them against one
/// snapshot, write the responses.
fn worker_loop(shared: &Arc<Shared>) {
    let mut scratch = Vec::new();
    loop {
        let batch = next_batch(shared);
        if batch.is_empty() {
            // Only returned empty on shutdown with a drained queue.
            return;
        }
        let started = Instant::now();
        let _batch_span = lash_obs::span!("serve.batch", size = batch.len());
        // Each job's queue wait ends here: the batch is picked up and the
        // snapshot acquisition is next. This is the "batch gulp" latency
        // that end-to-end numbers used to hide (the Nagle-class signal).
        for job in &batch {
            let waited = job.enqueued.elapsed();
            shared.metrics.queue_wait_us.record_duration(waited);
            shared.metrics.queue_wait_win.record_duration(waited);
        }
        shared
            .inflight
            .fetch_add(batch.len() as u64, Ordering::Relaxed);

        // Split the gulp: decodable queries go to the service as one
        // batch (one snapshot), envelope failures answer directly.
        let mut queries: Vec<Query> = Vec::with_capacity(batch.len());
        let mut slots: Vec<usize> = Vec::with_capacity(batch.len());
        let mut replies: Vec<Option<QueryReply>> = Vec::with_capacity(batch.len());
        for (i, job) in batch.iter().enumerate() {
            match &job.query {
                Ok(query) => {
                    queries.push(query.clone());
                    slots.push(i);
                    replies.push(None);
                }
                Err(err) => replies.push(Some(QueryReply::Error(err.clone()))),
            }
        }
        if !queries.is_empty() {
            for (slot, reply) in slots.iter().zip(shared.service.execute_batch(&queries)) {
                replies[*slot] = Some(reply);
            }
        }

        for (job, reply) in batch.iter().zip(replies) {
            let reply = reply.expect("every job got a reply");
            if matches!(reply, QueryReply::Error(_)) {
                shared.metrics.error_replies.inc();
            }
            let resp = Response { id: job.id, reply };
            if write_response(&job.out, &resp, &mut scratch) {
                shared.metrics.responses.inc();
            }
        }
        shared
            .inflight
            .fetch_sub(batch.len() as u64, Ordering::Relaxed);
        shared.metrics.batches.inc();
        shared.metrics.batch_size.record(batch.len() as u64);
        shared.metrics.batch_us.record_duration(started.elapsed());
    }
}

/// Blocks for the next gulp of jobs. Returns empty only when the server is
/// shutting down and the queue is drained.
fn next_batch(shared: &Shared) -> Vec<Job> {
    let mut queue = shared.queue.lock().expect("queue lock");
    loop {
        if !queue.is_empty() {
            break;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return Vec::new();
        }
        queue = shared
            .available
            .wait_timeout(queue, Duration::from_millis(50))
            .expect("queue lock")
            .0;
    }
    let mut batch: Vec<Job> = Vec::new();
    while batch.len() < shared.batch_max {
        match queue.pop_front() {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    // One bounded wait for stragglers: cheap when the load is heavy (the
    // queue refills before the wait), harmless when idle (one request pays
    // the window once).
    if batch.len() < shared.batch_max && !shared.batch_window.is_zero() {
        queue = shared
            .available
            .wait_timeout(queue, shared.batch_window)
            .expect("queue lock")
            .0;
        while batch.len() < shared.batch_max {
            match queue.pop_front() {
                Some(job) => batch.push(job),
                None => break,
            }
        }
    }
    let depth = queue.len() as u64;
    drop(queue);
    shared.depth.store(depth, Ordering::Relaxed);
    shared.metrics.queue_depth.set(depth);
    batch
}
