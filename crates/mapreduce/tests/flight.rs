//! End-to-end flight-recorder test: a spill file corrupted mid-job must
//! surface as [`EngineError::CorruptShuffle`] and automatically dump the
//! flight-recorder ring, and the dump must carry the failing job's trace
//! id so the crash can be tied back to its trace tree.
//!
//! This lives in its own test binary: the flight recorder dumps once per
//! process, so the corruption forced here must be the only error source.

use std::fs;
use std::path::PathBuf;

use lash_mapreduce::{run_job, Emitter, EngineConfig, EngineError, Job};
use lash_obs::trace::TraceCtx;

/// A job whose second map task flips bytes in the first task's sealed
/// spill file, so the reduce-side merge reads corrupt frames.
struct CorruptingJob {
    spill_base: PathBuf,
}

impl CorruptingJob {
    /// Finds the first map task's spill run under the configured spill
    /// base (`<base>/lash-shuffle-<pid>-<seq>/map-00000-a0.run`) and
    /// inverts a byte in the middle.
    fn corrupt_first_spill(&self) {
        let run = find_first_spill(&self.spill_base).expect("task 0 spill file exists");
        let mut bytes = fs::read(&run).expect("read spill");
        assert!(!bytes.is_empty(), "spill file is empty");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&run, &bytes).expect("rewrite spill");
    }
}

fn find_first_spill(base: &std::path::Path) -> Option<PathBuf> {
    for entry in fs::read_dir(base).ok()? {
        let dir = entry.ok()?.path();
        let candidate = dir.join("map-00000-a0.run");
        if candidate.is_file() {
            return Some(candidate);
        }
    }
    None
}

impl Job for CorruptingJob {
    type Input = u32;
    type Key = u32;
    type Value = u64;
    type Output = (u32, u64);

    fn map(&self, &record: &u32, emit: &mut Emitter<'_, Self>) {
        if record == 1 {
            // Task 0 already sealed its run (split_size 1, parallelism 1,
            // tasks scheduled in order).
            self.corrupt_first_spill();
        }
        for k in 0..16u32 {
            emit.emit(k, u64::from(record));
        }
    }

    fn reduce(&self, key: u32, values: impl Iterator<Item = u64>, out: &mut Vec<(u32, u64)>) {
        out.push((key, values.sum()));
    }

    fn encode_key(&self, key: &u32, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&key.to_be_bytes());
    }
    fn decode_key(&self, bytes: &[u8]) -> u32 {
        u32::from_be_bytes(bytes.try_into().expect("4-byte key"))
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&value.to_le_bytes());
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        u64::from_le_bytes(bytes.try_into().expect("8-byte value"))
    }
}

#[test]
fn corrupt_shuffle_dumps_flight_recorder_with_failing_trace_id() {
    let scratch = std::env::temp_dir().join(format!("lash-flight-test-{}", std::process::id()));
    let spill_base = scratch.join("spills");
    let dump_dir = scratch.join("dumps");
    fs::create_dir_all(&spill_base).expect("create spill base");
    fs::create_dir_all(&dump_dir).expect("create dump dir");
    lash_obs::flight::set_dump_dir(Some(dump_dir.clone()));
    lash_obs::flight::rearm();

    // An explicit root span stands in for a driver operation; the job's
    // `mapreduce.job` span (and everything under it) joins this trace, so
    // the trace id observed here must show up in the crash dump.
    let trace_id = {
        let root = lash_obs::span!("test.flight_root");
        let trace_id = root.ctx().trace_id;

        let job = CorruptingJob {
            spill_base: spill_base.clone(),
        };
        let config = EngineConfig::default()
            .with_parallelism(1)
            .with_split_size(1)
            .with_spill_threshold(Some(0))
            .with_spill_dir(&spill_base);
        let result = run_job(&job, &[0u32, 1u32], &config);
        match result {
            Err(EngineError::CorruptShuffle(_)) => {}
            other => panic!("expected CorruptShuffle, got {other:?}"),
        }
        trace_id
    };

    let dump = lash_obs::flight::last_dump().expect("flight recorder dumped");
    assert!(
        dump.starts_with(&dump_dir),
        "dump {dump:?} not under {dump_dir:?}"
    );
    let contents = fs::read_to_string(&dump).expect("read dump");
    let hex_id = TraceCtx::format_id(trace_id);
    assert!(
        contents.contains(&hex_id),
        "dump does not mention failing trace id {hex_id}:\n{contents}"
    );
    // The dump must include the error event itself and the job's spans
    // leading up to it (map tasks ran before the corruption surfaced).
    assert!(
        contents.contains("\"event\":\"error\""),
        "no error event in dump:\n{contents}"
    );
    assert!(
        contents.contains("mapreduce.map_task"),
        "no map task spans in dump:\n{contents}"
    );

    let _ = fs::remove_dir_all(&scratch);
}
