//! Property tests for the MapReduce engine: against an in-memory oracle, the
//! engine must produce identical results for any input, any parallelism, any
//! split size, combiner on or off, any spill threshold, and any recoverable
//! failure plan.

use std::collections::BTreeMap;

use lash_mapreduce::{run_job, Emitter, EngineConfig, FailurePlan, Job, Phase};
use proptest::prelude::*;

/// Counts (key, value) pair sums per key — a weighted word count.
struct SumJob;

impl Job for SumJob {
    type Input = Vec<(u16, u32)>;
    type Key = u16;
    type Value = u64;
    type Output = (u16, u64);

    fn map(&self, record: &Vec<(u16, u32)>, emit: &mut Emitter<'_, Self>) {
        for &(k, v) in record {
            emit.emit(k, v as u64);
        }
    }

    fn combine(&self, _key: &u16, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn reduce(&self, key: u16, values: impl Iterator<Item = u64>, out: &mut Vec<(u16, u64)>) {
        out.push((key, values.sum()));
    }

    fn encode_key(&self, key: &u16, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&key.to_be_bytes());
    }
    fn decode_key(&self, bytes: &[u8]) -> u16 {
        u16::from_be_bytes(bytes.try_into().expect("2-byte key"))
    }
    fn encode_value(&self, value: &u64, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&value.to_le_bytes());
    }
    fn decode_value(&self, bytes: &[u8]) -> u64 {
        u64::from_le_bytes(bytes.try_into().expect("8-byte value"))
    }
}

fn oracle(inputs: &[Vec<(u16, u32)>]) -> BTreeMap<u16, u64> {
    let mut out = BTreeMap::new();
    for record in inputs {
        for &(k, v) in record {
            *out.entry(k).or_insert(0u64) += v as u64;
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engine_matches_oracle_under_any_configuration(
        inputs in prop::collection::vec(
            prop::collection::vec((0u16..32, 0u32..1000), 0..12),
            0..24,
        ),
        parallelism in 1usize..6,
        split_size in 1usize..10,
        reduce_tasks in 1usize..6,
        combiner in any::<bool>(),
    ) {
        let cfg = EngineConfig::default()
            .with_parallelism(parallelism)
            .with_split_size(split_size)
            .with_reduce_tasks(reduce_tasks)
            .with_combiner(combiner);
        let result = run_job(&SumJob, &inputs, &cfg).unwrap();
        let got: BTreeMap<u16, u64> = result.outputs.into_iter().collect();
        prop_assert_eq!(got, oracle(&inputs));
        // Counters are consistent.
        let c = result.metrics.counters;
        prop_assert_eq!(c.map_input_records as usize, inputs.len());
        let pairs: usize = inputs.iter().map(|r| r.len()).sum();
        prop_assert_eq!(c.map_output_records as usize, pairs);
    }

    #[test]
    fn spilled_shuffle_equals_in_memory_shuffle(
        inputs in prop::collection::vec(
            prop::collection::vec((0u16..24, 0u32..500), 0..10),
            0..20,
        ),
        parallelism in 1usize..5,
        split_size in 1usize..8,
        reduce_tasks in 1usize..5,
        combiner in any::<bool>(),
        threshold in 0usize..256,
    ) {
        let base = EngineConfig::default()
            .with_parallelism(parallelism)
            .with_split_size(split_size)
            .with_reduce_tasks(reduce_tasks)
            .with_combiner(combiner);
        let in_memory = run_job(
            &SumJob,
            &inputs,
            &base.clone().with_spill_threshold(None),
        )
        .unwrap();
        let spilled = run_job(
            &SumJob,
            &inputs,
            &base.with_spill_threshold(Some(threshold)),
        )
        .unwrap();
        // Byte-identical results: same outputs in the same order.
        prop_assert_eq!(&spilled.outputs, &in_memory.outputs);
        prop_assert_eq!(in_memory.metrics.counters.spilled_bytes, 0);
        let pairs: usize = inputs.iter().map(|r| r.len()).sum();
        if pairs > 0 && threshold == 0 {
            // A zero threshold must actually exercise the spill path.
            prop_assert!(
                spilled.metrics.counters.spilled_runs > 0,
                "threshold 0 with {} pairs never spilled",
                pairs
            );
        }
    }

    #[test]
    fn recoverable_failures_never_change_results(
        inputs in prop::collection::vec(
            prop::collection::vec((0u16..16, 0u32..100), 1..8),
            1..16,
        ),
        map_fail in prop::collection::vec((0usize..8, 1u32..3), 0..4),
        reduce_fail in prop::collection::vec((0usize..4, 1u32..3), 0..4),
        threshold in prop::option::weighted(0.5, 0usize..128),
    ) {
        let mut plan = FailurePlan::none();
        for (task, n) in map_fail {
            plan = plan.fail_n_times(Phase::Map, task, n);
        }
        for (task, n) in reduce_fail {
            plan = plan.fail_n_times(Phase::Reduce, task, n);
        }
        let cfg = EngineConfig::default()
            .with_parallelism(3)
            .with_split_size(2)
            .with_reduce_tasks(4)
            .with_spill_threshold(threshold)
            .with_failures(plan);
        let result = run_job(&SumJob, &inputs, &cfg).unwrap();
        let got: BTreeMap<u16, u64> = result.outputs.into_iter().collect();
        prop_assert_eq!(got, oracle(&inputs));
    }

    #[test]
    fn shuffled_bytes_track_record_volume(
        inputs in prop::collection::vec(
            prop::collection::vec((0u16..8, 1u32..100), 1..8),
            1..8,
        ),
    ) {
        let cfg = EngineConfig::sequential().with_combiner(false);
        let result = run_job(&SumJob, &inputs, &cfg).unwrap();
        let c = result.metrics.counters;
        // Every emitted pair serializes to 2 key bytes + 8 value bytes.
        prop_assert_eq!(c.map_output_bytes, c.map_output_records * 10);
        prop_assert!(c.map_output_materialized_bytes > c.map_output_bytes);
    }
}
