//! On-disk sorted runs: the out-of-core half of the shuffle.
//!
//! When a map task's sort buffer exceeds `spill_threshold_bytes`, each
//! non-empty partition buffer is sorted, combined, and appended to the
//! task's spill file as one *run*. A run is a sequence of length-prefixed,
//! checksummed frames (reusing [`lash_encoding::frame`]); each frame wraps a
//! chunk of whole shuffle records, so the reduce side streams a run one
//! chunk at a time — memory per open run is bounded by
//! [`SPILL_CHUNK_BYTES`] plus one record, regardless of run size.
//!
//! ```text
//! spill file (one per map task attempt)
//! ├── run 0   ┌ frame ┐┌ frame ┐…        ← partition 3, spill 0
//! ├── run 1   ┌ frame ┐…                 ← partition 7, spill 0
//! ├── run 2   ┌ frame ┐┌ frame ┐…        ← partition 3, spill 1
//! └── …
//! ```
//!
//! Truncation and bit-flips surface as [`EngineError::CorruptShuffle`], not
//! panics: a frame is only handed to the record parser after its checksum
//! verifies, and a run that ends mid-frame is reported as truncated.
//!
//! ## Chunk compression
//!
//! Each frame's payload starts with a one-byte codec tag. [`SpillCodec::Raw`]
//! (tag 0) stores the framed records verbatim. [`SpillCodec::GroupVarint`]
//! (tag 1) stores them columnar: the record count, three group-varint
//! columns (key common-prefix lengths, key suffix lengths, value lengths),
//! then the key suffix bytes and value bytes concatenated. Runs are sorted
//! by key, so front-coding the keys collapses the repeated keys a low-σ
//! mining shuffle is full of. The tag makes chunks self-describing: the
//! reduce side never needs to know which codec a map task used.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lash_encoding::{frame, group_varint, varint};

use crate::error::EngineError;
use crate::shuffle::{read_varint, write_record, RunBuffer};

/// Target payload size of one spill frame (the workspace-wide
/// [`frame::DEFAULT_BLOCK_BYTES`]). Chunks always contain at least one
/// whole record, so oversized records still spill correctly.
pub const SPILL_CHUNK_BYTES: usize = frame::DEFAULT_BLOCK_BYTES;

/// Environment variable selecting the spill-chunk codec every
/// default-constructed `EngineConfig` picks up: `raw` or `gv`. CI runs one
/// leg with `gv` so the whole workspace exercises compressed spills.
pub const SPILL_CODEC_ENV: &str = "LASH_SPILL_CODEC";

/// Chunk tag byte of [`SpillCodec::Raw`].
const CHUNK_TAG_RAW: u8 = 0;
/// Chunk tag byte of [`SpillCodec::GroupVarint`].
const CHUNK_TAG_GV: u8 = 1;

/// How spill-chunk payloads are encoded on disk (see the module docs).
///
/// The codec is a pure representation choice: both codecs reproduce the
/// framed records byte-for-byte on read, so job outputs are identical
/// under either — only `spilled_bytes` changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpillCodec {
    /// Framed records stored verbatim (tag 0).
    #[default]
    Raw,
    /// Front-coded keys plus group-varint length columns (tag 1).
    GroupVarint,
}

impl SpillCodec {
    /// Reads [`SPILL_CODEC_ENV`]; unset or empty means [`SpillCodec::Raw`].
    ///
    /// A set-but-unknown value panics, for the same reason
    /// `LASH_SPILL_THRESHOLD` does: the variable exists to force test runs
    /// through the compressed path, and a typo silently falling back to
    /// raw chunks would defeat exactly that.
    pub fn from_env() -> SpillCodec {
        match std::env::var(SPILL_CODEC_ENV) {
            Ok(value) => match value.trim() {
                "" | "raw" => SpillCodec::Raw,
                "gv" => SpillCodec::GroupVarint,
                other => panic!("{SPILL_CODEC_ENV}={other:?} is not a spill codec (raw|gv)"),
            },
            Err(_) => SpillCodec::Raw,
        }
    }
}

/// Encodes one chunk of framed records into its on-disk payload: the codec
/// tag byte, then the raw bytes or the columnar form. `raw` was built by
/// this module's writers, so its framing is trusted.
fn encode_chunk(codec: SpillCodec, raw: &[u8], out: &mut Vec<u8>) {
    out.clear();
    match codec {
        SpillCodec::Raw => {
            out.push(CHUNK_TAG_RAW);
            out.extend_from_slice(raw);
        }
        SpillCodec::GroupVarint => {
            out.push(CHUNK_TAG_GV);
            let mut prefix_lens: Vec<u32> = Vec::new();
            let mut suffix_lens: Vec<u32> = Vec::new();
            let mut value_lens: Vec<u32> = Vec::new();
            let mut suffixes: Vec<u8> = Vec::new();
            let mut values: Vec<u8> = Vec::new();
            let mut prev_key: std::ops::Range<usize> = 0..0;
            let mut pos = 0usize;
            while pos < raw.len() {
                let (klen, n) = read_varint(&raw[pos..]).expect("writer-built chunk");
                pos += n;
                let key = pos..pos + klen as usize;
                pos = key.end;
                let (vlen, n) = read_varint(&raw[pos..]).expect("writer-built chunk");
                pos += n;
                let value = pos..pos + vlen as usize;
                pos = value.end;
                let prefix = raw[prev_key.clone()]
                    .iter()
                    .zip(&raw[key.clone()])
                    .take_while(|(a, b)| a == b)
                    .count();
                prefix_lens.push(prefix as u32);
                suffix_lens.push((klen as usize - prefix) as u32);
                value_lens.push(vlen as u32);
                suffixes.extend_from_slice(&raw[key.start + prefix..key.end]);
                values.extend_from_slice(&raw[value]);
                prev_key = key;
            }
            varint::encode_u64(prefix_lens.len() as u64, out);
            group_varint::encode(&prefix_lens, out);
            group_varint::encode(&suffix_lens, out);
            group_varint::encode(&value_lens, out);
            out.extend_from_slice(&suffixes);
            out.extend_from_slice(&values);
        }
    }
}

/// Decodes one on-disk chunk payload back into raw framed record bytes —
/// the exact bytes [`encode_chunk`] was given, for either codec.
fn decode_chunk(mut payload: Vec<u8>) -> Result<Vec<u8>, EngineError> {
    fn corrupt(what: &str) -> EngineError {
        EngineError::CorruptShuffle(format!("spill chunk: {what}"))
    }
    let Some(&tag) = payload.first() else {
        return Err(corrupt("missing codec tag"));
    };
    match tag {
        CHUNK_TAG_RAW => {
            payload.drain(..1);
            Ok(payload)
        }
        CHUNK_TAG_GV => {
            let rest = &payload[1..];
            let (n, used) = read_varint(rest).ok_or_else(|| corrupt("record count"))?;
            let n = n as usize;
            // Every record costs ≥ 1 encoded byte across the columns, so a
            // count exceeding the payload is corruption, not an allocation.
            if n > rest.len() * group_varint::GROUP_SIZE {
                return Err(corrupt("record count overruns chunk"));
            }
            let mut rest = &rest[used..];
            let mut columns = [
                vec![0u32; n], // key common-prefix lengths
                vec![0u32; n], // key suffix lengths
                vec![0u32; n], // value lengths
            ];
            for column in &mut columns {
                let used = group_varint::decode(rest, column)
                    .map_err(|e| corrupt(&format!("length column: {e}")))?;
                rest = &rest[used..];
            }
            let [prefix_lens, suffix_lens, value_lens] = &columns;
            let suffix_total: u64 = suffix_lens.iter().map(|&l| l as u64).sum();
            let value_total: u64 = value_lens.iter().map(|&l| l as u64).sum();
            if suffix_total + value_total != rest.len() as u64 {
                return Err(corrupt("byte columns do not fill the chunk"));
            }
            let (suffixes, values) = rest.split_at(suffix_total as usize);
            let mut out = Vec::with_capacity(rest.len() + 4 * n);
            let mut key: Vec<u8> = Vec::new();
            let (mut spos, mut vpos) = (0usize, 0usize);
            for i in 0..n {
                let prefix = prefix_lens[i] as usize;
                if prefix > key.len() {
                    return Err(corrupt("key prefix exceeds previous key"));
                }
                key.truncate(prefix);
                key.extend_from_slice(&suffixes[spos..spos + suffix_lens[i] as usize]);
                spos += suffix_lens[i] as usize;
                let value = &values[vpos..vpos + value_lens[i] as usize];
                vpos += value_lens[i] as usize;
                write_record(&mut out, &key, value);
            }
            Ok(out)
        }
        other => Err(corrupt(&format!("unknown codec tag {other}"))),
    }
}

/// Write-through compression accounting, published process-wide as
/// `shuffle.spill.bytes_written_raw` / `bytes_written_compressed` so a
/// metrics dump shows the spill compression ratio while a job runs.
fn record_chunk_bytes(raw: usize, encoded: usize) {
    let obs = lash_obs::global();
    obs.counter("shuffle.spill.bytes_written_raw")
        .add(raw as u64);
    obs.counter("shuffle.spill.bytes_written_compressed")
        .add(encoded as u64);
}

/// Maps an I/O error to an [`EngineError::SpillIo`] with context.
fn io_err(what: &str, e: std::io::Error) -> EngineError {
    EngineError::SpillIo(format!("{what}: {e}"))
}

/// The per-job spill directory: a unique subdirectory of the configured (or
/// system) temp dir, removed when the job finishes.
#[derive(Debug)]
pub struct SpillSpace {
    dir: PathBuf,
}

static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

impl SpillSpace {
    /// Creates a unique spill directory under `base`.
    pub fn create(base: Option<&Path>) -> Result<SpillSpace, EngineError> {
        let base = base
            .map(Path::to_path_buf)
            .unwrap_or_else(std::env::temp_dir);
        let dir = base.join(format!(
            "lash-shuffle-{}-{}",
            std::process::id(),
            SPILL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).map_err(|e| io_err("create spill dir", e))?;
        Ok(SpillSpace { dir })
    }

    /// The spill file path of one map task attempt.
    pub fn task_file(&self, task: usize, attempt: u32) -> PathBuf {
        self.dir.join(format!("map-{task:05}-a{attempt}.run"))
    }

    /// The file path of one intermediate merge output: reduce task `task`,
    /// hierarchical merge round `round`, run group `group`.
    pub fn merge_file(&self, task: usize, round: u32, group: usize) -> PathBuf {
        self.dir
            .join(format!("reduce-{task:05}-r{round}-g{group}.merge"))
    }
}

impl Drop for SpillSpace {
    fn drop(&mut self) {
        // Best effort: a leaked temp dir is not worth failing a job over.
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Location and size of one sorted run inside a spill file.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// The reduce partition the run belongs to.
    pub partition: u32,
    /// Byte offset of the run's first frame in the file.
    pub offset: u64,
    /// Total encoded bytes of the run's frames.
    pub len: u64,
    /// Records in the run.
    pub records: u64,
}

/// Appends sorted runs to one map task's spill file.
#[derive(Debug)]
pub struct SpillWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    codec: SpillCodec,
    /// Encoded-chunk scratch, reused across flushes.
    payload: Vec<u8>,
    pos: u64,
}

impl SpillWriter {
    /// Creates (truncating) the spill file at `path`; chunks are encoded
    /// with `codec`.
    pub fn create(path: PathBuf, codec: SpillCodec) -> Result<SpillWriter, EngineError> {
        let file = File::create(&path).map_err(|e| io_err("create spill file", e))?;
        Ok(SpillWriter {
            path,
            writer: BufWriter::new(file),
            codec,
            payload: Vec::new(),
            pos: 0,
        })
    }

    /// The spill file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Writes one sorted run: the records of `buffer` in reference order,
    /// chunked into checksummed frames.
    pub fn write_run(
        &mut self,
        partition: u32,
        buffer: &RunBuffer,
    ) -> Result<RunMeta, EngineError> {
        debug_assert!(!buffer.is_empty(), "runs are never empty");
        let offset = self.pos;
        let mut chunk: Vec<u8> = Vec::with_capacity(SPILL_CHUNK_BYTES.min(buffer.data.len() + 64));
        let mut written = 0u64;
        for rec in &buffer.recs {
            if !chunk.is_empty() && chunk.len() + buffer.framed(rec).len() > SPILL_CHUNK_BYTES {
                written += self.flush_chunk(&chunk)?;
                chunk.clear();
            }
            chunk.extend_from_slice(buffer.framed(rec));
        }
        if !chunk.is_empty() {
            written += self.flush_chunk(&chunk)?;
        }
        self.pos += written;
        Ok(RunMeta {
            partition,
            offset,
            len: written,
            records: buffer.len() as u64,
        })
    }

    fn flush_chunk(&mut self, chunk: &[u8]) -> Result<u64, EngineError> {
        encode_chunk(self.codec, chunk, &mut self.payload);
        record_chunk_bytes(chunk.len(), self.payload.len());
        frame::write_frame(&self.payload, &mut self.writer)
            .map_err(|e| io_err("write spill frame", e))?;
        Ok(frame::encoded_frame_len(self.payload.len()) as u64)
    }

    /// Flushes buffered bytes to the OS so reduce tasks can read them back.
    pub fn finish(mut self) -> Result<PathBuf, EngineError> {
        self.writer
            .flush()
            .map_err(|e| io_err("flush spill file", e))?;
        Ok(self.path)
    }
}

/// Streams one sorted run into its own file, record by record — the
/// output side of a hierarchical merge pass, where the run being written
/// is itself the merge of many runs and must never be materialized in
/// memory. Chunking and framing match [`SpillWriter::write_run`], so the
/// result reads back through the same [`DiskCursor`].
#[derive(Debug)]
pub struct RunStreamWriter {
    writer: BufWriter<File>,
    codec: SpillCodec,
    chunk: Vec<u8>,
    scratch: Vec<u8>,
    /// Encoded-chunk scratch, reused across flushes.
    payload: Vec<u8>,
    written: u64,
    records: u64,
}

impl RunStreamWriter {
    /// Creates (truncating) the run file at `path`; chunks are encoded with
    /// `codec`.
    pub fn create(path: &Path, codec: SpillCodec) -> Result<RunStreamWriter, EngineError> {
        let file = File::create(path).map_err(|e| io_err("create merge run file", e))?;
        Ok(RunStreamWriter {
            writer: BufWriter::new(file),
            codec,
            chunk: Vec::with_capacity(SPILL_CHUNK_BYTES + 64),
            scratch: Vec::new(),
            payload: Vec::new(),
            written: 0,
            records: 0,
        })
    }

    /// Appends one record. Records must arrive in run order (the caller is
    /// a merge, so they do by construction).
    pub fn push(&mut self, key: &[u8], value: &[u8]) -> Result<(), EngineError> {
        self.scratch.clear();
        crate::shuffle::write_record(&mut self.scratch, key, value);
        if !self.chunk.is_empty() && self.chunk.len() + self.scratch.len() > SPILL_CHUNK_BYTES {
            self.flush_chunk()?;
        }
        self.chunk.extend_from_slice(&self.scratch);
        self.records += 1;
        Ok(())
    }

    fn flush_chunk(&mut self) -> Result<(), EngineError> {
        encode_chunk(self.codec, &self.chunk, &mut self.payload);
        record_chunk_bytes(self.chunk.len(), self.payload.len());
        frame::write_frame(&self.payload, &mut self.writer)
            .map_err(|e| io_err("write merge run frame", e))?;
        self.written += frame::encoded_frame_len(self.payload.len()) as u64;
        self.chunk.clear();
        Ok(())
    }

    /// Flushes the run and returns its metadata (the run starts at offset 0
    /// of its dedicated file; `partition` is recorded for bookkeeping).
    pub fn finish(mut self, partition: u32) -> Result<RunMeta, EngineError> {
        if !self.chunk.is_empty() {
            self.flush_chunk()?;
        }
        self.writer
            .flush()
            .map_err(|e| io_err("flush merge run file", e))?;
        Ok(RunMeta {
            partition,
            offset: 0,
            len: self.written,
            records: self.records,
        })
    }
}

/// One spill file opened for reading, shared by every run cursor over it.
///
/// A job can hold *many* runs per spill file (with a tiny threshold, one
/// run per record), so cursors must not each own a file descriptor — the
/// merge would exhaust the process fd limit. Instead all cursors of a file
/// share one handle and read at explicit positions under a lock; each
/// cursor buffers its reads, so lock traffic is per chunk, not per byte.
#[derive(Debug, Clone)]
pub struct SharedFile(Arc<Mutex<File>>);

impl SharedFile {
    /// Opens `path` read-only.
    pub fn open(path: &Path) -> Result<SharedFile, EngineError> {
        let file = File::open(path).map_err(|e| io_err("open spill file", e))?;
        Ok(SharedFile(Arc::new(Mutex::new(file))))
    }

    /// Reads up to `buf.len()` bytes at absolute position `pos`.
    fn read_at(&self, buf: &mut [u8], pos: u64) -> std::io::Result<usize> {
        let mut file = self.0.lock().expect("spill file lock");
        file.seek(SeekFrom::Start(pos))?;
        file.read(buf)
    }
}

/// A [`Read`] view of a [`SharedFile`] starting at a fixed position; each
/// reader tracks its own offset, so concurrent cursors never disturb each
/// other.
#[derive(Debug)]
struct SharedReader {
    file: SharedFile,
    pos: u64,
}

impl Read for SharedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.file.read_at(buf, self.pos)?;
        self.pos += n as u64;
        Ok(n)
    }
}

/// A streaming cursor over one on-disk run: reads one checksum-verified
/// frame at a time and iterates the records inside it.
#[derive(Debug)]
pub struct DiskCursor {
    reader: BufReader<SharedReader>,
    /// Encoded bytes of the run not yet consumed from the file.
    remaining: u64,
    /// The current chunk, already verified, parsed into records.
    chunk: RunBuffer,
    /// Index of the current record within `chunk`.
    rec: usize,
}

impl DiskCursor {
    /// Opens the run described by `meta` inside `file`, positioned on its
    /// first record. Runs are never empty, so an immediately exhausted run
    /// is corruption.
    pub fn open(file: &SharedFile, meta: &RunMeta) -> Result<DiskCursor, EngineError> {
        let reader = BufReader::new(SharedReader {
            file: file.clone(),
            pos: meta.offset,
        });
        let mut cursor = DiskCursor {
            reader,
            remaining: meta.len,
            chunk: RunBuffer::default(),
            rec: 0,
        };
        if !cursor.next_chunk()? {
            return Err(EngineError::CorruptShuffle("run has no frames".into()));
        }
        Ok(cursor)
    }

    /// Loads the next frame of the run. Returns false when the run is fully
    /// consumed.
    fn next_chunk(&mut self) -> Result<bool, EngineError> {
        if self.remaining == 0 {
            return Ok(false);
        }
        let payload = match frame::read_frame(&mut self.reader) {
            Ok(frame::FrameRead::Payload(p)) => p,
            Ok(frame::FrameRead::Eof) => {
                return Err(EngineError::CorruptShuffle(
                    "spill file truncated: run ends before its recorded length".into(),
                ))
            }
            Err(e) => {
                return Err(EngineError::CorruptShuffle(format!("spill frame: {e}")));
            }
        };
        let encoded = frame::encoded_frame_len(payload.len()) as u64;
        if encoded > self.remaining {
            return Err(EngineError::CorruptShuffle(
                "spill frame overruns its run".into(),
            ));
        }
        self.remaining -= encoded;
        self.chunk = RunBuffer::parse(decode_chunk(payload)?)?;
        if self.chunk.is_empty() {
            return Err(EngineError::CorruptShuffle("empty spill frame".into()));
        }
        self.rec = 0;
        Ok(true)
    }

    /// The current record's key bytes.
    pub fn key(&self) -> &[u8] {
        self.chunk.key(&self.chunk.recs[self.rec])
    }

    /// The current record's value bytes.
    pub fn value(&self) -> &[u8] {
        self.chunk.value(&self.chunk.recs[self.rec])
    }

    /// Advances to the next record; false when the run is exhausted.
    pub fn advance(&mut self) -> Result<bool, EngineError> {
        self.rec += 1;
        if self.rec < self.chunk.recs.len() {
            return Ok(true);
        }
        self.next_chunk()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Records = Vec<(Vec<u8>, Vec<u8>)>;

    fn build_run(pairs: &[(&[u8], &[u8])]) -> RunBuffer {
        let mut run = RunBuffer::default();
        for (k, v) in pairs {
            run.push(k, v);
        }
        run.sort();
        run
    }

    fn drain(file: &Path, meta: &RunMeta) -> Result<Records, EngineError> {
        let mut cursor = DiskCursor::open(&SharedFile::open(file)?, meta)?;
        let mut out = Vec::new();
        loop {
            out.push((cursor.key().to_vec(), cursor.value().to_vec()));
            if !cursor.advance()? {
                return Ok(out);
            }
        }
    }

    const CODECS: [SpillCodec; 2] = [SpillCodec::Raw, SpillCodec::GroupVarint];

    #[test]
    fn runs_round_trip_through_disk() {
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(0, 0), codec).unwrap();
            let a = build_run(&[(b"b", b"1"), (b"a", b"2"), (b"b", b"3")]);
            let b = build_run(&[(b"z", b"9")]);
            let ma = writer.write_run(3, &a).unwrap();
            let mb = writer.write_run(5, &b).unwrap();
            let file = writer.finish().unwrap();
            assert_eq!(ma.records, 3);
            assert_eq!(mb.offset, ma.offset + ma.len);
            assert_eq!(
                drain(&file, &ma).unwrap(),
                vec![
                    (b"a".to_vec(), b"2".to_vec()),
                    (b"b".to_vec(), b"1".to_vec()),
                    (b"b".to_vec(), b"3".to_vec()),
                ],
                "{codec:?}"
            );
            assert_eq!(
                drain(&file, &mb).unwrap(),
                vec![(b"z".to_vec(), b"9".to_vec())]
            );
        }
    }

    #[test]
    fn large_runs_split_into_multiple_frames() {
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(1, 0), codec).unwrap();
            let big_value = vec![0xabu8; 40 * 1024];
            let mut run = RunBuffer::default();
            for i in 0..8u8 {
                run.push(&[i], &big_value);
            }
            run.sort();
            let meta = writer.write_run(0, &run).unwrap();
            let file = writer.finish().unwrap();
            // 8 × 40 KiB of incompressible values cannot fit one 64 KiB chunk.
            assert!(meta.len > frame::encoded_frame_len(SPILL_CHUNK_BYTES) as u64);
            let drained = drain(&file, &meta).unwrap();
            assert_eq!(drained.len(), 8, "{codec:?}");
            assert!(drained.iter().all(|(_, v)| v == &big_value));
        }
    }

    #[test]
    fn streamed_runs_read_back_like_buffered_ones() {
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let path = space.merge_file(0, 0, 0);
            let mut writer = RunStreamWriter::create(&path, codec).unwrap();
            let big_value = vec![0x5au8; 30 * 1024];
            // Records in run order, large enough to span several chunks.
            let mut expect: Records = Vec::new();
            for i in 0..6u8 {
                let key = vec![i];
                writer.push(&key, &big_value).unwrap();
                expect.push((key, big_value.clone()));
            }
            let meta = writer.finish(3).unwrap();
            assert_eq!(meta.partition, 3);
            assert_eq!(meta.records, 6);
            assert_eq!(meta.offset, 0);
            assert!(meta.len > frame::encoded_frame_len(SPILL_CHUNK_BYTES) as u64);
            assert_eq!(drain(&path, &meta).unwrap(), expect, "{codec:?}");
        }
    }

    /// The compression win the codec exists for: sorted runs full of
    /// repeated keys front-code to a fraction of their raw size, and the
    /// reduce side still sees the identical records.
    #[test]
    fn group_varint_chunks_shrink_repeated_keys() {
        let mut run = RunBuffer::default();
        for i in 0..2000u32 {
            let key = format!("pivot-item-{:04}", i / 50);
            run.push(key.as_bytes(), &(i % 7).to_le_bytes());
        }
        run.sort();
        let mut metas = Vec::new();
        let mut drains = Vec::new();
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(0, 0), codec).unwrap();
            metas.push(writer.write_run(0, &run).unwrap());
            let file = writer.finish().unwrap();
            drains.push(drain(&file, metas.last().unwrap()).unwrap());
        }
        assert_eq!(drains[0], drains[1]);
        assert!(
            metas[1].len * 2 < metas[0].len,
            "front-coded run ({} B) should be well under half the raw run ({} B)",
            metas[1].len,
            metas[0].len
        );
    }

    #[test]
    fn unknown_chunk_tag_is_corrupt_shuffle() {
        let space = SpillSpace::create(None).unwrap();
        let path = space.task_file(0, 0);
        // A checksummed frame whose payload carries a bogus codec tag.
        let mut payload = vec![7u8];
        crate::shuffle::write_record(&mut payload, b"k", b"v");
        let mut file = std::fs::File::create(&path).unwrap();
        frame::write_frame(&payload, &mut file).unwrap();
        let meta = RunMeta {
            partition: 0,
            offset: 0,
            len: frame::encoded_frame_len(payload.len()) as u64,
            records: 1,
        };
        let result = drain(&path, &meta);
        assert!(
            matches!(result, Err(EngineError::CorruptShuffle(_))),
            "{result:?}"
        );
    }

    #[test]
    fn truncated_run_is_corrupt_shuffle_not_a_panic() {
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(2, 0), codec).unwrap();
            let run = build_run(&[(b"key", b"a value with some length"), (b"key2", b"x")]);
            let meta = writer.write_run(0, &run).unwrap();
            let file = writer.finish().unwrap();
            let full = std::fs::read(&file).unwrap();
            for cut in [0, 1, full.len() / 2, full.len() - 1] {
                std::fs::write(&file, &full[..cut]).unwrap();
                let result = drain(&file, &meta);
                assert!(
                    matches!(result, Err(EngineError::CorruptShuffle(_))),
                    "{codec:?} cut at {cut}: {result:?}"
                );
            }
        }
    }

    #[test]
    fn bit_flip_is_corrupt_shuffle() {
        for codec in CODECS {
            let space = SpillSpace::create(None).unwrap();
            let mut writer = SpillWriter::create(space.task_file(3, 0), codec).unwrap();
            let run = build_run(&[(b"key", b"payload")]);
            let meta = writer.write_run(0, &run).unwrap();
            let file = writer.finish().unwrap();
            let mut bytes = std::fs::read(&file).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&file, &bytes).unwrap();
            assert!(matches!(
                drain(&file, &meta),
                Err(EngineError::CorruptShuffle(_))
            ));
        }
    }

    #[test]
    fn spill_space_cleans_up_on_drop() {
        let dir;
        {
            let space = SpillSpace::create(None).unwrap();
            dir = space.dir.clone();
            std::fs::write(space.task_file(0, 0), b"junk").unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }
}
